"""Blocking strategies: cheap candidate-pair generation for resolution.

Comparing all record pairs is quadratic; blocking buckets records by a
cheap key and only compares within buckets.  Provided strategies:

* token blocking — one block per token of the blocking attribute;
* prefix blocking — block by the first ``k`` characters;
* key blocking — exact match on a key attribute (ISBN / ISSN / EIN,
  how the paper's datasets were clustered).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Set, Tuple

BlockKeyFn = Callable[[str], Iterable[Hashable]]


def token_keys(value: str) -> Iterable[Hashable]:
    """One block key per lowercase token."""
    return {t.lower() for t in value.split()}


def prefix_keys(length: int = 3) -> BlockKeyFn:
    """Block by the lowercase ``length``-prefix of the value."""

    def fn(value: str) -> Iterable[Hashable]:
        cleaned = value.strip().lower()
        return {cleaned[:length]} if cleaned else set()

    return fn


def exact_keys(value: str) -> Iterable[Hashable]:
    """One block per exact value (key-based clustering)."""
    return {value} if value else set()


def build_blocks(
    values: Sequence[str],
    key_fn: BlockKeyFn = token_keys,
) -> Dict[Hashable, List[int]]:
    """``block key -> record indices``."""
    blocks: Dict[Hashable, List[int]] = defaultdict(list)
    for idx, value in enumerate(values):
        for key in key_fn(value):
            blocks[key].append(idx)
    return dict(blocks)


def candidate_pairs(
    blocks: Dict[Hashable, List[int]],
    max_block_size: int = 50,
) -> Set[Tuple[int, int]]:
    """Distinct within-block index pairs; oversized blocks are skipped
    (standard guard against stop-word blocks going quadratic)."""
    pairs: Set[Tuple[int, int]] = set()
    for members in blocks.values():
        if len(members) > max_block_size:
            continue
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                pairs.add((a, b) if a < b else (b, a))
    return pairs
