"""Blocking strategies: cheap candidate-pair generation for resolution.

Comparing all record pairs is quadratic; blocking buckets records by a
cheap key and only compares within buckets.  Provided strategies:

* token blocking — one block per token of the blocking attribute;
* prefix blocking — block by the first ``k`` characters;
* key blocking — exact match on a key attribute (ISBN / ISSN / EIN,
  how the paper's datasets were clustered).

For streaming workloads the raw ``key -> members`` dict grows without
bound and cannot be split across worker processes; :class:`BlockIndex`
wraps the same mapping in a structure that is **partitioned by stable
block-key hash** (each key lives in exactly one of N shards, identical
across runs and processes) and **bounded** (per-key member lists rotate
out their oldest entries past a retention limit, so similarity-mode
blocks stop growing with stream length).
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

BlockKeyFn = Callable[[str], Iterable[Hashable]]


def stable_hash(key: Hashable) -> int:
    """A process-stable hash for shard routing.

    Python's built-in ``hash`` on strings is salted per process
    (``PYTHONHASHSEED``), so it cannot route work to shard processes
    deterministically.  CRC-32 over the key's canonical ``repr`` is
    stable across runs, processes, and platforms — the property the
    ``--shards 1`` vs ``--shards N`` byte-identical-model guarantee
    rests on.
    """
    if isinstance(key, str):
        payload = key
    else:
        payload = repr(key)
    return zlib.crc32(payload.encode("utf-8"))


class BlockIndex:
    """A shard-partitioned ``block key -> member`` index with rotation.

    * **Partitioned** — keys are routed to one of ``shards`` partitions
      by :func:`stable_hash`; a partition is the unit of parallel work
      (all members of a block, hence all pairs a block can ever
      generate, live in exactly one partition).
    * **Bounded** — with ``retention`` set, each block keeps only its
      newest ``retention`` members: appending past the limit rotates
      the oldest member out (and reports it, so owners can drop
      per-member state once a member leaves its last block).  Old
      records typically already merged into their clusters through the
      union-find, so dropping them from the *comparison frontier* keeps
      recall while capping per-arrival cost.
    """

    def __init__(
        self, shards: int = 1, retention: Optional[int] = None
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if retention is not None and retention < 1:
            raise ValueError("retention must be >= 1 (or None)")
        self.shards = shards
        self.retention = retention
        self._partitions: List[Dict[Hashable, List[str]]] = [
            {} for _ in range(shards)
        ]
        #: number of block lists each member currently appears in
        self._refs: Dict[str, int] = {}
        self.rotated_out = 0

    # -- routing -----------------------------------------------------------

    def shard_of(self, key: Hashable) -> int:
        """The partition owning ``key`` (stable across processes)."""
        return stable_hash(key) % self.shards

    # -- writing -----------------------------------------------------------

    def add(self, key: Hashable, member: str) -> List[str]:
        """Append ``member`` to ``key``'s block.

        Returns the members this append *evicted* — non-empty only with
        ``retention`` set — whose eviction dropped their last block
        reference (i.e. they left the comparison frontier entirely).
        """
        block = self._partitions[self.shard_of(key)].setdefault(key, [])
        block.append(member)
        self._refs[member] = self._refs.get(member, 0) + 1
        gone: List[str] = []
        if self.retention is not None and len(block) > self.retention:
            evicted = block[: len(block) - self.retention]
            del block[: len(block) - self.retention]
            self._evict(evicted, gone)
        return gone

    def compact(self, retention: Optional[int] = None) -> List[str]:
        """Trim every block to its newest ``retention`` members now.

        One-shot form of the rotation that :meth:`add` performs lazily —
        useful when retention is introduced (or tightened) on an index
        that already grew.  Returns members that left their last block.
        """
        retention = retention if retention is not None else self.retention
        if retention is None:
            return []
        gone: List[str] = []
        for partition in self._partitions:
            for key in list(partition):
                block = partition[key]
                if len(block) <= retention:
                    continue
                evicted = block[: len(block) - retention]
                partition[key] = block[len(block) - retention :]
                self._evict(evicted, gone)
        return gone

    def _evict(self, evicted: List[str], gone: List[str]) -> None:
        """Account members rotated out of one block; members whose last
        block reference dropped are appended to ``gone``."""
        for old in evicted:
            self.rotated_out += 1
            remaining = self._refs.get(old, 0) - 1
            if remaining <= 0:
                self._refs.pop(old, None)
                gone.append(old)
            else:
                self._refs[old] = remaining

    # -- reading -----------------------------------------------------------

    def members(self, key: Hashable) -> Sequence[str]:
        """Current members of ``key``'s block (append order)."""
        return self._partitions[self.shard_of(key)].get(key, ())

    def __contains__(self, member: str) -> bool:
        return member in self._refs

    @property
    def num_keys(self) -> int:
        return sum(len(p) for p in self._partitions)

    @property
    def num_entries(self) -> int:
        return sum(self._refs.values())

    def __repr__(self) -> str:
        return (
            f"BlockIndex(shards={self.shards}, "
            f"retention={self.retention}, keys={self.num_keys}, "
            f"entries={self.num_entries})"
        )


def token_keys(value: str) -> Iterable[Hashable]:
    """One block key per lowercase token."""
    return {t.lower() for t in value.split()}


def prefix_keys(length: int = 3) -> BlockKeyFn:
    """Block by the lowercase ``length``-prefix of the value."""

    def fn(value: str) -> Iterable[Hashable]:
        cleaned = value.strip().lower()
        return {cleaned[:length]} if cleaned else set()

    return fn


def exact_keys(value: str) -> Iterable[Hashable]:
    """One block per exact value (key-based clustering)."""
    return {value} if value else set()


def build_blocks(
    values: Sequence[str],
    key_fn: BlockKeyFn = token_keys,
) -> Dict[Hashable, List[int]]:
    """``block key -> record indices``."""
    blocks: Dict[Hashable, List[int]] = defaultdict(list)
    for idx, value in enumerate(values):
        for key in key_fn(value):
            blocks[key].append(idx)
    return dict(blocks)


def candidate_pairs(
    blocks: Dict[Hashable, List[int]],
    max_block_size: int = 50,
) -> Set[Tuple[int, int]]:
    """Distinct within-block index pairs; oversized blocks are skipped
    (standard guard against stop-word blocks going quadratic)."""
    pairs: Set[Tuple[int, int]] = set()
    for members in blocks.values():
        if len(members) > max_block_size:
            continue
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                pairs.add((a, b) if a < b else (b, a))
    return pairs
