"""Blocking strategies: cheap candidate-pair generation for resolution.

Comparing all record pairs is quadratic; blocking buckets records by a
cheap key and only compares within buckets.  Provided strategies:

* token blocking — one block per token of the blocking attribute;
* prefix blocking — block by the first ``k`` characters;
* key blocking — exact match on a key attribute (ISBN / ISSN / EIN,
  how the paper's datasets were clustered);
* MinHash-LSH blocking (``lsh_keys``) — banded MinHash signatures over
  character shingles.  Token blocking degrades on *high-cardinality*
  attributes: a popular token ("Street", "Inc") puts thousands of
  records in one block and the within-block scan goes O(block²).  LSH
  keys collide only for values whose shingle sets are actually similar
  (tunable via bands × rows), so blocks stay near-duplicate-sized no
  matter how common the vocabulary is.  Composable with token keys via
  :func:`combine_keys` and selectable by name via
  :func:`make_block_keys` (the CLI's ``--blocking`` modes).

For streaming workloads the raw ``key -> members`` dict grows without
bound and cannot be split across worker processes; :class:`BlockIndex`
wraps the same mapping in a structure that is **partitioned by stable
block-key hash** (each key lives in exactly one of N shards, identical
across runs and processes) and **bounded** (per-key member lists rotate
out their oldest entries past a retention limit, so similarity-mode
blocks stop growing with stream length).  Every key function here
yields process-stable keys, so LSH blocks partition and rotate exactly
like token blocks.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from functools import lru_cache
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

BlockKeyFn = Callable[[str], Iterable[Hashable]]


def stable_hash(key: Hashable) -> int:
    """A process-stable hash for shard routing.

    Python's built-in ``hash`` on strings is salted per process
    (``PYTHONHASHSEED``), so it cannot route work to shard processes
    deterministically.  CRC-32 over the key's canonical ``repr`` is
    stable across runs, processes, and platforms — the property the
    ``--shards 1`` vs ``--shards N`` byte-identical-model guarantee
    rests on.
    """
    if isinstance(key, str):
        payload = key
    else:
        payload = repr(key)
    return zlib.crc32(payload.encode("utf-8"))


class BlockIndex:
    """A shard-partitioned ``block key -> member`` index with rotation.

    * **Partitioned** — keys are routed to one of ``shards`` partitions
      by :func:`stable_hash`; a partition is the unit of parallel work
      (all members of a block, hence all pairs a block can ever
      generate, live in exactly one partition).
    * **Bounded** — with ``retention`` set, each block keeps only its
      newest ``retention`` members: appending past the limit rotates
      the oldest member out (and reports it, so owners can drop
      per-member state once a member leaves its last block).  Old
      records typically already merged into their clusters through the
      union-find, so dropping them from the *comparison frontier* keeps
      recall while capping per-arrival cost.
    """

    def __init__(
        self, shards: int = 1, retention: Optional[int] = None
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if retention is not None and retention < 1:
            raise ValueError("retention must be >= 1 (or None)")
        self.shards = shards
        self.retention = retention
        self._partitions: List[Dict[Hashable, List[str]]] = [
            {} for _ in range(shards)
        ]
        #: number of block lists each member currently appears in
        self._refs: Dict[str, int] = {}
        self.rotated_out = 0

    # -- routing -----------------------------------------------------------

    def shard_of(self, key: Hashable) -> int:
        """The partition owning ``key`` (stable across processes)."""
        return stable_hash(key) % self.shards

    # -- writing -----------------------------------------------------------

    def add(
        self,
        key: Hashable,
        member: str,
        evicted_into: Optional[List[str]] = None,
    ) -> List[str]:
        """Append ``member`` to ``key``'s block.

        Returns the members this append *evicted* — non-empty only with
        ``retention`` set — whose eviction dropped their last block
        reference (i.e. they left the comparison frontier entirely).
        ``evicted_into``, when given, additionally collects *every*
        member rotated out of this block (whether or not other blocks
        still reference it) — what shard-resident replicas of the
        block's membership need to mirror the rotation.
        """
        block = self._partitions[self.shard_of(key)].setdefault(key, [])
        block.append(member)
        self._refs[member] = self._refs.get(member, 0) + 1
        gone: List[str] = []
        if self.retention is not None and len(block) > self.retention:
            evicted = block[: len(block) - self.retention]
            del block[: len(block) - self.retention]
            if evicted_into is not None:
                evicted_into.extend(evicted)
            self._evict(evicted, gone)
        return gone

    def compact(
        self,
        retention: Optional[int] = None,
        evicted_into: Optional[List[Tuple[Hashable, str]]] = None,
    ) -> List[str]:
        """Trim every block to its newest ``retention`` members now.

        One-shot form of the rotation that :meth:`add` performs lazily —
        useful when retention is introduced (or tightened) on an index
        that already grew.  Returns members that left their last block.
        ``evicted_into``, when given, collects every ``(key, member)``
        membership dropped (the per-block delta resident replicas
        mirror), not just the members gone entirely.
        """
        retention = retention if retention is not None else self.retention
        if retention is None:
            return []
        gone: List[str] = []
        for partition in self._partitions:
            for key in list(partition):
                block = partition[key]
                if len(block) <= retention:
                    continue
                evicted = block[: len(block) - retention]
                partition[key] = block[len(block) - retention :]
                if evicted_into is not None:
                    evicted_into.extend(
                        (key, member) for member in evicted
                    )
                self._evict(evicted, gone)
        return gone

    def _evict(self, evicted: List[str], gone: List[str]) -> None:
        """Account members rotated out of one block; members whose last
        block reference dropped are appended to ``gone``."""
        for old in evicted:
            self.rotated_out += 1
            remaining = self._refs.get(old, 0) - 1
            if remaining <= 0:
                self._refs.pop(old, None)
                gone.append(old)
            else:
                self._refs[old] = remaining

    # -- reading -----------------------------------------------------------

    def members(self, key: Hashable) -> Sequence[str]:
        """Current members of ``key``'s block (append order)."""
        return self._partitions[self.shard_of(key)].get(key, ())

    def items(self) -> Iterator[Tuple[Hashable, Sequence[str]]]:
        """Every ``(key, members)`` pair, partition by partition.

        Insertion-ordered within a partition — the order shard-resident
        replicas are warm-started in, so it must be deterministic for a
        fixed mutation history (dicts preserve insertion order)."""
        for partition in self._partitions:
            yield from partition.items()

    def __contains__(self, member: str) -> bool:
        return member in self._refs

    @property
    def num_keys(self) -> int:
        return sum(len(p) for p in self._partitions)

    @property
    def num_entries(self) -> int:
        return sum(self._refs.values())

    def __repr__(self) -> str:
        return (
            f"BlockIndex(shards={self.shards}, "
            f"retention={self.retention}, keys={self.num_keys}, "
            f"entries={self.num_entries})"
        )


def token_keys(value: str) -> Iterable[Hashable]:
    """One block key per lowercase token."""
    return {t.lower() for t in value.split()}


def prefix_keys(length: int = 3) -> BlockKeyFn:
    """Block by the lowercase ``length``-prefix of the value."""

    def fn(value: str) -> Iterable[Hashable]:
        cleaned = value.strip().lower()
        return {cleaned[:length]} if cleaned else set()

    return fn


def exact_keys(value: str) -> Iterable[Hashable]:
    """One block per exact value (key-based clustering)."""
    return {value} if value else set()


def build_blocks(
    values: Sequence[str],
    key_fn: BlockKeyFn = token_keys,
) -> Dict[Hashable, List[int]]:
    """``block key -> record indices``."""
    blocks: Dict[Hashable, List[int]] = defaultdict(list)
    for idx, value in enumerate(values):
        for key in key_fn(value):
            blocks[key].append(idx)
    return dict(blocks)


# -- MinHash-LSH blocking ---------------------------------------------------

#: 64-bit mask for the multiply-shift universal hash family.
_MASK64 = (1 << 64) - 1


def char_shingles(value: str, size: int = 3) -> Set[str]:
    """The value's lowercase character ``size``-grams (whitespace
    normalized to single spaces); short values shingle whole."""
    cleaned = " ".join(value.lower().split())
    if not cleaned:
        return set()
    if len(cleaned) <= size:
        return {cleaned}
    return {cleaned[i : i + size] for i in range(len(cleaned) - size + 1)}


def _hash_family(num_hashes: int) -> List[Tuple[int, int]]:
    """``num_hashes`` multiply-shift parameter pairs, derived from
    CRC-32 so signatures are identical across runs, processes, and
    platforms (the same property :func:`stable_hash` guarantees for
    shard routing)."""
    params: List[Tuple[int, int]] = []
    for i in range(num_hashes):
        a = (
            stable_hash(f"lsh-a-hi-{i}") << 32 | stable_hash(f"lsh-a-lo-{i}")
        ) | 1  # odd multiplier
        b = stable_hash(f"lsh-b-hi-{i}") << 32 | stable_hash(f"lsh-b-lo-{i}")
        params.append((a & _MASK64, b))
    return params


class MinHasher:
    """Process-stable MinHash signatures over character shingles.

    Each of the ``num_hashes`` hash functions is a multiply-shift
    ``((a * x + b) mod 2^64) >> 32`` over the shingle's CRC-32; the
    signature component is the minimum over the value's shingles.  Two
    values agree on a component with probability equal to the Jaccard
    similarity of their shingle sets — the estimator banded LSH keys
    are built on.
    """

    def __init__(self, num_hashes: int, shingle: int = 3) -> None:
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        if shingle < 1:
            raise ValueError("shingle must be >= 1")
        self.num_hashes = num_hashes
        self.shingle = shingle
        self._params = _hash_family(num_hashes)

    def signature(self, value: str) -> Tuple[int, ...]:
        """The value's MinHash signature; ``()`` for empty values."""
        shingles = char_shingles(value, self.shingle)
        if not shingles:
            return ()
        crc32 = zlib.crc32
        bases = [crc32(shingle.encode("utf-8")) for shingle in shingles]
        mask = _MASK64
        # >> 32 is monotone, so it commutes with min: shift once after.
        return tuple(
            min([(a * x + b) & mask for x in bases]) >> 32
            for a, b in self._params
        )


def lsh_keys(
    bands: int = 16,
    rows: int = 3,
    shingle: int = 3,
    cache_size: int = 65536,
) -> BlockKeyFn:
    """A :data:`BlockKeyFn` blocking by banded MinHash signature.

    The ``bands * rows``-component signature is cut into ``bands``
    bands of ``rows`` rows; each band becomes one block key, so two
    values share a block iff some band of their signatures agrees
    exactly.  For shingle-Jaccard ``j`` that happens with probability
    ``1 - (1 - j^rows)^bands`` — the classic S-curve: near-duplicates
    almost surely collide somewhere, unrelated values almost never do,
    and a popular token no longer lands everyone in one block.

    Keys are ``("lsh", band index, band hash)`` tuples: hashable,
    process-stable (CRC-32 over the band's components), and emitted in
    band order, so they route through :class:`BlockIndex` partitioning
    and rotation exactly like token keys.  Signatures are memoized with
    an LRU of ``cache_size`` values (streams re-derive keys for the
    same value when indexing and matching).
    """
    if bands < 1:
        raise ValueError("bands must be >= 1")
    if rows < 1:
        raise ValueError("rows must be >= 1")
    hasher = MinHasher(bands * rows, shingle)

    @lru_cache(maxsize=cache_size)
    def keys(value: str) -> Tuple[Tuple[str, int, int], ...]:
        signature = hasher.signature(value)
        if not signature:
            return ()
        return tuple(
            (
                "lsh",
                band,
                stable_hash(signature[band * rows : (band + 1) * rows]),
            )
            for band in range(bands)
        )

    def fn(value: str) -> Iterable[Hashable]:
        return keys(value)

    fn.bands = bands  # type: ignore[attr-defined]
    fn.rows = rows  # type: ignore[attr-defined]
    fn.shingle = shingle  # type: ignore[attr-defined]
    fn.hasher = hasher  # type: ignore[attr-defined]
    return fn


#: Signature budget :func:`derive_lsh_params` fits ``bands * rows``
#: into — 48 components keeps per-value hashing cheap while leaving
#: room for every useful (bands, rows) shape between thresholds 0.5
#: and 0.9.
DEFAULT_LSH_HASHES = 48


def _collision_probability(s: float, bands: int, rows: int) -> float:
    """The S-curve: P(two values with shingle-Jaccard ``s`` share at
    least one band) under ``bands`` bands of ``rows`` rows."""
    return 1.0 - (1.0 - s**rows) ** bands


@lru_cache(maxsize=256)
def derive_lsh_params(
    threshold: float, num_hashes: int = DEFAULT_LSH_HASHES
) -> Tuple[int, int]:
    """The ``(bands, rows)`` pair tuned for a similarity threshold.

    Sweeps every banding of at most ``num_hashes`` signature components
    and picks the one minimizing the integrated S-curve error: the area
    under the collision curve below ``threshold`` (false positives —
    dissimilar pairs that still collide) plus the area above the curve
    beyond it (false negatives — similar pairs that never do).  The
    winner's S-curve crosses ≈0.5 collision probability near
    ``threshold``, which is exactly the "steep cliff at the threshold"
    the banded-MinHash construction is chosen for; explicit
    ``--lsh-bands`` / ``--lsh-rows`` flags bypass this entirely.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(
            f"threshold must be in (0, 1), got {threshold}"
        )
    if num_hashes < 1:
        raise ValueError("num_hashes must be >= 1")
    steps = 256
    dx = 1.0 / steps
    best: Optional[Tuple[float, int, int]] = None
    for rows in range(1, num_hashes + 1):
        for bands in range(1, num_hashes // rows + 1):
            error = 0.0
            for i in range(steps):
                s = (i + 0.5) * dx
                p = _collision_probability(s, bands, rows)
                error += (p if s < threshold else 1.0 - p) * dx
            if best is None or error < best[0]:
                best = (error, bands, rows)
    assert best is not None
    return best[1], best[2]


def combine_keys(*key_fns: BlockKeyFn) -> BlockKeyFn:
    """One :data:`BlockKeyFn` yielding every function's keys, deduped,
    in function-then-emission order — e.g. token blocks for recall on
    short values plus LSH blocks for high-cardinality vocabularies."""

    def fn(value: str) -> Iterable[Hashable]:
        seen: Set[Hashable] = set()
        out: List[Hashable] = []
        for key_fn in key_fns:
            for key in key_fn(value):
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    return fn


#: ``--blocking`` mode names accepted by :func:`make_block_keys`.
BLOCKING_MODES = ("token", "lsh", "token+lsh")


def make_block_keys(
    mode: str,
    bands: int = 16,
    rows: int = 3,
    shingle: int = 3,
) -> BlockKeyFn:
    """The similarity-mode block-key function for a ``--blocking`` mode
    name: ``token`` (historical behaviour), ``lsh``, or ``token+lsh``
    (both key sets combined)."""
    if mode == "token":
        return token_keys
    if mode == "lsh":
        return lsh_keys(bands, rows, shingle)
    if mode == "token+lsh":
        return combine_keys(token_keys, lsh_keys(bands, rows, shingle))
    raise ValueError(
        f"unknown blocking mode {mode!r} (expected one of {BLOCKING_MODES})"
    )


def candidate_pairs(
    blocks: Dict[Hashable, List[int]],
    max_block_size: int = 50,
) -> Set[Tuple[int, int]]:
    """Distinct within-block index pairs; oversized blocks are skipped
    (standard guard against stop-word blocks going quadratic)."""
    pairs: Set[Tuple[int, int]] = set()
    for members in blocks.values():
        if len(members) > max_block_size:
            continue
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                pairs.add((a, b) if a < b else (b, a))
    return pairs
