"""A small end-to-end entity resolver: blocking -> pairwise similarity
-> union-find clustering -> :class:`~repro.data.table.ClusterTable`.

This is the substrate that *produces* the input the paper's method
consumes: clusters of duplicate records.  The paper's datasets were
clustered by a key attribute (ISBN / ISSN / EIN); ``cluster_by_key``
reproduces that, while ``Matcher`` offers similarity-based resolution
for records lacking a reliable key.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..data.table import Cluster, ClusterTable, Record
from .blocking import BlockKeyFn, build_blocks, candidate_pairs, token_keys
from .similarity import jaccard, levenshtein_similarity
from .unionfind import UnionFind

SimilarityFn = Callable[[str, str], float]


def hybrid_similarity(
    a: str, b: str, score_cutoff: Optional[float] = None
) -> float:
    """Mean of token Jaccard and Levenshtein similarity — a reasonable
    default for names/titles/addresses.

    With ``score_cutoff`` set, the result is exact whenever it is
    ``>= score_cutoff`` and otherwise guaranteed ``< score_cutoff``:
    the cheap token Jaccard runs first, and the expensive Levenshtein
    kernel is either skipped entirely (the Jaccard half already caps
    the mean below the cutoff, or a length gap does) or run banded with
    exactly the residual similarity it still has to reach.  Threshold
    decisions — the only thing blocked matching consumes — are
    identical to the uncut version.
    """
    la, lb = a.lower(), b.lower()
    if la == lb:
        return 1.0
    j = jaccard(la.split(), lb.split())
    if score_cutoff is None:
        return 0.5 * j + 0.5 * levenshtein_similarity(la, lb)
    # mean >= c needs the Levenshtein half to reach 2c - j.
    needed = 2.0 * score_cutoff - j
    if needed > 1.0:
        return 0.5 * j  # unreachable even at edit distance 0
    if needed <= 0.0:
        return 0.5 * j + 0.5 * levenshtein_similarity(la, lb)
    return 0.5 * j + 0.5 * levenshtein_similarity(la, lb, score_cutoff=needed)


def _accepts_score_cutoff(similarity: SimilarityFn) -> bool:
    try:
        return "score_cutoff" in inspect.signature(similarity).parameters
    except (TypeError, ValueError):  # builtins, C callables
        return False


def thresholded(
    similarity: SimilarityFn, threshold: float
) -> Callable[[str, str], bool]:
    """``(a, b) -> similarity(a, b) >= threshold`` as one callable.

    Similarity functions that advertise a ``score_cutoff`` keyword
    (like :func:`hybrid_similarity`) are called with the threshold so
    their early exits engage; plain two-argument callables are used
    as-is.  Either way the decisions equal ``fn(a, b) >= threshold``.
    """
    if _accepts_score_cutoff(similarity):
        def decide(a: str, b: str) -> bool:
            return similarity(a, b, score_cutoff=threshold) >= threshold
    else:
        def decide(a: str, b: str) -> bool:
            return similarity(a, b) >= threshold
    return decide


class PairDecisionMemo:
    """A bounded memo for repeated ``(value, value)`` match decisions.

    Streams re-present the same value pairs constantly (popular values
    land in many blocks; batches carry duplicates), and a threshold
    decision is a pure function of the two strings.  One shared memo
    per matching scope (a batch, a shard) collapses those repeats to a
    dict hit.  Capacity-bounded so a long stream cannot grow it without
    limit: on overflow the memo is simply cleared (the kernel is an
    optimization, never state).
    """

    __slots__ = ("decide", "capacity", "_memo")

    def __init__(
        self,
        similarity: SimilarityFn,
        threshold: float,
        capacity: int = 65536,
    ) -> None:
        self.decide = thresholded(similarity, threshold)
        self.capacity = capacity
        self._memo: Dict[Tuple[str, str], bool] = {}

    def __call__(self, a: str, b: str) -> bool:
        key = (a, b)
        memo = self._memo
        flag = memo.get(key)
        if flag is None:
            flag = self.decide(a, b)
            if len(memo) >= self.capacity:
                memo.clear()
            memo[key] = flag
        return flag


@dataclass
class Matcher:
    """Similarity-threshold entity resolution over one attribute."""

    attribute: str
    threshold: float = 0.8
    similarity: SimilarityFn = field(default=hybrid_similarity)
    block_keys: BlockKeyFn = field(default=token_keys)
    max_block_size: int = 50

    def match_pairs(self, records: Sequence[Record]) -> List[Tuple[int, int]]:
        """Record index pairs whose similarity clears the threshold."""
        values = [r.values.get(self.attribute, "") for r in records]
        blocks = build_blocks(values, self.block_keys)
        decide = PairDecisionMemo(self.similarity, self.threshold)
        matched: List[Tuple[int, int]] = []
        for a, b in sorted(candidate_pairs(blocks, self.max_block_size)):
            if decide(values[a], values[b]):
                matched.append((a, b))
        return matched

    def resolve(
        self, records: Sequence[Record], columns: Optional[Sequence[str]] = None
    ) -> ClusterTable:
        """Cluster records by transitive closure of matches."""
        uf = UnionFind(range(len(records)))
        for a, b in self.match_pairs(records):
            uf.union(a, b)
        if columns is None:
            columns = _infer_columns(records)
        table = ClusterTable(columns)
        for members in uf.groups():
            key = records[members[0]].rid
            table.add_cluster(key, [records[i] for i in members])
        return table


def cluster_by_key(
    records: Sequence[Record],
    key_attribute: str,
    columns: Optional[Sequence[str]] = None,
) -> ClusterTable:
    """Cluster records by exact key equality (ISBN / ISSN / EIN style).

    Records with an empty key become singleton clusters.
    """
    if columns is None:
        columns = _infer_columns(records)
    by_key: Dict[str, List[Record]] = {}
    singletons: List[Record] = []
    for record in records:
        key = record.values.get(key_attribute, "")
        if key:
            by_key.setdefault(key, []).append(record)
        else:
            singletons.append(record)
    table = ClusterTable(columns)
    for key in sorted(by_key):
        table.add_cluster(key, by_key[key])
    for record in singletons:
        table.add_cluster(f"__single_{record.rid}", [record])
    return table


def _infer_columns(records: Sequence[Record]) -> List[str]:
    columns: List[str] = []
    for record in records:
        for column in record.values:
            if column not in columns:
                columns.append(column)
    return columns
