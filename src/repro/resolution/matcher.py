"""A small end-to-end entity resolver: blocking -> pairwise similarity
-> union-find clustering -> :class:`~repro.data.table.ClusterTable`.

This is the substrate that *produces* the input the paper's method
consumes: clusters of duplicate records.  The paper's datasets were
clustered by a key attribute (ISBN / ISSN / EIN); ``cluster_by_key``
reproduces that, while ``Matcher`` offers similarity-based resolution
for records lacking a reliable key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..data.table import Cluster, ClusterTable, Record
from .blocking import BlockKeyFn, build_blocks, candidate_pairs, token_keys
from .similarity import jaccard, levenshtein_similarity
from .unionfind import UnionFind

SimilarityFn = Callable[[str, str], float]


def hybrid_similarity(a: str, b: str) -> float:
    """Mean of token Jaccard and Levenshtein similarity — a reasonable
    default for names/titles/addresses."""
    return 0.5 * jaccard(a.lower().split(), b.lower().split()) + 0.5 * (
        levenshtein_similarity(a.lower(), b.lower())
    )


@dataclass
class Matcher:
    """Similarity-threshold entity resolution over one attribute."""

    attribute: str
    threshold: float = 0.8
    similarity: SimilarityFn = field(default=hybrid_similarity)
    block_keys: BlockKeyFn = field(default=token_keys)
    max_block_size: int = 50

    def match_pairs(self, records: Sequence[Record]) -> List[Tuple[int, int]]:
        """Record index pairs whose similarity clears the threshold."""
        values = [r.values.get(self.attribute, "") for r in records]
        blocks = build_blocks(values, self.block_keys)
        matched: List[Tuple[int, int]] = []
        for a, b in sorted(candidate_pairs(blocks, self.max_block_size)):
            if self.similarity(values[a], values[b]) >= self.threshold:
                matched.append((a, b))
        return matched

    def resolve(
        self, records: Sequence[Record], columns: Optional[Sequence[str]] = None
    ) -> ClusterTable:
        """Cluster records by transitive closure of matches."""
        uf = UnionFind(range(len(records)))
        for a, b in self.match_pairs(records):
            uf.union(a, b)
        if columns is None:
            columns = _infer_columns(records)
        table = ClusterTable(columns)
        for members in uf.groups():
            key = records[members[0]].rid
            table.add_cluster(key, [records[i] for i in members])
        return table


def cluster_by_key(
    records: Sequence[Record],
    key_attribute: str,
    columns: Optional[Sequence[str]] = None,
) -> ClusterTable:
    """Cluster records by exact key equality (ISBN / ISSN / EIN style).

    Records with an empty key become singleton clusters.
    """
    if columns is None:
        columns = _infer_columns(records)
    by_key: Dict[str, List[Record]] = {}
    singletons: List[Record] = []
    for record in records:
        key = record.values.get(key_attribute, "")
        if key:
            by_key.setdefault(key, []).append(record)
        else:
            singletons.append(record)
    table = ClusterTable(columns)
    for key in sorted(by_key):
        table.add_cluster(key, by_key[key])
    for record in singletons:
        table.add_cluster(f"__single_{record.rid}", [record])
    return table


def _infer_columns(records: Sequence[Record]) -> List[str]:
    columns: List[str] = []
    for record in records:
        for column in record.values:
            if column not in columns:
                columns.append(column)
    return columns
