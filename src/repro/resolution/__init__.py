"""Entity-resolution substrate: similarity, blocking, clustering."""

from .blocking import build_blocks, candidate_pairs, exact_keys, prefix_keys, token_keys
from .matcher import Matcher, cluster_by_key, hybrid_similarity
from .similarity import (
    cosine,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    overlap,
)
from .unionfind import UnionFind
