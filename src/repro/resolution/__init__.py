"""Entity-resolution substrate: similarity, blocking, clustering."""

from .blocking import (
    BLOCKING_MODES,
    BlockIndex,
    MinHasher,
    build_blocks,
    candidate_pairs,
    char_shingles,
    combine_keys,
    exact_keys,
    lsh_keys,
    make_block_keys,
    prefix_keys,
    stable_hash,
    token_keys,
)
from .matcher import (
    Matcher,
    PairDecisionMemo,
    cluster_by_key,
    hybrid_similarity,
    thresholded,
)
from .similarity import (
    cosine,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    overlap,
)
from .unionfind import UnionFind
