"""String similarity measures for the entity-resolution substrate.

The paper consumes clusters produced by upstream entity resolution
(Tamr, Magellan, DataCivilizer); this module provides the classic
measures a lightweight resolver needs: Levenshtein, Jaro, Jaro-Winkler,
token Jaccard, overlap, and cosine over token counts.

The Levenshtein kernel is the hot path of blocked similarity matching,
so it accepts an optional ``score_cutoff``: callers that only care
whether two strings are within ``k`` edits get a banded dynamic program
(O(len * k) instead of O(len^2)) with a length-gap shortcut and an
early exit the moment every cell of a row exceeds the band.  Results
within the cutoff are exact; beyond it the function returns
``score_cutoff + 1`` (any distance proven to exceed the cutoff).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Optional, Sequence


def levenshtein(a: str, b: str, score_cutoff: Optional[int] = None) -> int:
    """Edit distance with unit insert/delete/substitute costs.

    With ``score_cutoff`` set, the result is exact whenever it is
    ``<= score_cutoff``; distances proven larger are reported as
    ``score_cutoff + 1`` without finishing the full dynamic program.
    Every optimal path with cost ``<= k`` stays within ``k`` cells of
    the diagonal (each diagonal deviation costs at least one edit), so
    the banded program loses nothing inside the cutoff.
    """
    if a == b:
        return 0
    if not a:
        return len(b) if score_cutoff is None else min(len(b), score_cutoff + 1)
    if not b:
        return len(a) if score_cutoff is None else min(len(a), score_cutoff + 1)
    if len(a) < len(b):
        a, b = b, a
    if score_cutoff is None:
        previous = list(range(len(b) + 1))
        for i, ca in enumerate(a, start=1):
            current = [i]
            for j, cb in enumerate(b, start=1):
                cost = 0 if ca == cb else 1
                current.append(
                    min(
                        previous[j] + 1,
                        current[j - 1] + 1,
                        previous[j - 1] + cost,
                    )
                )
            previous = current
        return previous[-1]
    cutoff = max(score_cutoff, 0)
    la, lb = len(a), len(b)
    if la - lb > cutoff:  # length-gap shortcut: la >= lb here
        return cutoff + 1
    bound = cutoff + 1
    previous = [j if j <= cutoff else bound for j in range(lb + 1)]
    for i, ca in enumerate(a, start=1):
        lo = i - cutoff
        hi = i + cutoff
        if lo < 1:
            lo = 1
        if hi > lb:
            hi = lb
        current = [bound] * (lb + 1)
        if lo == 1 and i <= cutoff:
            current[0] = i
        best = bound
        for j in range(lo, hi + 1):
            cb = b[j - 1]
            cost = previous[j - 1] + (0 if ca == cb else 1)
            up = previous[j] + 1
            if up < cost:
                cost = up
            left = current[j - 1] + 1
            if left < cost:
                cost = left
            if cost > bound:
                cost = bound
            current[j] = cost
            if cost < best:
                best = cost
        if best >= bound:
            return bound  # every band cell already exceeds the cutoff
        previous = current
    distance = previous[lb]
    return distance if distance <= cutoff else bound


def levenshtein_similarity(
    a: str, b: str, score_cutoff: Optional[float] = None
) -> float:
    """``1 - dist / max_len``; 1.0 for two empty strings.

    ``score_cutoff`` is a *similarity* threshold: the result is exact
    whenever it is ``>= score_cutoff``, and otherwise guaranteed to be
    some value ``< score_cutoff`` (the banded distance kernel stops as
    soon as the threshold is unreachable).
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    if score_cutoff is None:
        return 1.0 - levenshtein(a, b) / longest
    # sim >= c  <=>  dist <= longest * (1 - c); ceil() keeps the edge
    # exact against float rounding (one extra diagonal costs nothing).
    dist_cutoff = math.ceil(longest * (1.0 - score_cutoff))
    return 1.0 - levenshtein(a, b, score_cutoff=dist_cutoff) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    window = max(window, 0)
    match_a = [False] * la
    match_b = [False] * lb
    matches = 0
    for i in range(la):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and a[i] == b[j]:
                match_a[i] = match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if match_a[i]:
            while not match_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / la + matches / lb + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix (up to 4 chars)."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def jaccard(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard similarity of two token collections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def overlap(a: Sequence[str], b: Sequence[str]) -> float:
    """Overlap coefficient: |A ∩ B| / min(|A|, |B|)."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 1.0 if not sa and not sb else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def cosine(a: Sequence[str], b: Sequence[str]) -> float:
    """Cosine similarity over token count vectors."""
    ca, cb = Counter(a), Counter(b)
    if not ca and not cb:
        return 1.0
    if not ca or not cb:
        return 0.0
    dot = sum(ca[t] * cb[t] for t in ca.keys() & cb.keys())
    norm = math.sqrt(sum(v * v for v in ca.values())) * math.sqrt(
        sum(v * v for v in cb.values())
    )
    return dot / norm if norm else 0.0
