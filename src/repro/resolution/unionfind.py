"""Union-find (disjoint sets) with path compression and union by rank —
the clustering backbone of the entity-resolution substrate."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[Hashable]]:
        """All disjoint sets, each sorted, ordered by first member."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        clusters = [sorted(members) for members in by_root.values()]
        clusters.sort(key=lambda ms: ms[0])
        return clusters

    def __len__(self) -> int:
        return len(self._parent)
