"""Whitespace tokenization used by token-level candidate generation
(Appendix A splits values by whitespace)."""

from __future__ import annotations

from typing import List, Tuple


def tokens(value: str) -> List[str]:
    """Whitespace-delimited tokens of a value."""
    return value.split()


def token_spans(value: str) -> List[Tuple[int, int, str]]:
    """Tokens with their 0-based character spans ``(start, end, text)``."""
    spans: List[Tuple[int, int, str]] = []
    i = 0
    n = len(value)
    while i < n:
        while i < n and value[i].isspace():
            i += 1
        if i >= n:
            break
        start = i
        while i < n and not value[i].isspace():
            i += 1
        spans.append((start, i, value[start:i]))
    return spans


def join(tokens_: List[str]) -> str:
    """Inverse of :func:`tokens` up to whitespace normalization."""
    return " ".join(tokens_)


def contains_token_run(value: str, segment: str) -> bool:
    """Does ``value`` contain ``segment`` as a run of whole tokens?

    Token-boundary aware: ``contains_token_run("9th St", "St")`` is
    true but ``contains_token_run("9th Stone", "St")`` is false.
    """
    value_tokens = tokens(value)
    seg_tokens = tokens(segment)
    if not seg_tokens or len(seg_tokens) > len(value_tokens):
        return False
    return any(
        value_tokens[i : i + len(seg_tokens)] == seg_tokens
        for i in range(len(value_tokens) - len(seg_tokens) + 1)
    )
