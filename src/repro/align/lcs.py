"""Longest-common-subsequence alignment of token sequences (Appendix A).

The LCS of the two token sequences anchors the alignment; each maximal
run of unmatched tokens on both sides between consecutive anchors forms
an *aligned segment pair*, which becomes a fine-grained candidate
replacement.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def lcs_pairs(a: Sequence[str], b: Sequence[str]) -> List[Tuple[int, int]]:
    """Index pairs ``(i, j)`` of one longest common subsequence of
    ``a`` and ``b`` (standard O(len(a)*len(b)) DP, leftmost-greedy
    backtrace for determinism)."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return []
    # dp[i][j] = LCS length of a[i:], b[j:]
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        row = dp[i]
        nxt = dp[i + 1]
        for j in range(m - 1, -1, -1):
            if a[i] == b[j]:
                row[j] = nxt[j + 1] + 1
            else:
                row[j] = nxt[j] if nxt[j] >= row[j + 1] else row[j + 1]
    pairs: List[Tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            pairs.append((i, j))
            i += 1
            j += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    return len(lcs_pairs(a, b))


def aligned_segments(
    a: Sequence[str], b: Sequence[str]
) -> List[Tuple[List[str], List[str]]]:
    """Aligned non-identical segment pairs between LCS anchors.

    Segments where either side is empty (pure insertions/deletions) are
    skipped: a replacement needs two non-empty strings.
    """
    anchors = lcs_pairs(a, b)
    segments: List[Tuple[List[str], List[str]]] = []
    prev_i = prev_j = 0
    for i, j in anchors + [(len(a), len(b))]:
        gap_a = list(a[prev_i:i])
        gap_b = list(b[prev_j:j])
        if gap_a and gap_b:
            segments.append((gap_a, gap_b))
        prev_i, prev_j = i + 1, j + 1
    return segments
