"""Tokenization and sequence alignment (Appendix A substrate)."""

from .damerau import alignment_segments, damerau_levenshtein
from .lcs import aligned_segments, lcs_length, lcs_pairs
from .tokenize import contains_token_run, join, token_spans, tokens
