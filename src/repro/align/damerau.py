"""Damerau-Levenshtein distance and alignment (Appendix A cites [11] as
an alternative source of candidate replacements).

The distance counts insertions, deletions, substitutions and adjacent
transpositions.  ``alignment_segments`` extracts maximal runs of
non-match operations over token sequences, the analogue of the LCS
gap segments.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def damerau_levenshtein(a: Sequence, b: Sequence) -> int:
    """Restricted Damerau-Levenshtein (optimal string alignment) distance."""
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    dist = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dist[i][0] = i
    for j in range(m + 1):
        dist[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                best = min(best, dist[i - 2][j - 2] + 1)
            dist[i][j] = best
    return dist[n][m]


def _operations(a: Sequence, b: Sequence) -> List[Tuple[str, int, int]]:
    """Edit script as ``(op, i, j)`` triples, ``op`` in
    {match, sub, ins, del, swap}; positions are end-exclusive prefixes."""
    n, m = len(a), len(b)
    dist = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dist[i][0] = i
    for j in range(m + 1):
        dist[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                best = min(best, dist[i - 2][j - 2] + 1)
            dist[i][j] = best
    ops: List[Tuple[str, int, int]] = []
    i, j = n, m
    while i > 0 or j > 0:
        if (
            i > 1
            and j > 1
            and a[i - 1] == b[j - 2]
            and a[i - 2] == b[j - 1]
            and dist[i][j] == dist[i - 2][j - 2] + 1
        ):
            ops.append(("swap", i, j))
            i -= 2
            j -= 2
        elif i > 0 and j > 0 and a[i - 1] == b[j - 1] and dist[i][j] == dist[i - 1][j - 1]:
            ops.append(("match", i, j))
            i -= 1
            j -= 1
        elif i > 0 and j > 0 and dist[i][j] == dist[i - 1][j - 1] + 1:
            ops.append(("sub", i, j))
            i -= 1
            j -= 1
        elif i > 0 and dist[i][j] == dist[i - 1][j] + 1:
            ops.append(("del", i, j))
            i -= 1
        else:
            ops.append(("ins", i, j))
            j -= 1
    ops.reverse()
    return ops


def alignment_segments(
    a: Sequence[str], b: Sequence[str]
) -> List[Tuple[List[str], List[str]]]:
    """Maximal non-match runs of the DL alignment as segment pairs.

    Mirrors :func:`repro.align.lcs.aligned_segments`; runs where either
    side contributes no tokens are skipped.
    """
    segments: List[Tuple[List[str], List[str]]] = []
    run_a: List[str] = []
    run_b: List[str] = []

    def flush() -> None:
        if run_a and run_b:
            segments.append((list(run_a), list(run_b)))
        run_a.clear()
        run_b.clear()

    for op, i, j in _operations(a, b):
        if op == "match":
            flush()
        elif op == "sub":
            run_a.append(a[i - 1])
            run_b.append(b[j - 1])
        elif op == "del":
            run_a.append(a[i - 1])
        elif op == "ins":
            run_b.append(b[j - 1])
        else:  # swap: two tokens in transposed order
            run_a.extend([a[i - 2], a[i - 1]])
            run_b.extend([b[j - 2], b[j - 1]])
    flush()
    return segments
