"""Clustered-records data model, statistics, and CSV/JSON I/O."""

from .io import (
    cluster_records,
    read_csv_clustered,
    read_csv_clusters,
    read_csv_records,
    read_json_clusters,
    read_json_records,
    write_csv_clusters,
    write_golden_csv,
    write_json_clusters,
)
from .stats import DatasetStats, dataset_stats
from .table import CellRef, Cluster, ClusterTable, Record
