"""Reading and writing clustered tables (CSV / JSON).

Downstream users rarely start from in-memory objects; these helpers
bridge flat record files and :class:`~repro.data.table.ClusterTable`:

* ``read_csv_records`` / ``read_json_records`` — load flat records;
* ``cluster_records`` — group them by a key column (the ISBN / ISSN /
  EIN pattern of the paper's datasets);
* ``write_csv_clusters`` / ``write_json_clusters`` — persist a table
  with its cluster assignment;
* ``write_golden_csv`` — export golden records.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..resolution.matcher import cluster_by_key
from .table import ClusterTable, Record

PathLike = Union[str, Path]

#: Reserved column used to persist cluster membership.
CLUSTER_COLUMN = "__cluster__"
#: Reserved column used to persist record ids.
RID_COLUMN = "__rid__"
#: Reserved column used to persist record provenance.
SOURCE_COLUMN = "__source__"

_RESERVED = (CLUSTER_COLUMN, RID_COLUMN, SOURCE_COLUMN)


def read_csv_records(
    path: PathLike,
    source_column: Optional[str] = None,
    id_column: Optional[str] = None,
) -> List[Record]:
    """Load flat records from a CSV file with a header row.

    Reserved columns (``__rid__`` / ``__source__`` / ``__cluster__``,
    e.g. from a file previously written by :func:`write_csv_records`
    or :func:`write_csv_clusters`) populate the record id and
    provenance rather than becoming attribute values, so
    read-then-write round-trips are stable.
    """
    records: List[Record] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for idx, row in enumerate(reader):
            rid = row.get(id_column, "") if id_column else ""
            rid = rid or row.get(RID_COLUMN, "") or ""
            source = row.get(source_column, "") if source_column else ""
            source = source or row.get(SOURCE_COLUMN, "") or ""
            values = {
                k: (v or "")
                for k, v in row.items()
                if k not in (id_column, source_column)
                and k not in _RESERVED
                and k is not None
            }
            records.append(Record(rid or f"r{idx}", values, source))
    return records


def read_json_records(path: PathLike) -> List[Record]:
    """Load records from a JSON array of objects.

    Reserved keys ``__rid__`` / ``__source__`` populate the record id
    and provenance; everything else becomes attribute values.
    """
    with open(path, encoding="utf-8") as handle:
        rows = json.load(handle)
    records: List[Record] = []
    for idx, row in enumerate(rows):
        rid = str(row.get(RID_COLUMN, f"r{idx}"))
        source = str(row.get(SOURCE_COLUMN, ""))
        values = {
            k: str(v)
            for k, v in row.items()
            if k not in (RID_COLUMN, SOURCE_COLUMN)
        }
        records.append(Record(rid, values, source))
    return records


def write_csv_records(
    records: Sequence[Record],
    path: PathLike,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Persist flat records (inverse of :func:`read_csv_records`); ids
    and sources ride along in the reserved columns."""
    if columns is None:
        seen: List[str] = []
        for record in records:
            for column in record.values:
                if column not in seen:
                    seen.append(column)
        columns = seen
    fieldnames = [RID_COLUMN, SOURCE_COLUMN, *columns]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            row = {RID_COLUMN: record.rid, SOURCE_COLUMN: record.source}
            for column in columns:
                row[column] = record.values.get(column, "")
            writer.writerow(row)


def cluster_records(
    records: Sequence[Record], key_column: str
) -> ClusterTable:
    """Cluster flat records by exact key equality (the paper's input
    shape: records keyed by ISBN / ISSN / EIN)."""
    return cluster_by_key(records, key_column)


def read_csv_clusters(
    path: PathLike,
    key_column: str,
    source_column: Optional[str] = None,
    id_column: Optional[str] = None,
) -> ClusterTable:
    """One-shot: read a CSV and cluster it by ``key_column``."""
    records = read_csv_records(path, source_column, id_column)
    return cluster_records(records, key_column)


def write_csv_clusters(table: ClusterTable, path: PathLike) -> None:
    """Persist a clustered table; cluster membership, record ids and
    sources ride along in reserved columns."""
    fieldnames = [CLUSTER_COLUMN, RID_COLUMN, SOURCE_COLUMN, *table.columns]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for cluster in table.clusters:
            for record in cluster.records:
                row = {
                    CLUSTER_COLUMN: cluster.key,
                    RID_COLUMN: record.rid,
                    SOURCE_COLUMN: record.source,
                }
                for column in table.columns:
                    row[column] = record.values.get(column, "")
                writer.writerow(row)


def read_csv_clustered(path: PathLike) -> ClusterTable:
    """Inverse of :func:`write_csv_clusters`."""
    by_key: Dict[str, List[Record]] = {}
    columns: List[str] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        columns = [c for c in (reader.fieldnames or []) if c not in _RESERVED]
        for row in reader:
            record = Record(
                row.get(RID_COLUMN, ""),
                {c: row.get(c, "") or "" for c in columns},
                row.get(SOURCE_COLUMN, "") or "",
            )
            by_key.setdefault(row.get(CLUSTER_COLUMN, ""), []).append(record)
    table = ClusterTable(columns)
    for key, records in by_key.items():
        table.add_cluster(key, records)
    return table


def write_json_clusters(table: ClusterTable, path: PathLike) -> None:
    """Persist a clustered table as nested JSON."""
    payload = [
        {
            "key": cluster.key,
            "records": [
                {
                    "rid": record.rid,
                    "source": record.source,
                    "values": dict(record.values),
                }
                for record in cluster.records
            ],
        }
        for cluster in table.clusters
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, ensure_ascii=False)


def read_json_clusters(path: PathLike) -> ClusterTable:
    """Inverse of :func:`write_json_clusters`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    columns: List[str] = []
    for cluster in payload:
        for record in cluster.get("records", ()):
            for column in record.get("values", {}):
                if column not in columns:
                    columns.append(column)
    table = ClusterTable(columns)
    for cluster in payload:
        table.add_cluster(
            str(cluster.get("key", "")),
            [
                Record(
                    str(r.get("rid", "")),
                    {k: str(v) for k, v in r.get("values", {}).items()},
                    str(r.get("source", "")),
                )
                for r in cluster.get("records", ())
            ],
        )
    return table


def write_golden_csv(
    golden: Dict[int, Optional[str]],
    table: ClusterTable,
    column: str,
    path: PathLike,
) -> None:
    """Export one column's golden values, one row per cluster."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["cluster_key", column])
        for ci, cluster in enumerate(table.clusters):
            writer.writerow([cluster.key, golden.get(ci) or ""])
