"""Dataset statistics in the shape of the paper's Table 6."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Optional, Set, Tuple

from .table import CellRef, ClusterTable

#: Labeler: given two cells of the same cluster, is the pair a variant
#: pair (same logical value) rather than a conflict pair?
PairLabeler = Callable[[CellRef, CellRef], bool]


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table 6."""

    records: int
    clusters: int
    avg_cluster_size: float
    min_cluster_size: int
    max_cluster_size: int
    distinct_value_pairs: int
    variant_pair_pct: Optional[float] = None
    conflict_pair_pct: Optional[float] = None

    def as_row(self) -> Tuple:
        return (
            self.records,
            self.clusters,
            round(self.avg_cluster_size, 1),
            self.min_cluster_size,
            self.max_cluster_size,
            self.distinct_value_pairs,
            None
            if self.variant_pair_pct is None
            else round(self.variant_pair_pct * 100, 1),
            None
            if self.conflict_pair_pct is None
            else round(self.conflict_pair_pct * 100, 1),
        )


def dataset_stats(
    table: ClusterTable,
    column: str,
    labeler: Optional[PairLabeler] = None,
) -> DatasetStats:
    """Compute the Table 6 row for one column of a clustered table.

    ``distinct_value_pairs`` counts distinct unordered pairs of
    non-identical values co-occurring in a cluster, matching the paper's
    "# of distinct value pairs".  With a ``labeler``, the variant /
    conflict split is computed over those distinct pairs (first
    occurrence of each value pair decides its label, mirroring the
    paper's manual labeling of sampled pairs).
    """
    sizes = [len(c) for c in table.clusters]
    distinct: Set[Tuple[str, str]] = set()
    variant: Set[Tuple[str, str]] = set()
    for ci in range(table.num_clusters):
        cells = table.cluster_cells(ci, column)
        for a, b in combinations(cells, 2):
            va, vb = table.value(a), table.value(b)
            if va == vb:
                continue
            pair = (va, vb) if va < vb else (vb, va)
            if pair in distinct:
                continue
            distinct.add(pair)
            if labeler is not None and labeler(a, b):
                variant.add(pair)
    variant_pct = conflict_pct = None
    if labeler is not None and distinct:
        variant_pct = len(variant) / len(distinct)
        conflict_pct = 1.0 - variant_pct
    return DatasetStats(
        records=table.num_records,
        clusters=table.num_clusters,
        avg_cluster_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
        min_cluster_size=min(sizes) if sizes else 0,
        max_cluster_size=max(sizes) if sizes else 0,
        distinct_value_pairs=len(distinct),
        variant_pair_pct=variant_pct,
        conflict_pair_pct=conflict_pct,
    )
