"""The clustered-records data model (Problem Definition, Section 2).

Entity consolidation takes a collection of clusters of duplicate
records.  :class:`ClusterTable` stores them column-wise-mutable so the
standardization pipeline can update values in place;
:class:`CellRef` identifies one attribute value of one record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class CellRef:
    """One attribute value: (cluster index, row within cluster, column)."""

    cluster: int
    row: int
    column: str


@dataclass
class Record:
    """A single source record: an id, a source tag, and its values."""

    rid: str
    values: Dict[str, str]
    source: str = ""


@dataclass
class Cluster:
    """A cluster of records believed to describe one real-world entity."""

    key: str
    records: List[Record] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)


class ClusterTable:
    """A collection of clusters sharing a schema."""

    def __init__(self, columns: Sequence[str], clusters: Optional[List[Cluster]] = None):
        self.columns: Tuple[str, ...] = tuple(columns)
        self.clusters: List[Cluster] = clusters if clusters is not None else []

    # -- construction ------------------------------------------------------

    def add_cluster(self, key: str, records: Iterable[Record]) -> int:
        """Append a cluster; returns its index."""
        cluster = Cluster(key, list(records))
        self.clusters.append(cluster)
        return len(self.clusters) - 1

    def copy(self) -> "ClusterTable":
        """Deep copy (values are copied; safe to mutate independently)."""
        clusters = [
            Cluster(
                c.key,
                [Record(r.rid, dict(r.values), r.source) for r in c.records],
            )
            for c in self.clusters
        ]
        return ClusterTable(self.columns, clusters)

    # -- access ------------------------------------------------------------

    def value(self, cell: CellRef) -> str:
        return self.clusters[cell.cluster].records[cell.row].values[cell.column]

    def set_value(self, cell: CellRef, value: str) -> None:
        self.clusters[cell.cluster].records[cell.row].values[cell.column] = value

    def cells(self, column: str) -> Iterator[CellRef]:
        """All cells of one column, cluster-major order."""
        for ci, cluster in enumerate(self.clusters):
            for ri in range(len(cluster.records)):
                yield CellRef(ci, ri, column)

    def cluster_cells(self, cluster: int, column: str) -> List[CellRef]:
        return [
            CellRef(cluster, ri, column)
            for ri in range(len(self.clusters[cluster].records))
        ]

    def _check_column(self, column: str) -> None:
        """Missing *cells* are tolerated, unknown *columns* are not: a
        typo'd column name must raise, not read every cell as ""."""
        if column not in self.columns:
            raise KeyError(
                f"unknown column {column!r} (have: {list(self.columns)})"
            )

    def cluster_values(self, cluster: int, column: str) -> List[str]:
        """One cluster's values; records missing the column read as ""
        (multi-column sources accept records with arbitrary keys)."""
        self._check_column(column)
        return [
            record.values.get(column, "")
            for record in self.clusters[cluster].records
        ]

    def column_values(self, column: str) -> List[str]:
        """All values of one column, cluster-major; missing cells read
        as "" like :meth:`cluster_values`."""
        self._check_column(column)
        return [
            record.values.get(column, "")
            for cluster in self.clusters
            for record in cluster.records
        ]

    # -- shape -------------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_records(self) -> int:
        return sum(len(c.records) for c in self.clusters)

    def __repr__(self) -> str:
        return (
            f"ClusterTable({self.num_records} records in "
            f"{self.num_clusters} clusters, columns={list(self.columns)})"
        )
