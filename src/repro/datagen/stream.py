"""Batch-emitting views of the synthetic datasets (stream workloads).

A :class:`RecordStream` re-cuts a generated clustered dataset into N
record batches, as if the same dirty records arrived over time from
many sources: each record carries its entity key as an extra attribute
(the ISBN / ISSN / EIN pattern), so clusters *span batches* and the
same entities keep re-appearing with old and new variant renderings —
exactly the workload where incremental consolidation should beat a full
relearn.

Ground truth moves to record-id keying (cells of a growing table are
not stable identifiers): ``canonical_by_rid`` for the oracle and
``golden_by_key`` for end-state checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..data.table import CellRef, ClusterTable, Record
from ..resolution.matcher import cluster_by_key
from .base import GeneratedDataset

#: Default name of the synthesized entity-key attribute.
KEY_COLUMN = "entity_key"


@dataclass
class RecordStream:
    """A generated dataset re-cut as an arriving record stream."""

    name: str
    column: str
    key_column: str
    batches: List[List[Record]]
    #: record id -> canonical string of the entity the record denotes
    canonical_by_rid: Dict[str, str]
    #: cluster key -> the cluster's golden value
    golden_by_key: Dict[str, str] = field(default_factory=dict)

    @property
    def records(self) -> List[Record]:
        """All records in arrival order."""
        return [record for batch in self.batches for record in batch]

    @property
    def num_records(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def table(self) -> ClusterTable:
        """One-shot clustering of the whole stream (the baseline an
        incremental run is compared against)."""
        return cluster_by_key(
            [
                Record(r.rid, dict(r.values), r.source)
                for r in self.records
            ],
            self.key_column,
        )

    def canonical_cells(self, table: ClusterTable) -> Dict[CellRef, str]:
        """Cell-keyed ground truth for ``table`` (one-shot harness)."""
        canonical: Dict[CellRef, str] = {}
        for ci, cluster in enumerate(table.clusters):
            for ri, record in enumerate(cluster.records):
                canon = self.canonical_by_rid.get(record.rid)
                if canon is not None:
                    canonical[CellRef(ci, ri, self.column)] = canon
        return canonical


def dataset_stream(
    dataset: GeneratedDataset,
    batches: int,
    key_column: str = KEY_COLUMN,
    seed: int = 0,
    shuffle: bool = True,
) -> RecordStream:
    """Re-cut ``dataset`` into ``batches`` record batches.

    Records are (optionally) shuffled with ``seed`` before slicing so
    every batch mixes entities — each cluster's variants trickle in
    across the whole stream rather than arriving together.
    """
    if batches < 1:
        raise ValueError("batches must be >= 1")
    flat: List[Record] = []
    canonical_by_rid: Dict[str, str] = {}
    for ci, cluster in enumerate(dataset.table.clusters):
        for ri, record in enumerate(cluster.records):
            values = dict(record.values)
            values[key_column] = cluster.key
            flat.append(Record(record.rid, values, record.source))
            canon = dataset.canonical.get(CellRef(ci, ri, dataset.column))
            if canon is not None:
                canonical_by_rid[record.rid] = canon
    if shuffle:
        random.Random(seed).shuffle(flat)
    base, extra = divmod(len(flat), batches)
    cut: List[List[Record]] = []
    start = 0
    for i in range(batches):
        size = base + (1 if i < extra else 0)
        if size:
            cut.append(flat[start : start + size])
        start += size
    golden_by_key = {
        dataset.table.clusters[ci].key: value
        for ci, value in dataset.golden.items()
        if ci < len(dataset.table.clusters)
    }
    return RecordStream(
        name=f"{dataset.name}-stream",
        column=dataset.column,
        key_column=key_column,
        batches=cut,
        canonical_by_rid=canonical_by_rid,
        golden_by_key=golden_by_key,
    )
