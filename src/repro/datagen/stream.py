"""Batch-emitting views of the synthetic datasets (stream workloads).

A :class:`RecordStream` re-cuts a generated clustered dataset into N
record batches, as if the same dirty records arrived over time from
many sources: each record carries its entity key as an extra attribute
(the ISBN / ISSN / EIN pattern), so clusters *span batches* and the
same entities keep re-appearing with old and new variant renderings —
exactly the workload where incremental consolidation should beat a full
relearn.

Ground truth moves to record-id keying (cells of a growing table are
not stable identifiers): ``canonical_by_rid`` for the oracle and
``golden_by_key`` for end-state checks.

:func:`golden_stream` is the multi-column batch emitter behind
``repro stream --columns``: it composes the address / author-list /
journal-title generators **per column with shared entity identity** —
one entity per cluster per column, every record rendering all columns
at once — which is the workload
:class:`~repro.stream.golden.GoldenStreamConsolidator` consolidates
into streaming golden records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..data.table import CellRef, ClusterTable, Record
from ..resolution.matcher import cluster_by_key
from . import address, authorlist, journaltitle
from .base import GeneratedDataset, GeneratorSpec, cluster_sizes

#: Default name of the synthesized entity-key attribute.
KEY_COLUMN = "entity_key"

#: The column families ``golden_stream`` can compose: column name ->
#: (make entity, canonical renderer, variant renderer), straight from
#: the single-column generators so the dirt families stay the paper's.
GOLDEN_COLUMN_FAMILIES = {
    "address": (
        address.make_address,
        address.canonical_address,
        address.render_variant,
    ),
    "authors": (
        authorlist.make_author_list,
        authorlist.canonical_authors,
        authorlist.render_variant,
    ),
    "title": (
        journaltitle.make_journal,
        journaltitle.canonical_journal,
        journaltitle.render_variant,
    ),
}

#: Default column set of a golden stream (all three families).
GOLDEN_COLUMNS = tuple(GOLDEN_COLUMN_FAMILIES)


@dataclass
class RecordStream:
    """A generated dataset re-cut as an arriving record stream."""

    name: str
    column: str
    key_column: str
    batches: List[List[Record]]
    #: record id -> canonical string of the entity the record denotes
    canonical_by_rid: Dict[str, str]
    #: cluster key -> the cluster's golden value
    golden_by_key: Dict[str, str] = field(default_factory=dict)

    @property
    def records(self) -> List[Record]:
        """All records in arrival order."""
        return [record for batch in self.batches for record in batch]

    @property
    def num_records(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def table(self) -> ClusterTable:
        """One-shot clustering of the whole stream (the baseline an
        incremental run is compared against)."""
        return cluster_by_key(
            [
                Record(r.rid, dict(r.values), r.source)
                for r in self.records
            ],
            self.key_column,
        )

    def canonical_cells(self, table: ClusterTable) -> Dict[CellRef, str]:
        """Cell-keyed ground truth for ``table`` (one-shot harness)."""
        canonical: Dict[CellRef, str] = {}
        for ci, cluster in enumerate(table.clusters):
            for ri, record in enumerate(cluster.records):
                canon = self.canonical_by_rid.get(record.rid)
                if canon is not None:
                    canonical[CellRef(ci, ri, self.column)] = canon
        return canonical


def dataset_stream(
    dataset: GeneratedDataset,
    batches: int,
    key_column: str = KEY_COLUMN,
    seed: int = 0,
    shuffle: bool = True,
) -> RecordStream:
    """Re-cut ``dataset`` into ``batches`` record batches.

    Records are (optionally) shuffled with ``seed`` before slicing so
    every batch mixes entities — each cluster's variants trickle in
    across the whole stream rather than arriving together.
    """
    if batches < 1:
        raise ValueError("batches must be >= 1")
    flat: List[Record] = []
    canonical_by_rid: Dict[str, str] = {}
    for ci, cluster in enumerate(dataset.table.clusters):
        for ri, record in enumerate(cluster.records):
            values = dict(record.values)
            values[key_column] = cluster.key
            flat.append(Record(record.rid, values, record.source))
            canon = dataset.canonical.get(CellRef(ci, ri, dataset.column))
            if canon is not None:
                canonical_by_rid[record.rid] = canon
    if shuffle:
        random.Random(seed).shuffle(flat)
    base, extra = divmod(len(flat), batches)
    cut: List[List[Record]] = []
    start = 0
    for i in range(batches):
        size = base + (1 if i < extra else 0)
        if size:
            cut.append(flat[start : start + size])
        start += size
    golden_by_key = {
        dataset.table.clusters[ci].key: value
        for ci, value in dataset.golden.items()
        if ci < len(dataset.table.clusters)
    }
    return RecordStream(
        name=f"{dataset.name}-stream",
        column=dataset.column,
        key_column=key_column,
        batches=cut,
        canonical_by_rid=canonical_by_rid,
        golden_by_key=golden_by_key,
    )


@dataclass
class MultiColumnStream:
    """A multi-column record stream with full per-column ground truth.

    The multi-column analogue of :class:`RecordStream`: every record
    carries all ``columns`` plus the entity key, ground truth is keyed
    by record id *per column* (``canonical_by_rid[column][rid]``), and
    the golden record of each cluster is the canonical rendering of the
    cluster's primary entity in every column
    (``golden_by_key[key][column]``).
    """

    name: str
    columns: Tuple[str, ...]
    key_column: str
    batches: List[List[Record]]
    #: column -> record id -> canonical string of the denoted entity
    canonical_by_rid: Dict[str, Dict[str, str]]
    #: cluster key -> column -> the cluster's golden value
    golden_by_key: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @property
    def records(self) -> List[Record]:
        """All records in arrival order."""
        return [record for batch in self.batches for record in batch]

    @property
    def num_records(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def table(self) -> ClusterTable:
        """One-shot clustering of the whole stream — the table a
        one-shot :class:`~repro.pipeline.consolidate.GoldenRecordCreation`
        run (the equivalence baseline) operates on."""
        return cluster_by_key(
            [
                Record(r.rid, dict(r.values), r.source)
                for r in self.records
            ],
            self.key_column,
        )

    def canonical_cells(
        self, table: ClusterTable, column: str
    ) -> Dict[CellRef, str]:
        """Cell-keyed ground truth of one column for ``table`` (the
        one-shot oracle's view)."""
        by_rid = self.canonical_by_rid.get(column, {})
        canonical: Dict[CellRef, str] = {}
        for ci, cluster in enumerate(table.clusters):
            for ri, record in enumerate(cluster.records):
                canon = by_rid.get(record.rid)
                if canon is not None:
                    canonical[CellRef(ci, ri, column)] = canon
        return canonical


def golden_stream(
    batches: int,
    n_clusters: int = 60,
    mean_cluster_size: float = 4.0,
    conflict_rate: float = 0.0,
    variant_rate: float = 0.75,
    columns: Sequence[str] = GOLDEN_COLUMNS,
    key_column: str = KEY_COLUMN,
    seed: int = 0,
    shuffle: bool = True,
    n_sources: int = 12,
) -> MultiColumnStream:
    """Generate a multi-column record stream with shared entity identity.

    Each cluster draws one entity **per column** (an address, an author
    list, a journal title — the same real-world thing described along
    several attributes); each record renders every column, canonically
    or as a variant (``variant_rate``), or — with ``conflict_rate`` —
    as a different entity of the same family (the conflict pairs a
    golden-record oracle must reject).  Cluster keys are zero-padded so
    first-seen order and lexicographic order agree: an unshuffled
    stream consolidated incrementally builds the *same table layout* as
    :func:`~repro.resolution.matcher.cluster_by_key` over the
    concatenated records, which is what lets the equivalence harness
    compare streamed and one-shot runs cell for cell.

    Records are (optionally) shuffled before slicing into ``batches``
    so every batch mixes entities, exactly like :func:`dataset_stream`.
    """
    if batches < 1:
        raise ValueError("batches must be >= 1")
    unknown = [c for c in columns if c not in GOLDEN_COLUMN_FAMILIES]
    if unknown:
        raise ValueError(
            f"unknown golden columns {unknown}; available: "
            f"{sorted(GOLDEN_COLUMN_FAMILIES)}"
        )
    if not columns:
        raise ValueError("at least one column is required")
    columns = tuple(columns)
    rng = random.Random(seed)
    spec = GeneratorSpec(
        n_clusters=n_clusters,
        mean_cluster_size=mean_cluster_size,
        conflict_rate=conflict_rate,
        variant_rate=variant_rate,
        n_sources=n_sources,
        seed=seed,
    )
    flat: List[Record] = []
    canonical_by_rid: Dict[str, Dict[str, str]] = {c: {} for c in columns}
    golden_by_key: Dict[str, Dict[str, str]] = {}
    rid = 0
    for ci, size in enumerate(cluster_sizes(spec, rng)):
        key = f"c{ci:05d}"
        primaries = {}
        alternates: Dict[str, List[object]] = {c: [] for c in columns}
        for column in columns:
            make_entity, canonical_of, _render = GOLDEN_COLUMN_FAMILIES[
                column
            ]
            primaries[column] = make_entity(rng)
        golden_by_key[key] = {
            column: GOLDEN_COLUMN_FAMILIES[column][1](primaries[column])
            for column in columns
        }
        for _ in range(size):
            values = {key_column: key}
            record_id = f"g{rid}"
            rid += 1
            for column in columns:
                make_entity, canonical_of, render_variant = (
                    GOLDEN_COLUMN_FAMILIES[column]
                )
                if size > 1 and rng.random() < spec.conflict_rate:
                    pool = alternates[column]
                    if len(pool) < spec.max_alternates_per_cluster and (
                        not pool or rng.random() < 0.5
                    ):
                        pool.append(make_entity(rng))
                    entity = rng.choice(pool)
                else:
                    entity = primaries[column]
                canon = canonical_of(entity)
                if rng.random() < spec.variant_rate:
                    values[column] = render_variant(entity, rng)
                else:
                    values[column] = canon
                canonical_by_rid[column][record_id] = canon
            source = f"src{rng.randrange(spec.n_sources)}"
            flat.append(Record(record_id, values, source))
    if shuffle:
        random.Random(seed).shuffle(flat)
    base, extra = divmod(len(flat), batches)
    cut: List[List[Record]] = []
    start = 0
    for i in range(batches):
        size = base + (1 if i < extra else 0)
        if size:
            cut.append(flat[start : start + size])
        start += size
    return MultiColumnStream(
        name="golden-stream",
        columns=columns,
        key_column=key_column,
        batches=cut,
        canonical_by_rid=canonical_by_rid,
        golden_by_key=golden_by_key,
    )
