"""Synthetic dataset generators standing in for the paper's datasets."""

from .address import address_dataset
from .authorlist import authorlist_dataset
from .base import GeneratedDataset, GeneratorSpec
from .journaltitle import journaltitle_dataset
from .stream import (
    GOLDEN_COLUMNS,
    MultiColumnStream,
    RecordStream,
    dataset_stream,
    golden_stream,
)

DATASETS = {
    "Address": address_dataset,
    "AuthorList": authorlist_dataset,
    "JournalTitle": journaltitle_dataset,
}
