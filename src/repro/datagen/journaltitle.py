"""Synthetic JournalTitle dataset (stand-in for the rayyan.qcri.org
journal records clustered by ISSN; Table 6 row 3).

Titles are composed from head words ("Journal", "International",
"Annals", ...) plus qualifier/field words; canonical form is the full
title-case spelling.  Variants abbreviate head words (``Journal -> J``)
with or without trailing periods, upper-case the title, swap
``and``/``&``, or append a trailing period — the families behind the
paper's variant-heavy (74%) mix and its dramatic Table 8 improvement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from . import corpus
from .base import GeneratedDataset, GeneratorSpec, assemble

COLUMN = "title"


@dataclass(frozen=True)
class JournalEntity:
    """A journal, identified by its full canonical title."""

    title: Tuple[str, ...]  # word sequence, canonical spelling


_PATTERNS = (
    ("Journal", "of", "{Q}", "{F}"),
    ("Journal", "of", "{F}"),
    ("International", "Journal", "of", "{F}"),
    ("Annals", "of", "{F}"),
    ("Archives", "of", "{F}", "and", "{F2}"),
    ("{F}", "Letters"),
    ("{Q}", "{F}", "Review"),
    ("Transactions", "on", "{F}"),
    ("Proceedings", "of", "the", "{F}", "Society"),
    ("Bulletin", "of", "{Q}", "{F}"),
    ("Advances", "in", "{F}"),
    ("Quarterly", "Review", "of", "{F}"),
)


def make_journal(rng: random.Random) -> JournalEntity:
    pattern = rng.choice(_PATTERNS)
    field = rng.choice(corpus.JOURNAL_FIELDS)
    field2 = rng.choice(corpus.JOURNAL_FIELDS)
    qualifier = rng.choice(corpus.JOURNAL_QUALIFIERS)
    words = tuple(
        w.replace("{Q}", qualifier).replace("{F2}", field2).replace("{F}", field)
        for w in pattern
    )
    return JournalEntity(words)


def canonical_journal(entity: JournalEntity) -> str:
    return " ".join(entity.title)


def render_variant(entity: JournalEntity, rng: random.Random) -> str:
    words = list(entity.title)
    if rng.random() < 0.7:
        dotted = rng.random() < 0.5
        words = [
            (corpus.JOURNAL_HEADS[w] + ("." if dotted else ""))
            if w in corpus.JOURNAL_HEADS
            else w
            for w in words
        ]
    if rng.random() < 0.45:
        # ISO-4-style field abbreviation ("Biology" -> "Biol"), the
        # long-tail family no wrangler rule set covers.
        dotted = rng.random() < 0.5
        words = [
            (corpus.FIELD_ABBREVIATIONS[w] + ("." if dotted else ""))
            if w in corpus.FIELD_ABBREVIATIONS
            else w
            for w in words
        ]
    if rng.random() < 0.2:
        words = ["&" if w == "and" else w for w in words]
    title = " ".join(words)
    if rng.random() < 0.2:
        title = title.upper()
    if rng.random() < 0.15:
        title += "."
    return title


def journaltitle_dataset(
    scale: float = 1.0, seed: int = 13, spec: Optional[GeneratorSpec] = None
) -> GeneratedDataset:
    """Generate the synthetic JournalTitle dataset.

    The paper's dataset is many tiny clusters (avg 1.8) with a
    variant-heavy pair mix (74% variant / 26% conflict): the same
    journal spelled differently across records sharing an ISSN.
    """
    if spec is None:
        spec = GeneratorSpec(
            n_clusters=max(20, int(700 * scale)),
            mean_cluster_size=1.9,
            conflict_rate=0.12,
            variant_rate=0.55,
            seed=seed,
        )
    rng = random.Random(spec.seed)
    return assemble(
        "JournalTitle",
        COLUMN,
        spec,
        rng,
        make_journal,
        canonical_journal,
        render_variant,
    )
