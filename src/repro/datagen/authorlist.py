"""Synthetic AuthorList dataset (stand-in for the AbeBooks book data
clustered by ISBN; Table 6 row 1, Table 4 sample groups).

A cluster's entity is an author list; its canonical form is the
lowercase ``"first last"`` list joined by ``", "``, e.g.
``"dan fox, jon box"``.  Variant renderings reproduce the paper's
observed families (Table 4):

* group A/C — ``"fox, dan box, jon"``: last-comma-first, authors joined
  by a single space;
* group D — ``"levy, margipowell, philip"``: same but with the joiner
  missing entirely;
* group B — nickname shortening (``robert -> bob``);
* group E — annotations (``"carroll, john (edt)"``);
* initials (Figure 2 group 2) — ``"d. fox, j. box"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from . import corpus
from .base import GeneratedDataset, GeneratorSpec, assemble

COLUMN = "authors"


@dataclass(frozen=True)
class AuthorListEntity:
    """An ordered list of (first, last) author names, lowercase."""

    authors: Tuple[Tuple[str, str], ...]


def canonical_authors(entity: AuthorListEntity) -> str:
    return ", ".join(f"{first} {last}" for first, last in entity.authors)


def make_author_list(rng: random.Random) -> AuthorListEntity:
    count = rng.choices((1, 2, 3), weights=(5, 3, 1))[0]
    authors = tuple(
        (
            rng.choice(corpus.FIRST_NAMES).lower(),
            rng.choice(corpus.LAST_NAMES).lower(),
        )
        for _ in range(count)
    )
    return AuthorListEntity(authors)


_NICKNAMES_LOWER = {
    full.lower(): nick.lower() for full, nick in corpus.NICKNAMES.items()
}

#: Variant styles and their sampling weights.
_STYLES = (
    ("transposed", 4),  # "fox, dan box, jon"
    ("transposed_nosep", 1),  # "levy, margipowell, philip"
    ("initials", 3),  # "d. fox, j. box"
    ("annotated", 2),  # "fox, dan (edt)"
    ("nickname", 2),  # "bob fox, jon box"
)


def render_variant(entity: AuthorListEntity, rng: random.Random) -> str:
    style = rng.choices(
        [name for name, _ in _STYLES], weights=[w for _, w in _STYLES]
    )[0]
    authors = entity.authors
    if style == "transposed":
        return " ".join(f"{last}, {first}" for first, last in authors)
    if style == "transposed_nosep":
        return "".join(f"{last}, {first}" for first, last in authors)
    if style == "initials":
        return ", ".join(f"{first[0]}. {last}" for first, last in authors)
    if style == "annotated":
        note = rng.choice(corpus.AUTHOR_ANNOTATIONS)
        return " ".join(f"{last}, {first} {note}" for first, last in authors)
    # nickname: shorten every first name that has a known nickname
    return ", ".join(
        f"{_NICKNAMES_LOWER.get(first, first)} {last}" for first, last in authors
    )


def authorlist_dataset(
    scale: float = 1.0, seed: int = 11, spec: Optional[GeneratorSpec] = None
) -> GeneratedDataset:
    """Generate the synthetic AuthorList dataset.

    The paper's dataset has few, large clusters (avg 26.9) and is
    conflict-heavy at the distinct-pair level (73.5%): many sellers list
    genuinely different author strings under one ISBN.  We keep the
    conflict-heavy mix but cap cluster sizes at a laptop-friendly mean.
    """
    if spec is None:
        spec = GeneratorSpec(
            n_clusters=max(5, int(60 * scale)),
            mean_cluster_size=8.0,
            conflict_rate=0.55,
            variant_rate=0.6,
            seed=seed,
        )
    rng = random.Random(spec.seed)
    return assemble(
        "AuthorList",
        COLUMN,
        spec,
        rng,
        make_author_list,
        canonical_authors,
        render_variant,
    )
