"""Synthetic Address dataset (stand-in for the NYC discretionary-funding
addresses, clustered by EIN; Table 6 row 2).

Canonical form mirrors the paper's Table 2: ordinal street number with
suffix, abbreviated direction, full street type, zip, postal state
abbreviation — e.g. ``"3rd E Avenue, 33990 CA"``.  Variant renderings
drop the ordinal suffix (``9th -> 9``), abbreviate the street type
(``Street -> St``), spell out the direction (``E -> East``) or the
state (``WI -> Wisconsin``) — the transformation families of Figure 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from . import corpus
from .base import GeneratedDataset, GeneratorSpec, assemble

COLUMN = "address"


@dataclass(frozen=True)
class AddressEntity:
    """One postal address (the real-world entity behind a cluster)."""

    number: Optional[int]  # ordinal street number, None for named streets
    street: Optional[str]  # named street, None for ordinal streets
    direction: Optional[str]  # abbreviated compass direction or None
    street_type: str  # full form, e.g. "Avenue"
    zip_code: str
    state: str  # postal abbreviation


def ordinal(n: int) -> str:
    """``9 -> '9th'``, ``3 -> '3rd'``, ``11 -> '11th'`` etc."""
    if 10 <= n % 100 <= 20:
        suffix = "th"
    else:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(n % 10, "th")
    return f"{n}{suffix}"


def canonical_address(entity: AddressEntity) -> str:
    street_part = (
        ordinal(entity.number) if entity.number is not None else entity.street
    )
    pieces = [street_part]
    if entity.direction:
        pieces.append(entity.direction)
    pieces.append(entity.street_type)
    return f"{' '.join(pieces)}, {entity.zip_code} {entity.state}"


#: The paper's Address data is NYC discretionary funding: the state
#: distribution is dominated by New York with a thin tail, and common
#: street types dominate.  The skew is what makes recurring constants
#: (Appendix E's freqStruc) and therefore large full-value groups real.
_STATE_POOL = ("NY",) * 14 + ("NJ", "NJ", "CT", "CT", "PA", "CA", "FL", "MA")
_TYPE_POOL = (
    ("Street",) * 8
    + ("Avenue",) * 6
    + ("Boulevard", "Boulevard", "Road", "Road", "Drive", "Place")
    + ("Lane", "Court", "Parkway", "Terrace", "Square", "Highway")
)


def make_address(rng: random.Random) -> AddressEntity:
    if rng.random() < 0.6:
        number: Optional[int] = rng.randint(1, 99)
        street: Optional[str] = None
    else:
        number = None
        street = rng.choice(corpus.STREET_NAMES)
    direction = (
        rng.choice(sorted(corpus.DIRECTIONS.values()))
        if rng.random() < 0.25
        else None
    )
    street_type = rng.choice(_TYPE_POOL)
    zip_code = f"{rng.randint(10001, 11999):05d}"
    state = rng.choice(_STATE_POOL)
    return AddressEntity(number, street, direction, street_type, zip_code, state)


_STATE_FULL = {abbrev: full for full, abbrev in corpus.STATES.items()}
_DIRECTION_FULL = {abbrev: full for full, abbrev in corpus.DIRECTIONS.items()}


def render_variant(entity: AddressEntity, rng: random.Random) -> str:
    """A non-canonical rendering; each dirty family fires independently."""
    if entity.number is not None and rng.random() < 0.5:
        street_part = str(entity.number)  # drop the ordinal suffix
    else:
        street_part = (
            ordinal(entity.number) if entity.number is not None else entity.street
        )
    direction = entity.direction
    if direction and rng.random() < 0.5:
        direction = _DIRECTION_FULL[direction]  # E -> East
    street_type = entity.street_type
    if rng.random() < 0.6:
        street_type = corpus.STREET_TYPES[street_type]  # Street -> St
        if rng.random() < 0.35:
            street_type += "."  # dotted abbreviation: "St." / "Ave."
    state = entity.state
    if rng.random() < 0.5:
        state = _STATE_FULL[state]  # WI -> Wisconsin
    pieces = [street_part]
    if direction:
        pieces.append(direction)
    pieces.append(street_type)
    return f"{' '.join(pieces)}, {entity.zip_code} {state}"


def address_dataset(
    scale: float = 1.0, seed: int = 7, spec: Optional[GeneratorSpec] = None
) -> GeneratedDataset:
    """Generate the synthetic Address dataset.

    ``scale=1.0`` targets a laptop-friendly slice of the paper's 17,497
    records / 3,038 clusters / avg 5.8 shape; the variant/conflict mix
    leans conflict-heavy (paper: 18% variant / 82% conflict).
    """
    if spec is None:
        spec = GeneratorSpec(
            n_clusters=max(10, int(260 * scale)),
            mean_cluster_size=5.8,
            conflict_rate=0.6,
            variant_rate=0.7,
            seed=seed,
        )
    rng = random.Random(spec.seed)
    return assemble(
        "Address",
        COLUMN,
        spec,
        rng,
        make_address,
        canonical_address,
        render_variant,
    )
