"""Shared machinery for the synthetic dataset generators.

A generator produces a :class:`GeneratedDataset`: the clustered table,
the target column, and cell-level ground truth (the canonical string of
the entity each cell's value denotes).  Two same-cluster cells form a
*variant pair* iff their canonical strings agree and their surface
strings differ — the labels behind the paper's precision / recall / MCC
metrics — and the cluster's *golden value* is the canonical string of
the cluster's own entity (Table 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..data.table import CellRef, ClusterTable, Record


@dataclass
class GeneratedDataset:
    """A synthetic clustered dataset with full ground truth."""

    name: str
    table: ClusterTable
    column: str
    canonical: Dict[CellRef, str]
    golden: Dict[int, str]

    def labeler(self) -> Callable[[CellRef, CellRef], bool]:
        """Pair labeler: variant iff canonical strings agree."""

        def is_variant(a: CellRef, b: CellRef) -> bool:
            ca = self.canonical.get(a)
            cb = self.canonical.get(b)
            return ca is not None and ca == cb

        return is_variant

    def fresh_table(self) -> ClusterTable:
        """A mutable copy for one experiment run."""
        return self.table.copy()


def lowercased(dataset: "GeneratedDataset") -> "GeneratedDataset":
    """The dataset with every value and its ground truth lowercased.

    The paper's consolidation experiments use "the dataset without any
    normalization except converting all characters to lowercase"
    (Section 8.3); this helper reproduces that preprocessing while
    keeping the ground truth consistent.
    """
    table = dataset.table.copy()
    for cell in table.cells(dataset.column):
        table.set_value(cell, table.value(cell).lower())
    canonical = {cell: canon.lower() for cell, canon in dataset.canonical.items()}
    golden = {ci: value.lower() for ci, value in dataset.golden.items()}
    return GeneratedDataset(dataset.name, table, dataset.column, canonical, golden)


@dataclass
class GeneratorSpec:
    """Size and dirtiness knobs shared by all three generators."""

    n_clusters: int = 200
    mean_cluster_size: float = 5.0
    conflict_rate: float = 0.3  # probability a record denotes another entity
    variant_rate: float = 0.75  # probability a non-conflict record is rendered variant
    #: Distinct wrong entities per cluster: real dirty clusters confuse
    #: an entity with one or two others, not with a fresh one per row.
    max_alternates_per_cluster: int = 2
    n_sources: int = 12
    seed: int = 7


def cluster_sizes(spec: GeneratorSpec, rng: random.Random) -> List[int]:
    """Cluster sizes: geometric-ish with a heavy-ish tail, min 1.

    Mirrors the paper's Table 6 shape (min 1, a small number of very
    large clusters).
    """
    sizes: List[int] = []
    mean = max(spec.mean_cluster_size, 1.0)
    for _ in range(spec.n_clusters):
        size = 1 + int(rng.expovariate(1.0 / max(mean - 1.0, 0.2)))
        if rng.random() < 0.02:  # occasional jumbo cluster
            size = int(size * rng.uniform(3, 8)) + 3
        sizes.append(max(1, size))
    return sizes


def assemble(
    name: str,
    column: str,
    spec: GeneratorSpec,
    rng: random.Random,
    make_entity: Callable[[random.Random], object],
    canonical_of: Callable[[object], str],
    render_variant: Callable[[object, random.Random], str],
) -> GeneratedDataset:
    """Generic generator loop.

    Each cluster draws a primary entity; every record either re-uses the
    primary entity (rendered canonically or as a variant) or — with
    ``conflict_rate`` — draws a different entity, which creates the
    conflict pairs the oracle must reject.
    """
    table = ClusterTable([column])
    canonical: Dict[CellRef, str] = {}
    golden: Dict[int, str] = {}
    rid = 0
    for ci, size in enumerate(cluster_sizes(spec, rng)):
        primary = make_entity(rng)
        golden_value = canonical_of(primary)
        alternates: List[object] = []
        records: List[Record] = []
        cell_canon: List[str] = []
        for _ in range(size):
            if size > 1 and rng.random() < spec.conflict_rate:
                if (
                    len(alternates) < spec.max_alternates_per_cluster
                    and (not alternates or rng.random() < 0.5)
                ):
                    alternates.append(make_entity(rng))
                entity = rng.choice(alternates)
            else:
                entity = primary
            canon = canonical_of(entity)
            if rng.random() < spec.variant_rate:
                value = render_variant(entity, rng)
            else:
                value = canon
            source = f"src{rng.randrange(spec.n_sources)}"
            records.append(Record(f"r{rid}", {column: value}, source))
            cell_canon.append(canon)
            rid += 1
        idx = table.add_cluster(f"c{ci}", records)
        golden[idx] = golden_value
        for ri, canon in enumerate(cell_canon):
            canonical[CellRef(idx, ri, column)] = canon
    return GeneratedDataset(name, table, column, canonical, golden)
