"""repro — unsupervised string transformation learning for entity
consolidation.

A full reproduction of Deng et al., "Unsupervised String Transformation
Learning for Entity Consolidation" (ICDE 2019): the FlashFill-style DSL
with affix extensions, transformation graphs, inverted-index pivot-path
search with early termination, one-shot and incremental (top-k)
grouping, structure refinement, human-in-the-loop standardization, and
the truth-discovery / entity-resolution substrates around them.

Quickstart::

    from repro import Replacement, IncrementalGrouper

    phi = [Replacement("Lee, Mary", "M. Lee"),
           Replacement("Smith, James", "J. Smith")]
    for group in IncrementalGrouper(phi).groups():
        print(group.describe())
"""

from .config import Config, DEFAULT_CONFIG
from .core.grouping import Group, GroupingOutcome, unsupervised_grouping
from .core.incremental import IncrementalGrouper
from .core.program import Program
from .core.replacement import Replacement
from .core.structure import structure_key, structure_signature
from .core.terms import DEFAULT_VOCABULARY, TermVocabulary
from .data.table import CellRef, Cluster, ClusterTable, Record
from .candidates.generate import generate_candidates
from .candidates.store import ReplacementStore
from .pipeline.oracle import (
    ApproveAllOracle,
    Decision,
    GroundTruthOracle,
    RejectAllOracle,
)
from .pipeline.standardize import StandardizationLog, Standardizer
from .serve import (
    ApplyEngine,
    ModelRegistry,
    ModelReplayer,
    TransformationModel,
    build_model,
)
from .stream import (
    DriftMonitor,
    IncrementalResolver,
    IncrementalStandardizer,
    ModelPublisher,
    StreamConsolidator,
)

__version__ = "1.2.0"

__all__ = [
    "ApplyEngine",
    "DriftMonitor",
    "IncrementalResolver",
    "IncrementalStandardizer",
    "ModelPublisher",
    "ModelRegistry",
    "ModelReplayer",
    "StreamConsolidator",
    "TransformationModel",
    "build_model",
    "CellRef",
    "Cluster",
    "ClusterTable",
    "Config",
    "DEFAULT_CONFIG",
    "DEFAULT_VOCABULARY",
    "Decision",
    "ApproveAllOracle",
    "GroundTruthOracle",
    "Group",
    "GroupingOutcome",
    "IncrementalGrouper",
    "Program",
    "Record",
    "RejectAllOracle",
    "Replacement",
    "ReplacementStore",
    "StandardizationLog",
    "Standardizer",
    "TermVocabulary",
    "generate_candidates",
    "structure_key",
    "structure_signature",
    "unsupervised_grouping",
    "__version__",
]
