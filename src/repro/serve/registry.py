"""A directory-backed, versioned store of transformation models.

Layout (one directory per model name, one JSON file per version)::

    <root>/
      address/
        v1.json
        v2.json
      journal-title/
        v1.json

Versions are monotonically increasing integers assigned at save time;
``load`` without a version returns the latest.  The registry never
mutates or deletes existing versions — a saved model is an immutable,
human-curated asset.

Publishes are atomic (write-to-temp + rename inside
:meth:`TransformationModel.save`): a crash mid-publish can never leave
a truncated version file, so hot-reloading consumers
(:meth:`repro.serve.engine.ApplyEngine.reload`) may poll ``versions``
and load concurrently with a publisher.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .model import TransformationModel
from .sidecar import try_load_index, write_sidecar

PathLike = Union[str, Path]

_VERSION_FILE = re.compile(r"^v(\d+)\.json$")
_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def slugify(name: str) -> str:
    """Filesystem-safe model name (lowercased, punctuation collapsed)."""
    slug = _SAFE_NAME.sub("-", name.strip().lower()).strip("-")
    return slug or "model"


class ModelRegistry:
    """Save/load :class:`TransformationModel`s under a root directory."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # -- writing -----------------------------------------------------------

    def save(
        self,
        model: TransformationModel,
        name: Optional[str] = None,
        sidecar: bool = True,
    ) -> Path:
        """Persist ``model`` as the next version of ``name``.

        ``name`` defaults to the model's own name; returns the path of
        the written version file.  Unless ``sidecar=False``, the
        compiled apply index is published alongside (``vN.index.json``)
        so consumers reload without recompiling; the model file itself
        is always sufficient — a failed sidecar write never fails the
        publish.
        """
        slug = slugify(name or model.name)
        directory = self.root / slug
        directory.mkdir(parents=True, exist_ok=True)
        version = (self.versions(slug) or [0])[-1] + 1
        path = model.save(directory / f"v{version}.json")
        if sidecar:
            try:
                write_sidecar(model, path)
            except OSError:
                pass  # the model published fine; consumers recompile
        return path

    # -- reading -----------------------------------------------------------

    def names(self) -> List[str]:
        """All model names with at least one saved version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def versions(self, name: str) -> List[int]:
        """Saved versions of ``name``, ascending."""
        directory = self.root / slugify(name)
        if not directory.is_dir():
            return []
        found = []
        for entry in directory.iterdir():
            match = _VERSION_FILE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def path(self, name: str, version: Optional[int] = None) -> Path:
        """Path of one version (default: latest); raises if absent."""
        slug = slugify(name)
        versions = self.versions(slug)
        if not versions:
            raise FileNotFoundError(
                f"no model named {name!r} under {self.root}"
            )
        if version is None:
            version = versions[-1]
        if version not in versions:
            raise FileNotFoundError(
                f"model {name!r} has no version {version} "
                f"(available: {versions})"
            )
        return self.root / slug / f"v{version}.json"

    def _load_artifact(self, path: Path):
        """Parse one artifact file (subclasses load other kinds)."""
        return TransformationModel.load(path)

    def load(
        self, name: str, version: Optional[int] = None
    ) -> TransformationModel:
        """Load one version of ``name`` (default: latest)."""
        return self._load_artifact(self.path(name, version))

    def load_with_index(
        self, name: str, version: Optional[int] = None
    ) -> Tuple[TransformationModel, Optional[object]]:
        """Load one version plus its precompiled sidecar index.

        The index is ``None`` whenever it is missing, torn, or does not
        fingerprint against the loaded artifact — callers compile from
        the artifact in that case, so a sidecar can degrade reload
        latency but never correctness or availability.
        """
        path = self.path(name, version)
        artifact = self._load_artifact(path)
        return artifact, try_load_index(path, artifact)

    def catalog(self) -> Dict[str, List[int]]:
        """``{name: [versions...]}`` for everything in the registry."""
        return {name: self.versions(name) for name in self.names()}

    def __repr__(self) -> str:
        return f"ModelRegistry({str(self.root)!r})"
