"""Value interning: dictionary encoding for the columnar apply path.

Production traffic is heavily skewed — a column of millions of rows
usually carries only a few thousand distinct dirty values (the same
observation that drives the paper's one-decision-settles-many-rows
economics).  An :class:`InternTable` dedupes such a column into its
dictionary form: a list of unique ``values`` plus a ``code_of`` map
assigning each distinct string a small integer *slot code*.  Everything
expensive (exact-table probes, program evaluation, token rewriting)
then runs **once per distinct value**, and per-row work collapses to
two C-level ``map`` passes — encode rows to codes, gather outputs back
through the codes.

The table is deliberately minimal and engine-owned: the
:class:`~repro.serve.engine.ApplyEngine` keeps a parallel
``slot -> output`` memo aligned with the slot codes, and bounds memory
by truncating both from the same high-water mark
(:meth:`InternTable.truncate`), so codes below the cap stay stable
across batches (a repeated value keeps its slot, and its memoized
output, for the lifetime of the engine).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["InternTable"]


class InternTable:
    """An append-only (until truncated) string -> slot-code dictionary.

    Slot codes are dense: ``code_of[values[i]] == i`` for every live
    slot.  ``add`` is idempotent; ``encode`` is a single C-level map
    over an entire column (every value must already be interned).
    """

    __slots__ = ("values", "code_of")

    def __init__(self, values: Iterable[str] = ()) -> None:
        self.values: List[str] = []
        self.code_of: Dict[str, int] = {}
        for value in values:
            self.add(value)

    def add(self, value: str) -> int:
        """Intern ``value``; returns its (new or existing) slot code."""
        code = self.code_of.get(value)
        if code is None:
            code = len(self.values)
            self.code_of[value] = code
            self.values.append(value)
        return code

    def encode(self, values: Sequence[str]) -> List[int]:
        """The column as slot codes (all values must be interned)."""
        return list(map(self.code_of.__getitem__, values))

    def truncate(self, size: int) -> int:
        """Drop every slot at or above ``size`` (newest-interned go
        first — older slots are the ones whole batches keep hitting).
        Returns the number of slots removed."""
        size = max(0, int(size))
        removed = len(self.values) - size
        if removed <= 0:
            return 0
        for value in self.values[size:]:
            del self.code_of[value]
        del self.values[size:]
        return removed

    def __contains__(self, value: str) -> bool:
        return value in self.code_of

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"InternTable({len(self.values)} values)"
