"""The concurrent network serving tier (``repro serve --listen``).

A stdlib-only :mod:`asyncio` JSON-over-TCP service: one JSON request
per line, one JSON response per line (the same newline-delimited
protocol as the stdin worker, now concurrent).  Three moving parts:

* :class:`ModelSource` — loads the latest published model (or
  multi-column bundle) from a registry, compiles it, and **atomically
  swaps** engine instances behind a
  :class:`~repro.serve.service.TTLEngineCache`.  Every request
  captures one ``(version, engine)`` snapshot at dispatch, so a batch
  reply is always computed against a single model version even while a
  swap lands mid-flight — in-flight requests simply keep the instance
  they started with.  Torn or half-published artifacts are skipped
  (the loader walks versions downward to the newest *loadable* one),
  so a crashed publisher can never take the serving tier down;
* :class:`GoldenTable` — an in-memory golden-record table maintained
  by tailing the stream's golden delta log
  (:mod:`repro.stream.deltas`): per-batch changed-clusters-only rows,
  never a whole-table re-read.  Lookups answer from it; subscribed
  connections get each delta pushed as a ``{"push": "golden", ...}``
  line;
* :class:`ServeServer` — the asyncio server: per-connection read loop
  with idle-timeout and request-size guards, an op dispatcher, a
  ``--follow`` poller that hot-swaps new registry versions without
  dropping requests, and ``serve.*`` metrics/spans through
  :mod:`repro.obs` (request counts per op, reply outcomes, p50/p99
  request latency, reload and push counters).

Delivery contract: every *accepted* request (one complete
newline-terminated line) gets exactly one reply, or the connection is
closed cleanly — never a silent drop, never two replies.  Oversized
requests get one error reply and a close (the line boundary is lost);
idle connections past the timeout are closed; a request that trips an
internal error is answered ``{"ok": false, ...}`` and serving
continues.
"""

from __future__ import annotations

import asyncio
import json
import re
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..obs import NULL_OBS, MemorySink, Obs, prometheus_text
from .bundle import BundleApplyEngine, BundleRegistry, ModelBundle
from .engine import ApplyEngine
from .model import TransformationModel
from .registry import ModelRegistry
from .service import TTLEngineCache, handle_request

PathLike = Union[str, Path]

#: Default cap on one request line; beyond it the request is answered
#: with an error and the connection closed (the framing is lost).
MAX_REQUEST_BYTES = 1 << 20

#: Artifact-load failures the source treats as "skip this version":
#: torn JSON, foreign kinds, missing files mid-swap, bad programs.
_LOAD_ERRORS = (OSError, ValueError, KeyError, re.error)


class ModelSource:
    """Loads, compiles, and atomically swaps the served engine.

    Two modes:

    * **registry** (``registry`` + ``name``) — the request path reads
      through a :class:`~repro.serve.service.TTLEngineCache`, so even
      without ``--follow`` a new publish is picked up within one TTL;
      :meth:`refresh` (the follow poller) loads newer versions eagerly
      and installs them via :meth:`TTLEngineCache.store`;
    * **static** (``model``) — one preloaded artifact, never swapped
      (``repro serve --model FILE --listen ...``).

    Swaps always install a *fresh* engine instance — never an in-place
    :meth:`~repro.serve.engine.ApplyEngine.reload` — so an in-flight
    request holding the old instance computes its whole reply against
    one consistent version.  Fresh does not mean recompiled: versions
    published with a valid sidecar (``vN.index.json``) install their
    precompiled index in O(index size), which is what keeps
    ``--follow`` swap latency flat as models grow.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        name: Optional[str] = None,
        model: Optional[Union[TransformationModel, ModelBundle]] = None,
        use_programs: bool = True,
        cache_size: int = 65536,
        ttl: float = 5.0,
        clock=time.monotonic,
        obs=NULL_OBS,
        model_version: int = 1,
    ) -> None:
        if model is None and (registry is None or name is None):
            raise ValueError(
                "ModelSource needs a registry+name or a preloaded model"
            )
        self.registry = registry
        self.name = name
        self.use_programs = use_programs
        self.cache_size = cache_size
        self.obs = obs if obs is not None else NULL_OBS
        self.load_errors = 0
        self.last_load_error: Optional[str] = None
        #: swaps that installed a precompiled sidecar index vs. swaps
        #: that had to compile from the model artifact
        self.sidecar_loads = 0
        self.sidecar_misses = 0
        self.bundle = isinstance(model, ModelBundle) or isinstance(
            registry, BundleRegistry
        )
        self._static: Optional[Tuple[int, object]] = None
        self._cache: Optional[TTLEngineCache] = None
        if model is not None:
            self._static = (model_version, self._compile(model))
        else:
            self._cache = TTLEngineCache(
                self._load_latest, ttl=ttl, clock=clock
            )

    def _compile(self, artifact, precompiled=None):
        if isinstance(artifact, ModelBundle):
            return BundleApplyEngine(
                artifact,
                use_programs=self.use_programs,
                cache_size=self.cache_size,
                obs=self.obs,
                precompiled=precompiled,
            )
        return ApplyEngine(
            artifact,
            use_programs=self.use_programs,
            cache_size=self.cache_size,
            obs=self.obs,
            precompiled=precompiled,
        )

    def _load_latest(
        self,
        name: str,
        cached_version: Optional[int],
        cached_engine: Optional[object],
    ) -> Tuple[int, object]:
        """The newest *loadable* version, walking past torn publishes.

        Reuses the cached compiled engine when the registry still
        points at the cached version, and falls back to it when every
        newer artifact is unreadable — a crashed publisher degrades
        freshness, never availability.  Versions published with a
        valid sidecar install their precompiled index instead of
        recompiling (``sidecar_loads``/``sidecar_misses`` count which
        path each swap took).
        """
        versions = self.registry.versions(name)
        for version in reversed(versions):
            if version == cached_version:
                return cached_version, cached_engine
            try:
                artifact, index = self.registry.load_with_index(
                    name, version
                )
            except _LOAD_ERRORS as exc:
                self.load_errors += 1
                self.last_load_error = f"v{version}: {exc}"
                continue
            if index is not None:
                self.sidecar_loads += 1
            else:
                self.sidecar_misses += 1
            return version, self._compile(artifact, index)
        if cached_engine is not None:
            return cached_version, cached_engine
        raise FileNotFoundError(
            f"no loadable version of {name!r} under {self.registry.root}"
        )

    def current(self) -> Tuple[int, object]:
        """The ``(version, engine)`` snapshot requests dispatch against."""
        if self._static is not None:
            return self._static
        return self._cache.get(self.name)

    def refresh(self) -> Optional[int]:
        """Poll for a newer completed version and swap it in (the
        follow poller's path; also safe to call ad hoc).  Returns the
        new version when a swap happened, else ``None``."""
        if self._static is not None:
            return None
        cached = self._cache.peek(self.name)
        cached_version = cached[0] if cached is not None else None
        cached_engine = cached[1] if cached is not None else None
        version, engine = self._load_latest(
            self.name, cached_version, cached_engine
        )
        if self._cache.store(self.name, version, engine):
            return version
        return None


class GoldenTable:
    """``cluster key -> column -> golden value``, tailed from a delta
    log (missing file = empty table that fills in as the stream runs)."""

    def __init__(self, path: PathLike) -> None:
        # Imported here-ish (module level in stream) — serve depends on
        # stream only for the delta reader, not the consolidator.
        from ..stream.deltas import GoldenDeltaReader

        self.path = Path(path)
        self._reader = GoldenDeltaReader(self.path)
        self.records: Dict[str, Dict[str, Optional[str]]] = {}
        self.was_reset = False

    @property
    def seq(self) -> int:
        """Sequence number of the last applied delta row."""
        return self._reader.seq

    def refresh(self) -> List[Dict]:
        """Apply any new delta rows; returns them (for push fan-out).

        Removals apply before changes (the writer's contract), and a
        log that was archived and restarted resets the table first.
        """
        rows = self._reader.poll()
        if self._reader.reset:
            self.records.clear()
            self.was_reset = True
        for row in rows:
            for key in row.get("removed", ()):
                self.records.pop(key, None)
            changed = row.get("changed", {})
            if isinstance(changed, dict):
                for key, values in changed.items():
                    if isinstance(values, dict):
                        self.records[key] = dict(values)
        return rows

    def lookup(self, key: str) -> Optional[Dict[str, Optional[str]]]:
        record = self.records.get(key)
        return dict(record) if record is not None else None


class ServeServer:
    """The asyncio JSON-over-TCP serving tier.  See the module
    docstring for the protocol and delivery contract."""

    def __init__(
        self,
        source: ModelSource,
        golden: Optional[GoldenTable] = None,
        obs: Optional[Obs] = None,
        follow: bool = False,
        poll_interval: float = 0.25,
        idle_timeout: Optional[float] = None,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        snapshot_interval: Optional[float] = None,
    ) -> None:
        self.source = source
        self.golden = golden
        # Latency tracking and the stats op need real instruments even
        # when nobody asked for a metrics file.
        self.obs = obs if obs is not None and obs.enabled else Obs(
            sink=MemorySink()
        )
        self.follow = follow
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.max_request_bytes = max_request_bytes
        self.snapshot_interval = snapshot_interval

        metrics = self.obs.metrics
        self._m_requests = metrics.counter("serve.requests")
        self._m_replies_ok = metrics.counter("serve.replies", ok="true")
        self._m_replies_err = metrics.counter("serve.replies", ok="false")
        self._m_latency = metrics.histogram(
            "serve.request_seconds", deterministic=False
        )
        self._m_conns = metrics.gauge(
            "serve.connections", deterministic=False
        )
        self._m_conns_opened = metrics.counter("serve.connections_opened")
        self._m_conns_closed = metrics.counter("serve.connections_closed")
        self._m_oversized = metrics.counter("serve.oversized")
        self._m_internal = metrics.counter("serve.internal_errors")
        self._m_reloads = metrics.counter(
            "serve.reloads", deterministic=False
        )
        self._m_reload_errors = metrics.counter(
            "serve.reload_errors", deterministic=False
        )
        self._m_pushes = metrics.counter(
            "serve.pushes", deterministic=False
        )
        self._m_golden_seq = metrics.gauge(
            "serve.golden_seq", deterministic=False
        )

        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._subscribers: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._bg_tasks: List[asyncio.Task] = []
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind, warm the engine, and launch the background loops."""
        self._stopped = asyncio.Event()
        # Fail fast (and warm the compile) before accepting traffic.
        self.source.current()
        if self.golden is not None:
            self.golden.refresh()
            self._m_golden_seq.set(self.golden.seq)
        self._server = await asyncio.start_server(
            self._on_connection, host, port, limit=self.max_request_bytes
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        if self.follow:
            self._bg_tasks.append(
                asyncio.create_task(self._follow_loop())
            )
        if self.golden is not None:
            self._bg_tasks.append(
                asyncio.create_task(self._golden_loop())
            )
        if self.snapshot_interval:
            self._bg_tasks.append(
                asyncio.create_task(self._snapshot_loop())
            )
        self.obs.event(
            "serve.listening", host=self.address[0], port=self.address[1]
        )

    def request_stop(self) -> None:
        """Ask the server to stop (idempotent; safe from handlers)."""
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop accepting, let in-flight requests finish, close all."""
        self.request_stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._bg_tasks:
            task.cancel()
        for task in self._bg_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._bg_tasks.clear()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=2.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self.obs.flush_snapshot()

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """start() + block until a shutdown op / request_stop()."""
        await self.start(host, port)
        try:
            await self.wait_stopped()
        finally:
            await self.stop()

    # -- background loops --------------------------------------------------

    async def _follow_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval)
            before_errors = self.source.load_errors
            try:
                # Load + compile off-loop; the swap itself is one
                # attribute rebind inside the cache.
                swapped = await loop.run_in_executor(
                    None, self.source.refresh
                )
            except Exception as exc:
                self._m_reload_errors.inc()
                self.obs.event("serve.reload_error", error=str(exc))
                continue
            if self.source.load_errors > before_errors:
                self._m_reload_errors.inc(
                    self.source.load_errors - before_errors
                )
            if swapped is not None:
                self._m_reloads.inc()
                self.obs.event("serve.reload", version=swapped)

    async def _golden_loop(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval)
            try:
                rows = self.golden.refresh()
            except Exception as exc:
                self.obs.event("serve.golden_error", error=str(exc))
                continue
            self._m_golden_seq.set(self.golden.seq)
            if not rows or not self._subscribers:
                continue
            for row in rows:
                push = {
                    "push": "golden",
                    "seq": row.get("seq"),
                    "bundle_version": row.get("bundle_version"),
                    "changed": row.get("changed", {}),
                    "removed": row.get("removed", []),
                }
                line = (
                    json.dumps(push, ensure_ascii=False, sort_keys=True)
                    + "\n"
                ).encode("utf-8")
                for writer in list(self._subscribers):
                    try:
                        writer.write(line)
                        await writer.drain()
                        self._m_pushes.inc()
                    except (ConnectionError, RuntimeError):
                        self._subscribers.discard(writer)

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            self.obs.flush_snapshot()

    # -- connections -------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._m_conns_opened.inc()
        self._m_conns.inc()
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished; nothing left to answer
        finally:
            self._subscribers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._m_conns.inc(-1)
            self._m_conns_closed.inc()
            self._conn_tasks.discard(task)

    async def _read_line(self, reader) -> Optional[bytes]:
        """One request line; None = close the connection (EOF, idle
        timeout, or an unframeable oversized request)."""
        try:
            if self.idle_timeout:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.idle_timeout
                )
            else:
                line = await reader.readline()
        except asyncio.TimeoutError:
            self.obs.metrics.counter(
                "serve.idle_closes", deterministic=False
            ).inc()
            return None
        except (asyncio.LimitOverrunError, ValueError):
            self._m_oversized.inc()
            return b"__OVERSIZED__"
        if not line:
            return None  # EOF
        if not line.endswith(b"\n"):
            # A partial line at EOF: never a complete (accepted)
            # request, so a clean close honors the contract.
            return None
        return line

    async def _connection_loop(self, reader, writer) -> None:
        while True:
            line = await self._read_line(reader)
            if line is None:
                return
            if line == b"__OVERSIZED__":
                # One reply, then close: the line boundary is gone, so
                # resynchronizing on this connection is impossible.
                await self._send(
                    writer,
                    {"ok": False, "error": "request too large"},
                )
                return
            if not line.strip():
                continue
            started = time.perf_counter()
            response, op = self._answer(line)
            await self._send(writer, response)
            self._m_latency.observe(time.perf_counter() - started)
            if response.get("ok"):
                self._m_replies_ok.inc()
            else:
                self._m_replies_err.inc()
            if op == "subscribe" and response.get("ok"):
                self._subscribers.add(writer)
            if op == "shutdown" and response.get("ok"):
                self.request_stop()
                return

    async def _send(self, writer, response: Dict) -> None:
        writer.write(
            (
                json.dumps(response, ensure_ascii=False, sort_keys=True)
                + "\n"
            ).encode("utf-8")
        )
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    def _answer(self, line: bytes) -> Tuple[Dict, str]:
        """Parse + dispatch one request line; never raises."""
        try:
            request = json.loads(line.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._m_requests.inc()
            self.obs.metrics.counter("serve.requests_bad").inc()
            return {"ok": False, "error": f"bad request: {exc}"}, ""
        op = str(request.get("op", "apply"))
        self._m_requests.inc()
        self.obs.metrics.counter("serve.ops", op=op).inc()
        with self.obs.span("serve.request", op=op):
            try:
                response = self.handle_network_request(request, op)
            except Exception as exc:  # a handler bug must not kill serving
                self._m_internal.inc()
                response = {"ok": False, "error": f"internal error: {exc}"}
        if "id" in request:
            response["id"] = request["id"]
        return response, op

    def handle_network_request(self, request: Dict, op: str) -> Dict:
        version, engine = self.source.current()
        if op == "ping":
            return {"ok": True, "pong": True, "version": version}
        if op == "version":
            response = {
                "ok": True,
                "version": version,
                "mode": "bundle" if self.source.bundle else "model",
            }
            if self.source.bundle:
                response["columns"] = engine.columns
                response["name"] = engine.bundle.name
            else:
                response["column"] = engine.model.column
                response["name"] = engine.model.name
            return response
        if op == "stats":
            return self._stats_response(version, engine)
        if op == "metrics":
            return {
                "ok": True,
                "prometheus": prometheus_text(self.obs.metrics),
            }
        if op == "lookup":
            return self._lookup_response(request)
        if op == "subscribe":
            if self.golden is None:
                return {
                    "ok": False,
                    "error": "no golden delta log configured",
                }
            return {"ok": True, "subscribed": True, "seq": self.golden.seq}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        if op == "apply":
            return self._apply_response(request, version, engine)
        return {"ok": False, "error": f"unknown op: {op!r}"}

    def _apply_response(
        self, request: Dict, version: int, engine
    ) -> Dict:
        if not self.source.bundle:
            response = handle_request(engine, request)
            response["version"] = version
            return response
        # Bundle mode: per-column apply or whole-record apply, always
        # against the one snapshot captured above.
        if "record" in request:
            record = request["record"]
            if not isinstance(record, dict) or any(
                not isinstance(k, str) or not isinstance(v, str)
                for k, v in record.items()
            ):
                return {
                    "ok": False,
                    "error": "record must map column names to strings",
                }
            return {
                "ok": True,
                "record": engine.apply_record(record),
                "version": version,
            }
        column = request.get("column")
        if not isinstance(column, str):
            return {
                "ok": False,
                "error": "bundle mode needs 'column' or 'record'",
            }
        if engine.engine(column) is None:
            return {
                "ok": False,
                "error": f"unknown column: {column!r} "
                f"(bundle has {engine.columns})",
            }
        if "values" in request:
            values = request["values"]
            if not isinstance(values, list) or any(
                not isinstance(v, str) for v in values
            ):
                return {"ok": False, "error": "values must be a string list"}
            outputs = engine.apply_column(column, values)
            changed = sum(1 for v, o in zip(values, outputs) if v != o)
            return {
                "ok": True,
                "values": outputs,
                "changed": changed,
                "version": version,
            }
        if "value" in request:
            value = request["value"]
            if not isinstance(value, str):
                return {"ok": False, "error": "value must be a string"}
            return {
                "ok": True,
                "value": engine.apply_column(column, [value])[0],
                "version": version,
            }
        return {"ok": False, "error": "apply needs 'value' or 'values'"}

    def _lookup_response(self, request: Dict) -> Dict:
        if self.golden is None:
            return {"ok": False, "error": "no golden delta log configured"}
        key = request.get("key")
        if not isinstance(key, str):
            return {"ok": False, "error": "lookup needs a string 'key'"}
        record = self.golden.lookup(key)
        return {
            "ok": True,
            "key": key,
            "found": record is not None,
            "record": record,
            "seq": self.golden.seq,
        }

    def _stats_response(self, version: int, engine) -> Dict:
        latency = self._m_latency
        serve = {
            "requests": self._m_requests.value,
            "replies_ok": self._m_replies_ok.value,
            "replies_error": self._m_replies_err.value,
            "connections": self._m_conns.value,
            "connections_opened": self._m_conns_opened.value,
            "oversized": self._m_oversized.value,
            "internal_errors": self._m_internal.value,
            "reloads": self._m_reloads.value,
            "reload_errors": self._m_reload_errors.value,
            "load_errors": self.source.load_errors,
            "sidecar_loads": self.source.sidecar_loads,
            "sidecar_misses": self.source.sidecar_misses,
            "pushes": self._m_pushes.value,
            "subscribers": len(self._subscribers),
            "latency": {
                "count": latency.count,
                "p50": latency.p50,
                "p99": latency.p99,
            },
        }
        if self.golden is not None:
            serve["golden_seq"] = self.golden.seq
            serve["golden_records"] = len(self.golden.records)
        if self.source.bundle:
            engine_stats: Dict[str, object] = engine.stats()
        else:
            engine_stats = engine.stats().as_dict()
        return {
            "ok": True,
            "version": version,
            "serve": serve,
            "engine": engine_stats,
        }


def parse_listen(listen: str) -> Tuple[str, int]:
    """``host:port`` -> tuple; port 0 asks the OS for an ephemeral one."""
    host, sep, port = listen.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--listen wants HOST:PORT (e.g. 127.0.0.1:7007), got {listen!r}"
        )
    return host, int(port)


def run_server(
    server: ServeServer,
    host: str,
    port: int,
    banner=None,
) -> int:
    """Run the server until a shutdown op or Ctrl-C (the CLI's path).

    ``banner(host, port)`` is called once the socket is bound — the CLI
    prints the actual address to stderr there, which is what lets
    ``--listen host:0`` callers (tests, supervisors) discover the port.
    """

    async def main() -> None:
        await server.start(host, port)
        if banner is not None:
            banner(*server.address)
        try:
            await server.wait_stopped()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("interrupted; server closed", file=sys.stderr)
    return 0
