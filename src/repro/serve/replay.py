"""Exact re-application of a learned model to a clustered table.

The learner applies approved replacements through the Section 7.1
provenance machinery: a whole-value rule only rewrites cells that were
actually paired with the rule's right-hand side inside their own
cluster, and token rules only rewrite the cells their alignment came
from ("not all 'St's are 'Street'" — footnote 1 of the paper).

:class:`ModelReplayer` reproduces exactly that: it regenerates the
candidate store on the target table (cheap — no graphs, no pivot
searches, no human) and re-applies the model's confirmed replacement
sequence in confirmation order.  On a table identical to the one the
model was learned from, the resulting cell values are **equal to the
learner's output, cell for cell** — the store evolves through the same
deterministic states.  On a different table with the same clustering
conventions, the replay applies the confirmed knowledge under the same
safety rules the human approved it under.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..candidates.generate import generate_candidates
from ..data.table import CellRef, ClusterTable
from .model import TransformationModel


@dataclass
class ReplayReport:
    """What one replay run did."""

    groups_applied: int = 0
    replacements_applied: int = 0
    cells_changed: int = 0
    changed_cells: List[CellRef] = field(default_factory=list)


class ModelReplayer:
    """Provenance-aware application of a model to clustered tables."""

    def __init__(self, model: TransformationModel) -> None:
        self.model = model

    def apply(
        self, table: ClusterTable, column: Optional[str] = None
    ) -> ReplayReport:
        """Re-apply the confirmed sequence to ``table`` in place."""
        column = column or self.model.column
        store = generate_candidates(table, column, self.model.config)
        report = ReplayReport()
        for group in self.model.groups:
            report.groups_applied += 1
            for member in group.members:
                report.replacements_applied += 1
                changed = store.apply_replacement(member.replacement)
                report.cells_changed += len(changed)
                report.changed_cells.extend(changed)
            # Matches the learning loop: invalidated candidates are
            # collected after each group (the feed is absent here, but
            # draining keeps the store's key set in the same state).
            store.drain_dead()
        return report
