"""The compiled batch-apply engine: O(N) standardization of new data.

Learning pays graphs, pivot searches, and human review; applying must
not.  :class:`ApplyEngine` compiles a persisted
:class:`~repro.serve.model.TransformationModel` into three lookup
structures, so standardizing a table of N rows costs N hash probes plus
the occasional program evaluation:

1. **exact-match hash table** — every confirmed whole-value replacement,
   chain-composed in confirmation order (``A -> B`` then ``B -> C``
   compiles to ``A -> C``), first confirmation wins on conflicts;
2. **per-structure-signature program index** — forward-confirmed
   transformation programs keyed by the structure signature
   (Section 7.2) of their input side.  A *new* value that no exact rule
   covers is matched by signature and rewritten by the first confirmed
   program that evaluates deterministically on it — the learned
   programs generalize beyond the values they were mined from
   (``"9th" -> "9"`` learned, ``"42nd" -> "42"`` applied).  Programs
   whose output ignores the input (all-``ConstantStr``) are excluded:
   they would stamp one group's target onto every same-shaped value;
3. **token-level rules** — confirmed token-segment replacements
   (Appendix A provenance), applied once each, in confirmation order,
   token-boundary aware (``"St"`` never fires inside ``"Stone"``).

Application is **columnar**: a batch is dictionary-encoded through a
shared :class:`~repro.serve.intern.InternTable` (unique values +
row -> slot codes), the lookup tiers above run once per *distinct*
value, outputs land in a slot-aligned memo that persists across
batches, and results broadcast back through the code vector as two
C-level ``map`` passes — per-row cost on skewed production traffic is
two hash probes, not a transformation.  The single-value path keeps an
LRU cell cache; large batches can shard uncomputed distinct values
across worker processes.

Engines can also skip compilation entirely: construct (or
:meth:`ApplyEngine.reload`) with a ``precompiled``
:class:`~repro.serve.sidecar.CompiledIndex` and the lookup structures
install in O(index size) — fingerprint-checked against the model, with
silent fallback to a normal compile on any mismatch.

Exactness note: value-level application generalizes beyond the cluster
provenance the learner respected — by design.  When bit-exact
reproduction of a learning run is required, use
:class:`repro.serve.replay.ModelReplayer` instead.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..candidates.store import _replace_token_segment
from ..core.functions import ConstantStr
from ..core.program import Program
from ..core.structure import Signature, structure_signature
from ..data.table import CellRef, ClusterTable
from ..obs import NULL_OBS
from ..pipeline.oracle import FORWARD
from .intern import InternTable
from .model import TransformationModel

#: Unique-value count below which sharding never pays for itself.
MIN_SHARD_VALUES = 4096

#: Default intern-table capacity (distinct values memoized across
#: batches); 4x the LRU default — slots are two pointers each.
DEFAULT_INTERN_SIZE = 262144


class LRUCache:
    """A small least-recently-used string cache (move-to-end on hit)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, int(capacity))
        self._entries: "OrderedDict[str, str]" = OrderedDict()

    def get(self, key: str) -> Optional[str]:
        """Cached value for ``key`` (refreshing its recency), or None."""
        found = self._entries.get(key)
        if found is not None:
            self._entries.move_to_end(key)
        return found

    def put(self, key: str, value: str) -> None:
        """Insert ``key -> value``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class ApplyStats:
    """Counters over everything an engine instance has applied."""

    rows: int = 0
    unique_values: int = 0
    exact_hits: int = 0
    program_hits: int = 0
    token_hits: int = 0
    misses: int = 0
    cache_hits: int = 0
    sharded_values: int = 0
    #: distinct values ever interned (monotone even across truncation)
    distinct_values: int = 0
    #: rows settled by broadcasting a distinct value's output
    broadcast_rows: int = 0
    #: rows whose value was already in the intern table on arrival
    intern_hits: int = 0
    #: compilations skipped via a matching precompiled sidecar index
    sidecar_loads: int = 0
    #: sidecars offered but rejected (fingerprint/column mismatch)
    sidecar_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a JSON-safe dict (``repro apply --stats``)."""
        return {
            "rows": self.rows,
            "unique_values": self.unique_values,
            "exact_hits": self.exact_hits,
            "program_hits": self.program_hits,
            "token_hits": self.token_hits,
            "misses": self.misses,
            "cache_hits": self.cache_hits,
            "sharded_values": self.sharded_values,
            "distinct_values": self.distinct_values,
            "broadcast_rows": self.broadcast_rows,
            "intern_hits": self.intern_hits,
            "sidecar_loads": self.sidecar_loads,
            "sidecar_misses": self.sidecar_misses,
        }


def _is_input_sensitive(program: Program) -> bool:
    """False for all-constant programs: their output ignores the input,
    so letting them generalize by structure would be destructive."""
    return any(not isinstance(f, ConstantStr) for f in program.functions)


class ApplyEngine:
    """A transformation model compiled for high-throughput application."""

    def __init__(
        self,
        model: TransformationModel,
        use_programs: bool = True,
        cache_size: int = 65536,
        obs=NULL_OBS,
        obs_labels: Optional[Dict[str, str]] = None,
        intern_size: int = DEFAULT_INTERN_SIZE,
        precompiled=None,
    ) -> None:
        self.model = model
        self.use_programs = use_programs
        self.vocabulary = model.vocabulary
        self._stats = ApplyStats()
        self._cache = LRUCache(cache_size)
        self._max_program_len = model.config.max_string_length
        # Columnar state: the intern table maps distinct strings to
        # dense slot codes; _slot_outputs is the slot-aligned output
        # memo (None = not yet computed under the current model).
        self.intern_size = max(0, int(intern_size))
        self._intern = InternTable()
        self._slot_outputs: List[Optional[str]] = []
        # Observability rides on the plain-int ApplyStats: the per-value
        # hot path never touches a registry instrument; sync_obs mirrors
        # the accumulated deltas at batch boundaries only.
        self.obs = obs if obs is not None else NULL_OBS
        self._obs_labels = dict(obs_labels or {})
        self._obs_synced: Dict[str, int] = {}

        self.exact: Dict[str, str] = {}
        self.token_rules: List[Tuple[str, str]] = []
        self.programs: Dict[Signature, List[Program]] = {}
        self._seen_token: set = set()
        self._seen_programs: Dict[Signature, set] = {}
        if precompiled is not None and precompiled.matches(model):
            self._install_precompiled(precompiled)
            self._stats.sidecar_loads += 1
        else:
            if precompiled is not None:
                self._stats.sidecar_misses += 1
            self._compile_groups(model.groups)

    # -- observability -----------------------------------------------------

    def stats(self) -> ApplyStats:
        """Counters over everything this engine has applied: cache
        hits, and exact / program / token-rule path counts vs misses."""
        return self._stats

    def sync_obs(self, seconds: Optional[float] = None) -> None:
        """Mirror the ApplyStats deltas since the last sync into the
        attached registry as ``apply.*`` counters (tier mapping: exact,
        program, token, passthrough=misses, LRU=cache_hits), plus an
        ``apply.batch_seconds`` latency observation when ``seconds`` is
        given.  A no-op without an enabled obs context."""
        if not self.obs.enabled:
            return
        metrics = self.obs.metrics
        current = self._stats.as_dict()
        for name, value in current.items():
            delta = value - self._obs_synced.get(name, 0)
            if delta:
                metrics.counter(
                    f"apply.{name}", **self._obs_labels
                ).inc(delta)
        self._obs_synced = current
        if seconds is not None:
            metrics.histogram(
                "apply.batch_seconds",
                deterministic=False,
                **self._obs_labels,
            ).observe(seconds)

    # -- compilation -------------------------------------------------------

    def _compile_groups(self, groups) -> None:
        """Fold confirmed groups into the compiled lookup structures.

        Called with the full group list at construction and with just
        the *new* suffix on an incremental :meth:`reload` — the dedup
        state (`_seen_token` / `_seen_programs`) persists across calls
        so both paths compile identically.
        """
        seen_token = self._seen_token
        seen_programs = self._seen_programs
        for group in groups:
            for member in group.members:
                if member.whole:
                    self._add_exact(member.lhs, member.rhs)
                if member.token and (member.lhs, member.rhs) not in seen_token:
                    seen_token.add((member.lhs, member.rhs))
                    self.token_rules.append((member.lhs, member.rhs))
            if group.direction != FORWARD:
                # The program maps learned-lhs -> learned-rhs; a reverse
                # confirmation applied the opposite direction, which the
                # program cannot express.  Exact/token rules still cover
                # the confirmed members.
                continue
            if not _is_input_sensitive(group.program):
                continue
            signature = (
                group.structure[0]
                if group.structure is not None
                else (
                    structure_signature(group.members[0].lhs)
                    if group.members
                    else None
                )
            )
            if signature is None:
                continue
            bucket = self.programs.setdefault(signature, [])
            keys = seen_programs.setdefault(signature, set())
            key = group.program.canonical()
            if key not in keys:
                keys.add(key)
                bucket.append(group.program)

    def _add_exact(self, lhs: str, rhs: str) -> None:
        """Chain-compose one whole-value rule into the exact table."""
        for key, value in self.exact.items():
            if value == lhs:
                self.exact[key] = rhs
        self.exact.setdefault(lhs, rhs)

    def _install_precompiled(self, index) -> None:
        """Install a fingerprint-matched sidecar index in O(its size).

        Also reconstructs the compile-time dedup state, so a later
        *incremental* :meth:`reload` continues from a sidecar-installed
        engine exactly as it would from a cold-compiled one.
        """
        self.exact.update(index.exact)
        self.token_rules.extend(index.token_rules)
        self._seen_token.update(index.token_rules)
        for signature, programs in index.programs:
            bucket = self.programs.setdefault(signature, [])
            keys = self._seen_programs.setdefault(signature, set())
            for program in programs:
                key = program.canonical()
                if key not in keys:
                    keys.add(key)
                    bucket.append(program)

    # -- hot reload --------------------------------------------------------

    def reload(self, model: TransformationModel, precompiled=None) -> bool:
        """Swap in a newly published model without rebuilding the engine.

        Published models are append-only (a new version extends the
        confirmed-group sequence); when ``model`` extends the current
        one under the same column / config / vocabulary, only the *new*
        groups are compiled into the existing lookup structures — the
        compiled tables, accumulated stats, and engine identity survive,
        so a live stream can pick up fresh confirmations mid-flight with
        no process restart and no recompilation of unrelated state.

        A model that does not extend the current one triggers a full
        recompile (still in place) — unless ``precompiled`` carries a
        fingerprint-matching :class:`~repro.serve.sidecar.CompiledIndex`,
        in which case the lookup structures install in O(index size)
        with no recompilation at all (the ``--follow`` hot-swap path).
        The memoization state is reset either way: cached outputs may
        be stale under the new rules (interned values keep their slots;
        only the slot-aligned outputs are dropped).
        Returns True when the fast incremental path was taken.
        """
        n = len(self.model.groups)
        incremental = (
            model.column == self.model.column
            and len(model.groups) >= n
            and model.groups[:n] == self.model.groups
            and model.config == self.model.config
            and model.vocabulary.to_dict() == self.model.vocabulary.to_dict()
        )
        if not incremental:
            self.exact.clear()
            self.token_rules.clear()
            self.programs.clear()
            self._seen_token.clear()
            self._seen_programs.clear()
        self.model = model
        self.vocabulary = model.vocabulary
        self._max_program_len = model.config.max_string_length
        if incremental:
            self._compile_groups(model.groups[n:])
        elif precompiled is not None and precompiled.matches(model):
            self._install_precompiled(precompiled)
            self._stats.sidecar_loads += 1
        else:
            if precompiled is not None:
                self._stats.sidecar_misses += 1
            self._compile_groups(model.groups)
        self._cache = LRUCache(self._cache.capacity)
        self._slot_outputs = [None] * len(self._intern)
        return incremental

    # -- single-value path -------------------------------------------------

    def transform(self, value: str) -> str:
        """Standardize one value (memoized)."""
        cached = self._cache.get(value)
        if cached is not None:
            self._stats.cache_hits += 1
            return cached
        out = self._compute(value)
        self._cache.put(value, out)
        return out

    def _compute(self, value: str) -> str:
        hit = self.exact.get(value)
        if hit is not None:
            self._stats.exact_hits += 1
            return hit
        if self.use_programs and len(value) <= self._max_program_len:
            for program in self.programs.get(structure_signature(value), ()):
                out = program.evaluate_unique(value, self.vocabulary)
                if out is not None and out != value:
                    self._stats.program_hits += 1
                    return out
        out = value
        for lhs, rhs in self.token_rules:
            updated = _replace_token_segment(out, lhs, rhs)
            if updated is not None and updated != out:
                out = updated
        if out != value:
            self._stats.token_hits += 1
        else:
            self._stats.misses += 1
        return out

    # -- batch path --------------------------------------------------------

    def apply_values(
        self,
        values: Sequence[str],
        workers: Optional[int] = None,
        min_shard: int = MIN_SHARD_VALUES,
    ) -> List[str]:
        """Standardize a column of values (the columnar hot path).

        The column is dictionary-encoded: distinct values are interned
        to dense slot codes, transformation runs once per *uncomputed*
        distinct value into a slot-aligned memo that persists across
        batches, and the result broadcasts back through the code vector
        as two C-level ``map`` passes.  With ``workers > 1`` and enough
        uncomputed distinct values, computation shards across a process
        pool; per-rule hit counters are then tracked inside the workers
        and not merged back.
        """
        started = time.perf_counter() if self.obs.enabled else 0.0
        stats = self._stats
        intern = self._intern
        code_of = intern.code_of
        outputs = self._slot_outputs
        n_rows = len(values)
        # Distinct detection is one C-level pass, first-occurrence
        # ordered so slot assignment and shard chunking stay
        # deterministic for a given batch sequence.
        distinct = dict.fromkeys(values)
        stats.rows += n_rows
        stats.unique_values += len(distinct)
        stats.broadcast_rows += n_rows - len(distinct)
        add = intern.add
        append_slot = outputs.append
        pending: List[str] = []
        new_slots = 0
        for value in distinct:
            code = code_of.get(value)
            if code is None:
                add(value)
                append_slot(None)
                new_slots += 1
                pending.append(value)
            elif outputs[code] is None:
                pending.append(value)
        stats.distinct_values += new_slots
        stats.intern_hits += n_rows - new_slots
        stats.cache_hits += len(distinct) - len(pending)
        if workers and workers > 1 and len(pending) >= max(min_shard, 2):
            for value, out in self._apply_sharded(pending, workers).items():
                outputs[code_of[value]] = out
            stats.sharded_values += len(pending)
        else:
            compute = self._compute
            for value in pending:
                outputs[code_of[value]] = compute(value)
        # Broadcast: rows -> codes -> outputs, both loops in C.
        result = list(
            map(outputs.__getitem__, map(code_of.__getitem__, values))
        )
        if len(intern) > self.intern_size:
            # Bound memory: this batch's codes are already consumed, so
            # dropping the newest slots only costs future recomputation.
            del outputs[self.intern_size:]
            intern.truncate(self.intern_size)
        if self.obs.enabled:
            self.sync_obs(time.perf_counter() - started)
        return result

    def _apply_sharded(
        self, unique: List[str], workers: int
    ) -> Dict[str, str]:
        chunks = [unique[i::workers] for i in range(workers)]
        chunks = [c for c in chunks if c]
        # Serialized lazily: only the sharded path ships the model.
        payload = self.model.to_dict()
        with multiprocessing.Pool(
            len(chunks),
            initializer=_shard_init,
            initargs=(payload, self.use_programs),
        ) as pool:
            results = pool.map(_shard_apply, chunks)
        mapping: Dict[str, str] = {}
        for chunk, outs in zip(chunks, results):
            mapping.update(zip(chunk, outs))
        return mapping

    def apply_table(
        self,
        table: ClusterTable,
        column: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> List[CellRef]:
        """Standardize one column of a clustered table in place.

        Returns the cells whose value changed.
        """
        column = column or self.model.column
        cells = list(table.cells(column))
        before = [table.value(cell) for cell in cells]
        after = self.apply_values(before, workers=workers)
        changed: List[CellRef] = []
        for cell, old, new in zip(cells, before, after):
            if new != old:
                table.set_value(cell, new)
                changed.append(cell)
        return changed


# -- multiprocessing shard workers ----------------------------------------
#
# The pool initializer rebuilds the engine once per worker process from
# the model's JSON payload (always picklable); chunks of unique values
# then stream through the rebuilt engine.

_WORKER_ENGINE: Optional[ApplyEngine] = None


def _shard_init(payload: Dict, use_programs: bool) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = ApplyEngine(
        TransformationModel.from_dict(payload), use_programs=use_programs
    )


def _shard_apply(values: List[str]) -> List[str]:
    assert _WORKER_ENGINE is not None, "pool initializer did not run"
    return [_WORKER_ENGINE.transform(value) for value in values]
