"""Precompiled apply-index sidecars: hot reload in O(artifact size).

Compiling a :class:`~repro.serve.model.TransformationModel` into an
:class:`~repro.serve.engine.ApplyEngine` is the expensive half of a hot
swap — chain-composing E exact rules is O(E**2), and every consumer of
a publish used to pay it again (the ``--follow`` poller recompiled the
full engine on every publish).  A sidecar moves that cost to publish
time: the registry writes the *compiled* lookup structures (exact
table, signature -> program index, token rules) as a second JSON
artifact next to each version file::

    <root>/<slug>/v3.json          # the model (unchanged format)
    <root>/<slug>/v3.index.json    # its precompiled index

so reload/hot-swap costs one JSON parse instead of a recompilation.

Compatibility rules (the sidecar is an **accelerator, never a
correctness dependency**):

* the sidecar embeds a ``fingerprint`` — sha256 over the model's
  canonical payload (column, config, vocabulary, groups).  A consumer
  installs the index only when the fingerprint matches the model it
  actually loaded; any mismatch (hand-edited model, foreign sidecar,
  version skew) silently falls back to recompiling from the model;
* ``kind`` / ``schema_version`` gate the format exactly like model
  files: foreign kinds and newer schemas are rejected by the reader;
* a **missing or torn** sidecar is never an error — publishes stay
  atomic per file, the model file alone remains fully sufficient, and
  :func:`try_load_index` maps every failure mode to ``None``
  (= recompile).  Deleting every ``*.index.json`` is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.program import Program
from ..core.structure import Signature

PathLike = Union[str, Path]

#: Bump when the JSON layout changes incompatibly.
INDEX_SCHEMA_VERSION = 1

#: Sanity markers so arbitrary JSON files are rejected early.
INDEX_KIND = "repro.compiled_index"
BUNDLE_INDEX_KIND = "repro.compiled_bundle_index"

#: Failure modes :func:`try_load_index` maps to "no sidecar": torn
#: JSON, foreign kinds, missing files, malformed programs.
_SIDECAR_ERRORS = (OSError, ValueError, KeyError, TypeError)


def model_fingerprint(model) -> str:
    """sha256 over the model's canonical payload.

    Covers exactly the fields compilation depends on — column, config,
    vocabulary, and the confirmed groups — and none of the mutable
    metadata (name, provenance, timestamps), so re-publishing identical
    rules under a new name still matches.
    """
    payload = {
        "column": model.column,
        "config": model.config.to_dict(),
        "vocabulary": model.vocabulary.to_dict(),
        "groups": [group.to_dict() for group in model.groups],
    }
    blob = json.dumps(
        payload, sort_keys=True, ensure_ascii=False, separators=(",", ":")
    )
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sidecar_path(model_path: PathLike) -> Path:
    """``v3.json -> v3.index.json`` (never matches the registry's
    version-file pattern, so sidecars are invisible to ``versions``)."""
    path = Path(model_path)
    stem = path.name[: -len(".json")] if path.name.endswith(".json") else path.name
    return path.with_name(f"{stem}.index.json")


def _atomic_write(path: Path, payload: Dict) -> Path:
    """The same write-temp + fsync + rename discipline as model saves."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, ensure_ascii=False)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


@dataclass
class CompiledIndex:
    """One model's compiled lookup structures, ready to install.

    ``programs`` preserves both bucket order (first confirmed program
    wins) and signature insertion order, so an engine installed from a
    sidecar is structurally identical to one compiled from the model.
    """

    fingerprint: str
    column: str
    exact: Dict[str, str] = field(default_factory=dict)
    token_rules: List[Tuple[str, str]] = field(default_factory=list)
    programs: List[Tuple[Signature, List[Program]]] = field(
        default_factory=list
    )
    groups_compiled: int = 0
    schema_version: int = INDEX_SCHEMA_VERSION

    def matches(self, model) -> bool:
        """True iff this index was compiled from exactly ``model``."""
        return (
            self.column == getattr(model, "column", None)
            and self.fingerprint == model_fingerprint(model)
        )

    def to_dict(self) -> Dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return {
            "kind": INDEX_KIND,
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "column": self.column,
            "groups_compiled": self.groups_compiled,
            "exact": self.exact,
            "token_rules": [list(rule) for rule in self.token_rules],
            "programs": [
                {
                    "signature": list(signature),
                    "programs": [p.to_dict() for p in programs],
                }
                for signature, programs in self.programs
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CompiledIndex":
        """Rebuild an index, rejecting foreign kinds and newer schemas."""
        kind = payload.get("kind")
        if kind != INDEX_KIND:
            raise ValueError(
                f"not a compiled index (kind={kind!r}, "
                f"expected {INDEX_KIND!r})"
            )
        version = int(payload.get("schema_version", 0))
        if version < 1 or version > INDEX_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported index schema version {version} "
                f"(this build reads <= {INDEX_SCHEMA_VERSION})"
            )
        exact = payload.get("exact", {})
        if not isinstance(exact, dict):
            raise ValueError("index 'exact' must be an object")
        return cls(
            fingerprint=str(payload.get("fingerprint", "")),
            column=str(payload.get("column", "")),
            exact={str(k): str(v) for k, v in exact.items()},
            token_rules=[
                (str(lhs), str(rhs))
                for lhs, rhs in payload.get("token_rules", ())
            ],
            programs=[
                (
                    tuple(str(tag) for tag in entry["signature"]),
                    [Program.from_dict(p) for p in entry["programs"]],
                )
                for entry in payload.get("programs", ())
            ],
            groups_compiled=int(payload.get("groups_compiled", 0)),
            schema_version=version,
        )

    def save(self, path: PathLike) -> Path:
        """Write the index as JSON, atomically."""
        return _atomic_write(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: PathLike) -> "CompiledIndex":
        """Read an index saved by :meth:`save` (schema-checked)."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass
class BundleIndex:
    """Per-column :class:`CompiledIndex`\\ es for a model bundle."""

    columns: Dict[str, CompiledIndex] = field(default_factory=dict)
    schema_version: int = INDEX_SCHEMA_VERSION

    def matches(self, bundle) -> bool:
        """True iff every bundled column has a matching index."""
        models = getattr(bundle, "models", None)
        if not isinstance(models, dict):
            return False
        if set(models) != set(self.columns):
            return False
        return all(
            self.columns[column].matches(model)
            for column, model in models.items()
        )

    def to_dict(self) -> Dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return {
            "kind": BUNDLE_INDEX_KIND,
            "schema_version": self.schema_version,
            "columns": {
                column: index.to_dict()
                for column, index in self.columns.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "BundleIndex":
        """Rebuild a bundle index (kind- and schema-checked)."""
        kind = payload.get("kind")
        if kind != BUNDLE_INDEX_KIND:
            raise ValueError(
                f"not a compiled bundle index (kind={kind!r}, "
                f"expected {BUNDLE_INDEX_KIND!r})"
            )
        version = int(payload.get("schema_version", 0))
        if version < 1 or version > INDEX_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported index schema version {version} "
                f"(this build reads <= {INDEX_SCHEMA_VERSION})"
            )
        return cls(
            columns={
                str(column): CompiledIndex.from_dict(entry)
                for column, entry in payload.get("columns", {}).items()
            },
            schema_version=version,
        )

    def save(self, path: PathLike) -> Path:
        """Write the bundle index as JSON, atomically."""
        return _atomic_write(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: PathLike) -> "BundleIndex":
        """Read a bundle index saved by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# -- building ---------------------------------------------------------------


def build_index(model) -> CompiledIndex:
    """Compile ``model`` once and capture the lookup structures.

    Uses the real :class:`~repro.serve.engine.ApplyEngine` compiler, so
    a sidecar can never drift from what a cold compile would build.
    """
    from .engine import ApplyEngine  # deferred: engine imports nothing here

    engine = ApplyEngine(model)
    return CompiledIndex(
        fingerprint=model_fingerprint(model),
        column=model.column,
        exact=dict(engine.exact),
        token_rules=list(engine.token_rules),
        programs=[
            (signature, list(programs))
            for signature, programs in engine.programs.items()
        ],
        groups_compiled=len(model.groups),
    )


def build_bundle_index(bundle) -> BundleIndex:
    """Per-column compiled indexes for a bundle artifact."""
    return BundleIndex(
        columns={
            column: build_index(model)
            for column, model in bundle.models.items()
        }
    )


def write_sidecar(artifact, model_path: PathLike) -> Path:
    """Compile ``artifact`` (model or bundle, duck-typed) and persist
    its index next to ``model_path``; returns the sidecar path."""
    if isinstance(getattr(artifact, "models", None), dict):
        index = build_bundle_index(artifact)
    else:
        index = build_index(artifact)
    return index.save(sidecar_path(model_path))


def try_load_index(
    model_path: PathLike, artifact
) -> Optional[Union[CompiledIndex, BundleIndex]]:
    """The sidecar for ``model_path`` iff it exists, parses, and
    fingerprints against ``artifact``; every failure mode is ``None``
    (= the caller recompiles — the sidecar is only an accelerator)."""
    path = sidecar_path(model_path)
    bundle = isinstance(getattr(artifact, "models", None), dict)
    try:
        index = BundleIndex.load(path) if bundle else CompiledIndex.load(path)
    except _SIDECAR_ERRORS:
        return None
    if not index.matches(artifact):
        return None
    return index
