"""Multi-column model bundles: every column's model, one artifact.

A golden-record consumer standardizes *whole records*: one
:class:`~repro.serve.model.TransformationModel` per column, applied
together.  Persisting the columns as independent registry names would
let consumers observe a half-upgraded set — column A already at the new
version while column B still serves the old one — which silently skews
any fusion computed over the mix.  A :class:`ModelBundle` removes that
window: all per-column models serialize into **one JSON artifact**,
written atomically (write-to-temp + rename, the same discipline as
:meth:`TransformationModel.save`), so readers see the old column set or
the new one, never a blend.

:class:`BundleRegistry` versions bundles exactly like
:class:`~repro.serve.registry.ModelRegistry` versions models (same
``<root>/<slug>/v<N>.json`` layout, monotone versions, immutable
files), and :class:`BundleApplyEngine` compiles a bundle into one
:class:`~repro.serve.engine.ApplyEngine` per column with a single
:meth:`~BundleApplyEngine.reload` that flips every column in one call —
the consumer-side half of the atomicity story.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .engine import ApplyEngine
from .model import TransformationModel
from .registry import ModelRegistry

PathLike = Union[str, Path]

#: Bump when the JSON layout changes incompatibly.
BUNDLE_SCHEMA_VERSION = 1

#: Sanity marker so arbitrary JSON files (including single-column
#: transformation models) are rejected early.
BUNDLE_KIND = "repro.model_bundle"


@dataclass
class ModelBundle:
    """Per-column transformation models published as one atomic unit.

    ``models`` preserves column order (it is the standardization order
    of the run that produced the bundle); ``provenance`` carries the
    producing run's roll-ups (batches, records, per-column questions).
    """

    name: str
    models: Dict[str, TransformationModel] = field(default_factory=dict)
    provenance: Dict = field(default_factory=dict)
    created_at: float = 0.0
    schema_version: int = BUNDLE_SCHEMA_VERSION

    # -- derived -------------------------------------------------------

    @property
    def columns(self) -> List[str]:
        """The bundled columns, in standardization order."""
        return list(self.models)

    @property
    def groups_confirmed(self) -> int:
        """Confirmed groups across every column's model."""
        return sum(m.groups_confirmed for m in self.models.values())

    def describe(self) -> str:
        """One-line human summary (CLI and registry catalogs)."""
        per_column = ", ".join(
            f"{column}: {model.groups_confirmed}"
            for column, model in self.models.items()
        )
        return (
            f"bundle {self.name!r} ({len(self.models)} columns; "
            f"groups {per_column or 'none'})"
        )

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> Dict:
        """The full versioned JSON payload :meth:`save` writes."""
        return {
            "kind": BUNDLE_KIND,
            "schema_version": self.schema_version,
            "name": self.name,
            "columns": self.columns,
            "created_at": self.created_at,
            "provenance": dict(self.provenance),
            "models": {
                column: model.to_dict()
                for column, model in self.models.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ModelBundle":
        """Rebuild a bundle, rejecting foreign kinds and newer schemas."""
        kind = payload.get("kind")
        if kind != BUNDLE_KIND:
            raise ValueError(
                f"not a model bundle (kind={kind!r}, "
                f"expected {BUNDLE_KIND!r})"
            )
        version = int(payload.get("schema_version", 0))
        if version < 1 or version > BUNDLE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bundle schema version {version} "
                f"(this build reads <= {BUNDLE_SCHEMA_VERSION})"
            )
        raw_models = payload.get("models", {})
        # The columns list pins the order; unlisted models trail it so
        # nothing a writer saved is ever dropped on a round trip.
        order = [
            c for c in payload.get("columns", ()) if c in raw_models
        ] + [c for c in raw_models if c not in payload.get("columns", ())]
        return cls(
            name=str(payload.get("name", "")),
            models={
                column: TransformationModel.from_dict(raw_models[column])
                for column in order
            },
            provenance=dict(payload.get("provenance", {})),
            created_at=float(payload.get("created_at", 0.0)),
            schema_version=version,
        )

    def save(self, path: PathLike) -> Path:
        """Write the bundle as indented JSON, atomically.

        Same discipline as :meth:`TransformationModel.save`: the JSON
        lands in a same-directory temp file and is renamed into place
        only once fully flushed — a crash mid-publish can never leave a
        truncated bundle, and a hot-reloading consumer polling the
        registry sees complete column sets only.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(
                    self.to_dict(), handle, indent=2, ensure_ascii=False
                )
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ModelBundle":
        """Read a bundle saved by :meth:`save` (schema-checked)."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def build_bundle(
    models: Dict[str, TransformationModel],
    name: str,
    provenance: Optional[Dict] = None,
) -> ModelBundle:
    """Assemble per-column models into a publishable bundle."""
    return ModelBundle(
        name=name,
        models=dict(models),
        provenance=dict(provenance or {}),
        created_at=time.time(),
    )


class BundleRegistry(ModelRegistry):
    """A :class:`ModelRegistry` whose artifacts are model bundles.

    Saving works unchanged (bundles expose the same ``name`` /
    ``save(path)`` surface the registry writes through, and sidecar
    publication duck-types on the bundle's ``models``); loading goes
    through :meth:`ModelBundle.load` so single-column model files in
    the same tree are rejected instead of half-read.
    """

    def _load_artifact(self, path) -> ModelBundle:
        """Parse one bundle file (kind- and schema-checked)."""
        return ModelBundle.load(path)


class BundleApplyEngine:
    """Per-column :class:`ApplyEngine`\\ s behind one record-level API.

    ``reload`` swaps every column in one call — between two reloads a
    consumer can never standardize column A with version N+1 and column
    B with version N, which is the whole point of bundling.  Columns
    absent from a record pass through untouched.
    """

    def __init__(
        self,
        bundle: ModelBundle,
        use_programs: bool = True,
        cache_size: int = 65536,
        obs=None,
        precompiled=None,
    ) -> None:
        self.use_programs = use_programs
        self.cache_size = cache_size
        self.obs = obs
        self.bundle = bundle
        per_column = self._per_column_indexes(precompiled)
        self.engines: Dict[str, ApplyEngine] = {
            column: self._make_engine(
                column, model, precompiled=per_column.get(column)
            )
            for column, model in bundle.models.items()
        }

    @staticmethod
    def _per_column_indexes(precompiled) -> Dict[str, object]:
        """The per-column compiled indexes of a bundle sidecar (each
        column's engine re-verifies its own fingerprint)."""
        columns = getattr(precompiled, "columns", None)
        return columns if isinstance(columns, dict) else {}

    def _make_engine(self, column: str, model, precompiled=None) -> ApplyEngine:
        # Per-column engines share the bundle's obs context; the column
        # label keeps their apply.* counters separable in one registry.
        return ApplyEngine(
            model,
            use_programs=self.use_programs,
            cache_size=self.cache_size,
            obs=self.obs,
            obs_labels={"column": column},
            precompiled=precompiled,
        )

    @property
    def columns(self) -> List[str]:
        """Columns this engine standardizes."""
        return list(self.engines)

    def engine(self, column: str) -> Optional[ApplyEngine]:
        """The one-column engine, or ``None`` for unknown columns."""
        return self.engines.get(column)

    def reload(self, bundle: ModelBundle, precompiled=None) -> None:
        """Hot-swap to a newly published bundle, all columns at once.

        Columns whose model merely grew reuse the incremental
        :meth:`ApplyEngine.reload` path (append-only recompile); other
        columns install from a ``precompiled`` bundle sidecar when one
        matches, and recompile otherwise; new columns get fresh
        engines; columns the new bundle dropped stop being served.
        """
        per_column = self._per_column_indexes(precompiled)
        engines: Dict[str, ApplyEngine] = {}
        for column, model in bundle.models.items():
            engine = self.engines.get(column)
            if engine is None:
                engine = self._make_engine(
                    column, model, precompiled=per_column.get(column)
                )
            else:
                engine.reload(model, precompiled=per_column.get(column))
            engines[column] = engine
        self.engines = engines
        self.bundle = bundle

    def apply_record(self, values: Dict[str, str]) -> Dict[str, str]:
        """Standardize one record's bundled columns (copy returned)."""
        out = dict(values)
        for column, engine in self.engines.items():
            if column in out:
                out[column] = engine.apply_values([out[column]])[0]
        return out

    def apply_column(
        self, column: str, values: Sequence[str]
    ) -> List[str]:
        """Standardize one column of values; unknown columns pass
        through unchanged (the bundle has nothing to say about them)."""
        engine = self.engines.get(column)
        if engine is None:
            return list(values)
        return engine.apply_values(values)

    def stats(self) -> Dict[str, Dict]:
        """Per-column engine counters (see :meth:`ApplyEngine.stats`)."""
        return {
            column: engine.stats().as_dict()
            for column, engine in self.engines.items()
        }

    def sync_obs(self) -> None:
        """Flush every column engine's counter deltas to the registry
        (see :meth:`ApplyEngine.sync_obs`)."""
        for engine in self.engines.values():
            engine.sync_obs()
