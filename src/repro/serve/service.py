"""Transport-agnostic serve plumbing: the stdin worker and the TTL'd
compiled-model cache the network tier (:mod:`repro.serve.server`) is
built on.

The original worker reads one JSON request per line on stdin and
writes one JSON response per line on stdout — the lowest-common-
denominator protocol every language and shell can speak, trivially
supervised behind a socket server or a container.  Requests:

``{"op": "apply", "value": "9th St"}``
    Standardize one value; responds ``{"ok": true, "value": ...}``.

``{"op": "apply", "values": [...]}``
    Standardize a batch; responds ``{"ok": true, "values": [...],
    "changed": <count>}``.  Batches share the engine's LRU cache.

``{"op": "stats"}``
    Engine counters plus model identity.

``{"op": "ping"}``
    Liveness probe; responds ``{"ok": true, "pong": true}``.

``{"op": "shutdown"}``
    Acknowledge and exit the loop.

Malformed lines and unknown ops produce ``{"ok": false, "error": ...}``
and the worker keeps serving — a poison request must not take the
worker down.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, IO, Optional, Tuple

from .engine import ApplyEngine


def handle_request(engine: ApplyEngine, request: Dict) -> Dict:
    """Answer one already-parsed request; never raises."""
    op = request.get("op", "apply")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {
            "ok": True,
            "model": engine.model.name,
            "column": engine.model.column,
            "groups": engine.model.groups_confirmed,
            "stats": engine.stats().as_dict(),
        }
    if op == "shutdown":
        return {"ok": True, "bye": True}
    if op == "apply":
        if "values" in request:
            values = request["values"]
            if not isinstance(values, list) or any(
                not isinstance(v, str) for v in values
            ):
                return {"ok": False, "error": "values must be a string list"}
            outputs = engine.apply_values(values)
            changed = sum(1 for v, o in zip(values, outputs) if v != o)
            return {"ok": True, "values": outputs, "changed": changed}
        if "value" in request:
            value = request["value"]
            if not isinstance(value, str):
                return {"ok": False, "error": "value must be a string"}
            return {"ok": True, "value": engine.transform(value)}
        return {"ok": False, "error": "apply needs 'value' or 'values'"}
    return {"ok": False, "error": f"unknown op: {op!r}"}


#: Loads the freshest servable artifact of one name.  Receives the
#: cached ``(version, engine)`` (or ``(None, None)``) so an unchanged
#: registry can hand the compiled engine straight back instead of
#: recompiling; returns the new ``(version, engine)``.
EngineLoader = Callable[
    [str, Optional[int], Optional[object]], Tuple[int, object]
]


class _CacheEntry:
    __slots__ = ("version", "engine", "loaded_at")

    def __init__(self, version: int, engine: object, loaded_at: float):
        self.version = version
        self.engine = engine
        self.loaded_at = loaded_at


class TTLEngineCache:
    """A TTL'd cache of compiled engines fronting a model registry.

    The serving tier answers every request through this cache, which
    gives it two freshness guarantees with one mechanism:

    * **bounded staleness** — an entry older than ``ttl`` seconds is
      never served without re-consulting the loader first, so even a
      server nobody notifies converges on a new publish within one TTL;
    * **publish consistency** — after :meth:`notify_publish` (or
      :meth:`store`) records that version ``v`` completed, ``get``
      never again returns anything older than ``v``: a known publish
      forces a refresh regardless of remaining TTL.  Returned versions
      are monotone per name — the cache never travels backwards even
      if the loader momentarily does.  The cached entry is what anchors
      that clamp, so :meth:`evict_expired` (which nothing in the
      serving tier calls) trades the monotone baseline of the names it
      drops for memory.

    The clock is injectable (``clock=time.monotonic`` by default) so
    property tests can drive arbitrary get/publish/expire interleavings
    deterministically.  The cache itself is synchronous and unlocked:
    the asyncio server calls it from one event loop, and its follow
    poller injects fresh engines via :meth:`store` (a single attribute
    rebind, safe under the GIL).
    """

    def __init__(
        self,
        loader: EngineLoader,
        ttl: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.loader = loader
        self.ttl = ttl
        self.clock = clock
        self._entries: Dict[str, _CacheEntry] = {}
        #: name -> newest version known to have *completed* publishing
        self._published: Dict[str, int] = {}

    # -- publish notifications ---------------------------------------------

    def notify_publish(self, name: str, version: int) -> None:
        """Record that ``version`` of ``name`` finished publishing.

        Only call this for *completed* (atomically renamed, loadable)
        artifacts — the floor it raises is a promise ``get`` keeps.
        """
        if version > self._published.get(name, 0):
            self._published[name] = version

    def store(self, name: str, version: int, engine: object) -> bool:
        """Install an already-loaded engine (the follow poller's path).

        Returns True when it became the served entry; a version at or
        below the cached one only refreshes the entry's TTL.  Either
        way the publish floor rises to ``version``.
        """
        now = self.clock()
        entry = self._entries.get(name)
        self.notify_publish(name, version)
        if entry is not None and entry.version >= version:
            entry.loaded_at = now
            return False
        self._entries[name] = _CacheEntry(version, engine, now)
        return True

    # -- reads -------------------------------------------------------------

    def peek(self, name: str) -> Optional[Tuple[int, object]]:
        """The cached ``(version, engine)`` with no freshness checks,
        no loader call, and no TTL refresh; ``None`` when absent."""
        entry = self._entries.get(name)
        if entry is None:
            return None
        return entry.version, entry.engine

    def get(self, name: str) -> Tuple[int, object]:
        """The freshest ``(version, engine)`` of ``name``.

        Serves the cached entry only while it is younger than the TTL
        *and* not older than the newest known completed publish;
        otherwise refreshes through the loader.  A loader that reports
        an older version than the cache already served is ignored
        (monotone reads); one that cannot yet see a notified publish is
        served best-effort but left expired, so the very next ``get``
        retries instead of trusting it for a full TTL.
        """
        now = self.clock()
        entry = self._entries.get(name)
        floor = self._published.get(name, 0)
        if (
            entry is not None
            and now - entry.loaded_at <= self.ttl
            and entry.version >= floor
        ):
            return entry.version, entry.engine
        cached_version = entry.version if entry is not None else None
        cached_engine = entry.engine if entry is not None else None
        version, engine = self.loader(name, cached_version, cached_engine)
        if cached_version is not None and version < cached_version:
            version, engine = cached_version, cached_engine
        loaded_at = now
        if version < floor:
            # The loader lags a completed publish (should be impossible
            # with atomic publishes); serve its best but stay expired.
            loaded_at = now - self.ttl - 1.0
        else:
            self._published[name] = max(floor, version)
        self._entries[name] = _CacheEntry(version, engine, loaded_at)
        return version, engine

    # -- eviction ----------------------------------------------------------

    def evict_expired(self) -> int:
        """Drop entries whose TTL has fully elapsed (memory bound for
        many-model servers); fresh entries are never evicted.  Returns
        the number removed.

        The cached entry doubles as the monotone-reads clamp, so an
        evicted name's next ``get`` trusts the loader outright — a
        loader that travels backwards (listing glitch, slow NFS) can
        then serve an older version than before the eviction.  Callers
        who need strict monotonicity across a name's lifetime should
        simply not evict it; the publish floor (which survives
        eviction) still guards notified publishes either way."""
        now = self.clock()
        stale = [
            name
            for name, entry in self._entries.items()
            if now - entry.loaded_at > self.ttl
        ]
        for name in stale:
            del self._entries[name]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)


def serve_forever(
    engine: ApplyEngine,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
) -> int:
    """Serve requests until EOF or a shutdown op; returns request count.

    Streams default to stdin/stdout; they are injectable so tests (and
    embedders) can drive the worker with in-memory buffers.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    served = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        served += 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            response = {"ok": False, "error": f"bad request: {exc}"}
            request = None
        else:
            response = handle_request(engine, request)
        out_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        out_stream.flush()
        if request is not None and request.get("op") == "shutdown":
            break
    return served
