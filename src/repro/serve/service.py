"""A long-running JSON-lines transform worker (the ``serve`` command).

The worker reads one JSON request per line on stdin and writes one JSON
response per line on stdout — the lowest-common-denominator protocol
every language and shell can speak, trivially supervised behind a
socket server or a container.  Requests:

``{"op": "apply", "value": "9th St"}``
    Standardize one value; responds ``{"ok": true, "value": ...}``.

``{"op": "apply", "values": [...]}``
    Standardize a batch; responds ``{"ok": true, "values": [...],
    "changed": <count>}``.  Batches share the engine's LRU cache.

``{"op": "stats"}``
    Engine counters plus model identity.

``{"op": "ping"}``
    Liveness probe; responds ``{"ok": true, "pong": true}``.

``{"op": "shutdown"}``
    Acknowledge and exit the loop.

Malformed lines and unknown ops produce ``{"ok": false, "error": ...}``
and the worker keeps serving — a poison request must not take the
worker down.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Dict, Optional

from .engine import ApplyEngine


def handle_request(engine: ApplyEngine, request: Dict) -> Dict:
    """Answer one already-parsed request; never raises."""
    op = request.get("op", "apply")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {
            "ok": True,
            "model": engine.model.name,
            "column": engine.model.column,
            "groups": engine.model.groups_confirmed,
            "stats": engine.stats().as_dict(),
        }
    if op == "shutdown":
        return {"ok": True, "bye": True}
    if op == "apply":
        if "values" in request:
            values = request["values"]
            if not isinstance(values, list) or any(
                not isinstance(v, str) for v in values
            ):
                return {"ok": False, "error": "values must be a string list"}
            outputs = engine.apply_values(values)
            changed = sum(1 for v, o in zip(values, outputs) if v != o)
            return {"ok": True, "values": outputs, "changed": changed}
        if "value" in request:
            value = request["value"]
            if not isinstance(value, str):
                return {"ok": False, "error": "value must be a string"}
            return {"ok": True, "value": engine.transform(value)}
        return {"ok": False, "error": "apply needs 'value' or 'values'"}
    return {"ok": False, "error": f"unknown op: {op!r}"}


def serve_forever(
    engine: ApplyEngine,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
) -> int:
    """Serve requests until EOF or a shutdown op; returns request count.

    Streams default to stdin/stdout; they are injectable so tests (and
    embedders) can drive the worker with in-memory buffers.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    served = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        served += 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            response = {"ok": False, "error": f"bad request: {exc}"}
            request = None
        else:
            response = handle_request(engine, request)
        out_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        out_stream.flush()
        if request is not None and request.get("op") == "shutdown":
            break
    return served
