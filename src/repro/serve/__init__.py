"""Persistent transformation models and a high-throughput apply engine.

The standardization loop is expensive — graphs, pivot searches, and
above all *human confirmations*.  This package makes its output a
reusable asset:

* :mod:`repro.serve.model` — a versioned JSON schema for confirmed
  replacement groups, their programs, and full provenance;
* :mod:`repro.serve.registry` — a directory-backed model store with
  monotonically increasing versions per model name;
* :mod:`repro.serve.engine` — confirmed groups compiled into an
  exact-match hash table plus a per-structure-signature program index,
  applied columnar (dictionary-encoded through an intern table, once
  per distinct value) with optional multiprocessing sharding;
* :mod:`repro.serve.intern` — the value-interning table behind the
  columnar apply path;
* :mod:`repro.serve.sidecar` — precompiled apply indexes persisted
  next to each published model version, so reload and hot swap skip
  recompilation (fingerprint-checked, always safe to delete);
* :mod:`repro.serve.replay` — provenance-aware re-application that
  reproduces a learning run's cell edits exactly on an identical table;
* :mod:`repro.serve.bundle` — per-column models published as one
  atomic multi-column artifact, with a record-level apply engine whose
  single ``reload`` flips every column together;
* :mod:`repro.serve.service` — a long-running JSON-lines worker
  answering transform requests over stdin/stdout, plus the TTL'd
  compiled-engine cache the network tier reads through;
* :mod:`repro.serve.server` — the concurrent asyncio JSON-over-TCP
  network service: hot-reloading model source, golden-record lookups
  tailed from the stream's delta log, and fault-tolerant connection
  handling (``repro serve --listen``).
"""

from .bundle import (
    BundleApplyEngine,
    BundleRegistry,
    ModelBundle,
    build_bundle,
)
from .engine import ApplyEngine, ApplyStats
from .intern import InternTable
from .model import TransformationModel, build_model
from .registry import ModelRegistry
from .replay import ModelReplayer, ReplayReport
from .server import GoldenTable, ModelSource, ServeServer, parse_listen
from .service import TTLEngineCache, serve_forever
from .sidecar import (
    BundleIndex,
    CompiledIndex,
    build_bundle_index,
    build_index,
    model_fingerprint,
    sidecar_path,
    try_load_index,
    write_sidecar,
)

__all__ = [
    "ApplyEngine",
    "ApplyStats",
    "BundleApplyEngine",
    "BundleIndex",
    "BundleRegistry",
    "CompiledIndex",
    "GoldenTable",
    "InternTable",
    "ModelBundle",
    "ModelRegistry",
    "ModelReplayer",
    "ModelSource",
    "ReplayReport",
    "ServeServer",
    "TTLEngineCache",
    "TransformationModel",
    "build_bundle",
    "build_bundle_index",
    "build_index",
    "build_model",
    "model_fingerprint",
    "parse_listen",
    "serve_forever",
    "sidecar_path",
    "try_load_index",
    "write_sidecar",
]
