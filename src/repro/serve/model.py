"""The persisted transformation model (versioned JSON schema).

A :class:`TransformationModel` captures everything a standardization
run learned that is worth keeping: the human-confirmed replacement
groups in confirmation order, each with its transformation
:class:`~repro.core.program.Program`, review direction, structure
signature, and the direction-resolved member replacements as they were
applied; plus the term vocabulary, the :class:`~repro.config.Config`,
and run provenance (dataset, column, seed, budget, oracle decisions,
counts).

The confirmed sequence is sufficient for two distinct consumers:

* :class:`repro.serve.replay.ModelReplayer` re-applies it with the
  Section 7.1 provenance rules and reproduces the learner's cell edits
  *exactly* on an identical table;
* :class:`repro.serve.engine.ApplyEngine` compiles it into value-level
  lookup structures for O(N) application to arbitrary new data.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..config import DEFAULT_CONFIG, Config
from ..core.program import Program
from ..core.replacement import Replacement
from ..core.structure import StructureKey
from ..core.terms import DEFAULT_VOCABULARY, TermVocabulary
from ..pipeline.oracle import FORWARD, REVERSE
from ..pipeline.standardize import StandardizationLog

PathLike = Union[str, Path]

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Sanity marker so arbitrary JSON files are rejected early.
MODEL_KIND = "repro.transformation_model"


@dataclass(frozen=True)
class ConfirmedMember:
    """One direction-resolved replacement of a confirmed group."""

    lhs: str
    rhs: str
    #: had whole-value provenance at apply time (Section 3 Step 1)
    whole: bool = True
    #: had token-level provenance at apply time (Appendix A)
    token: bool = False
    #: cells the learner changed when applying it
    cells_changed: int = 0

    @property
    def replacement(self) -> Replacement:
        """The member as a core :class:`Replacement` (lhs -> rhs)."""
        return Replacement(self.lhs, self.rhs)

    def to_dict(self) -> Dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return {
            "lhs": self.lhs,
            "rhs": self.rhs,
            "whole": self.whole,
            "token": self.token,
            "cells_changed": self.cells_changed,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ConfirmedMember":
        """Rebuild a member from its :meth:`to_dict` payload."""
        return cls(
            str(payload["lhs"]),
            str(payload["rhs"]),
            bool(payload.get("whole", True)),
            bool(payload.get("token", False)),
            int(payload.get("cells_changed", 0)),
        )


@dataclass(frozen=True)
class ConfirmedGroup:
    """One approved group: program, direction, members in apply order.

    ``program`` and ``structure`` keep the *learned* orientation
    (lhs -> rhs as grouped); ``members`` are direction-resolved, i.e.
    already swapped when the reviewer approved the reverse direction.
    """

    program: Program
    direction: str  # pipeline.oracle.FORWARD | REVERSE
    members: Tuple[ConfirmedMember, ...]
    structure: Optional[StructureKey] = None

    @property
    def size(self) -> int:
        """Member count (the oracle judged the whole group at once)."""
        return len(self.members)

    def to_dict(self) -> Dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return {
            "program": self.program.to_dict(),
            "direction": self.direction,
            "structure": (
                [list(side) for side in self.structure]
                if self.structure is not None
                else None
            ),
            "members": [m.to_dict() for m in self.members],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ConfirmedGroup":
        """Rebuild a group from its :meth:`to_dict` payload (validated)."""
        direction = payload.get("direction", FORWARD)
        if direction not in (FORWARD, REVERSE):
            raise ValueError(f"bad group direction: {direction!r}")
        structure = payload.get("structure")
        return cls(
            Program.from_dict(payload["program"]),
            direction,
            tuple(
                ConfirmedMember.from_dict(m)
                for m in payload.get("members", ())
            ),
            (
                tuple(tuple(str(tag) for tag in side) for side in structure)
                if structure is not None
                else None
            ),
        )


@dataclass
class TransformationModel:
    """Everything one standardization run learned, ready to persist."""

    name: str
    column: str
    groups: List[ConfirmedGroup] = field(default_factory=list)
    config: Config = DEFAULT_CONFIG
    vocabulary: TermVocabulary = DEFAULT_VOCABULARY
    #: free-form provenance: dataset, seed, budget, scale, oracle,
    #: per-step decisions, counts — anything JSON-safe.
    provenance: Dict = field(default_factory=dict)
    created_at: float = 0.0
    schema_version: int = SCHEMA_VERSION

    # -- derived -----------------------------------------------------------

    @property
    def groups_confirmed(self) -> int:
        """Confirmed groups — also the oracle questions this model cost."""
        return len(self.groups)

    @property
    def replacements_confirmed(self) -> int:
        """Total direction-resolved member replacements across groups."""
        return sum(g.size for g in self.groups)

    @property
    def cells_changed(self) -> int:
        """Cells the learner rewrote while confirming these groups."""
        return sum(m.cells_changed for g in self.groups for m in g.members)

    def describe(self) -> str:
        """One-line human summary (used by the CLI and the registry catalog)."""
        return (
            f"model {self.name!r} (column {self.column!r}): "
            f"{self.groups_confirmed} groups, "
            f"{self.replacements_confirmed} replacements, "
            f"{self.cells_changed} cells changed at learn time"
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict:
        """The full versioned JSON payload :meth:`save` writes."""
        return {
            "kind": MODEL_KIND,
            "schema_version": self.schema_version,
            "name": self.name,
            "column": self.column,
            "created_at": self.created_at,
            "provenance": dict(self.provenance),
            "config": self.config.to_dict(),
            "vocabulary": self.vocabulary.to_dict(),
            "groups": [g.to_dict() for g in self.groups],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TransformationModel":
        """Rebuild a model, rejecting foreign kinds and newer schemas."""
        kind = payload.get("kind")
        if kind != MODEL_KIND:
            raise ValueError(
                f"not a transformation model (kind={kind!r}, "
                f"expected {MODEL_KIND!r})"
            )
        version = int(payload.get("schema_version", 0))
        if version < 1 or version > SCHEMA_VERSION:
            raise ValueError(
                f"unsupported model schema version {version} "
                f"(this build reads <= {SCHEMA_VERSION})"
            )
        return cls(
            name=str(payload.get("name", "")),
            column=str(payload.get("column", "")),
            groups=[
                ConfirmedGroup.from_dict(g)
                for g in payload.get("groups", ())
            ],
            config=Config.from_dict(payload.get("config", {})),
            vocabulary=TermVocabulary.from_dict(
                payload.get("vocabulary", {})
            ),
            provenance=dict(payload.get("provenance", {})),
            created_at=float(payload.get("created_at", 0.0)),
            schema_version=version,
        )

    def save(self, path: PathLike) -> Path:
        """Write the model as indented JSON; returns the path.

        The write is atomic: the JSON lands in a same-directory temp
        file first and is renamed into place only once fully flushed, so
        a crash mid-save (or mid registry publish) can never leave a
        truncated model file behind — readers see the old version or the
        new one, nothing in between.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(
                    self.to_dict(), handle, indent=2, ensure_ascii=False
                )
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: PathLike) -> "TransformationModel":
        """Read a model saved by :meth:`save` (schema-checked)."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def build_model(
    log: StandardizationLog,
    column: str,
    name: Optional[str] = None,
    config: Config = DEFAULT_CONFIG,
    vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
    provenance: Optional[Dict] = None,
) -> TransformationModel:
    """Distill a standardization run into a persistent model.

    Only approved steps are kept (rejected groups taught us nothing
    applicable), but every step's decision lands in the provenance so
    the full review session is auditable.
    """
    groups: List[ConfirmedGroup] = []
    decisions: List[Dict] = []
    for step in log.steps:
        decisions.append(
            {
                "approved": step.decision.approved,
                "direction": step.decision.direction,
                "group_size": step.group.size,
                "cells_changed": step.cells_changed,
            }
        )
        if not step.decision.approved:
            continue
        members = tuple(
            ConfirmedMember(
                a.replacement.lhs,
                a.replacement.rhs,
                a.whole,
                a.token,
                a.cells_changed,
            )
            for a in step.applied
        )
        groups.append(
            ConfirmedGroup(
                step.group.program,
                step.decision.direction,
                members,
                step.group.structure,
            )
        )
    merged = {
        "groups_reviewed": log.groups_confirmed,
        "groups_approved": log.groups_approved,
        "cells_changed": log.cells_changed,
        "decisions": decisions,
    }
    if provenance:
        merged.update(provenance)
    return TransformationModel(
        name=name or column,
        column=column,
        groups=groups,
        config=config,
        vocabulary=vocabulary,
        provenance=merged,
        created_at=time.time(),
    )
