"""Shared claim model for source-aware truth discovery.

TruthFinder and Accu reason about *which source said what about which
object*; this module extracts (source, object, value) claims from a
:class:`~repro.data.table.ClusterTable`, where the object is the
cluster and the source is each record's provenance tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..data.table import ClusterTable


@dataclass(frozen=True)
class Claim:
    """One source's assertion of one value for one object."""

    source: str
    obj: int  # cluster index
    value: str


def claims_from_table(table: ClusterTable, column: str) -> List[Claim]:
    """Extract claims; records without a source tag get per-record tags
    so every record still votes independently."""
    claims: List[Claim] = []
    for ci, cluster in enumerate(table.clusters):
        for ri, record in enumerate(cluster.records):
            value = record.values.get(column, "")
            if not value:
                continue
            source = record.source or f"__record_{ci}_{ri}"
            claims.append(Claim(source, ci, value))
    return claims


def group_claims(claims: List[Claim]) -> Dict[int, Dict[str, List[str]]]:
    """``obj -> value -> [sources]`` (a source may repeat per object)."""
    grouped: Dict[int, Dict[str, List[str]]] = {}
    for claim in claims:
        grouped.setdefault(claim.obj, {}).setdefault(claim.value, []).append(
            claim.source
        )
    return grouped


def canonical_claims(
    grouped: Dict[int, Dict[str, List[str]]]
) -> Dict[int, Dict[str, List[str]]]:
    """The claim groups in a canonical (permutation-stable) order.

    Objects ascend, values ascend within an object, and each value's
    claimant list is sorted.  The iterative fusers accumulate
    floating-point sums over these structures; without a canonical
    order, re-arriving the same records in a different sequence changes
    the *summation order*, and the last-ulp drift can flip a
    near-tie — fused truth must be a function of what was claimed, not
    of arrival order (pinned by
    ``tests/property/test_fusion_properties.py``).
    """
    return {
        obj: {
            value: sorted(by_value[value]) for value in sorted(by_value)
        }
        for obj, by_value in sorted(grouped.items())
    }
