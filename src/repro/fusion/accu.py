"""Accu — Bayesian source-accuracy fusion (Dong, Berti-Equille,
Srivastava, VLDB 2009; paper's reference [15]).

Each source has an accuracy ``A(s)``; assuming ``n`` uniformly likely
false values, the posterior of value ``v`` is proportional to

    exp( sum_{s claims v} ln( n * A(s) / (1 - A(s)) ) )

Accuracies and value posteriors are iterated to a fixpoint.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from ..data.table import ClusterTable
from .base import canonical_claims, claims_from_table, group_claims


class Accu:
    """Iterative source-accuracy estimation and Bayesian fusion."""

    def __init__(
        self,
        initial_accuracy: float = 0.8,
        false_value_count: int = 10,
        max_iterations: int = 10,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0 < initial_accuracy < 1:
            raise ValueError("initial_accuracy must be in (0, 1)")
        self.initial_accuracy = initial_accuracy
        self.n_false = max(1, false_value_count)
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.accuracy: Dict[str, float] = {}

    def fuse(self, table: ClusterTable, column: str) -> Dict[int, Optional[str]]:
        claims = claims_from_table(table, column)
        # Canonical claim order: fused truth is a function of what was
        # claimed, never of record arrival order (float-sum stability).
        grouped = canonical_claims(group_claims(claims))
        sources = sorted({c.source for c in claims})
        self.accuracy = {s: self.initial_accuracy for s in sources}

        probabilities: Dict[int, Dict[str, float]] = {}
        for _ in range(self.max_iterations):
            probabilities = {
                obj: self._value_probabilities(by_value)
                for obj, by_value in grouped.items()
            }
            new_acc = self._source_accuracies(grouped, probabilities, sources)
            delta = max(
                (abs(new_acc[s] - self.accuracy[s]) for s in sources),
                default=0.0,
            )
            self.accuracy = new_acc
            if delta < self.tolerance:
                break

        # Every cluster is mapped, claimless ones to None: consumers
        # (and the fusion property suite) rely on uniform coverage
        # across fusion methods.
        golden: Dict[int, Optional[str]] = {}
        for obj in range(table.num_clusters):
            by_value = grouped.get(obj)
            if not by_value:
                golden[obj] = None
                continue
            probs = probabilities.get(obj, {})
            golden[obj] = max(
                by_value, key=lambda v: (probs.get(v, 0.0), v)
            )
        return golden

    # -- internals ----------------------------------------------------------

    def _vote(self, source: str) -> float:
        acc = min(max(self.accuracy[source], 0.01), 0.99)
        return math.log(self.n_false * acc / (1.0 - acc))

    def _value_probabilities(
        self, by_value: Dict[str, List[str]]
    ) -> Dict[str, float]:
        scores = {
            value: sum(self._vote(s) for s in sources)
            for value, sources in by_value.items()
        }
        if not scores:
            return {}
        peak = max(scores.values())
        expd = {v: math.exp(score - peak) for v, score in scores.items()}
        total = sum(expd.values())
        return {v: e / total for v, e in expd.items()}

    def _source_accuracies(
        self,
        grouped: Dict[int, Dict[str, List[str]]],
        probabilities: Dict[int, Dict[str, float]],
        sources: Iterable[str],
    ) -> Dict[str, float]:
        sums = {s: 0.0 for s in sources}
        counts = {s: 0 for s in sources}
        for obj, by_value in grouped.items():
            probs = probabilities[obj]
            for value, claimants in by_value.items():
                for s in claimants:
                    sums[s] += probs.get(value, 0.0)
                    counts[s] += 1
        return {
            s: (sums[s] / counts[s]) if counts[s] else self.initial_accuracy
            for s in sums
        }


def fuse(table: ClusterTable, column: str, **kwargs) -> Dict[int, Optional[str]]:
    """Module-level convenience mirroring the other fusion modules."""
    return Accu(**kwargs).fuse(table, column)
