"""TruthFinder (Yin, Han, Yu, TKDE 2008) — iterative trustworthiness.

Source trustworthiness and claim confidence reinforce each other:

    tau(s)   = average confidence of the claims s makes
    sigma(v) = 1 - prod_{s claims v} (1 - tau(s))        (base score)
    sigma*(v) = sigma(v) + rho * sum_{v' != v} sigma(v') * imp(v' -> v)

with a logistic dampening of the combined score.  Implication between
values defaults to token-Jaccard similarity shifted to [-0.5, 0.5]:
similar variants support each other, dissimilar values erode each
other — precisely why pre-standardizing variants (this paper's
contribution) also helps methods beyond plain majority voting.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional

from ..data.table import ClusterTable
from .base import canonical_claims, claims_from_table, group_claims

Implication = Callable[[str, str], float]


def default_implication(a: str, b: str) -> float:
    """Token-Jaccard similarity mapped to [-0.5, 0.5]."""
    ta, tb = set(a.split()), set(b.split())
    if not ta or not tb:
        return -0.5
    jac = len(ta & tb) / len(ta | tb)
    return jac - 0.5


class TruthFinder:
    """Iterative source-trust / claim-confidence fixpoint."""

    def __init__(
        self,
        initial_trust: float = 0.9,
        dampening: float = 0.3,
        implication_weight: float = 0.5,
        implication: Implication = default_implication,
        max_iterations: int = 10,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0 < initial_trust < 1:
            raise ValueError("initial_trust must be in (0, 1)")
        self.initial_trust = initial_trust
        self.dampening = dampening
        self.implication_weight = implication_weight
        self.implication = implication
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.trust: Dict[str, float] = {}

    def fuse(self, table: ClusterTable, column: str) -> Dict[int, Optional[str]]:
        """Golden value per cluster: the highest-confidence claim."""
        claims = claims_from_table(table, column)
        # Canonical claim order: fused truth is a function of what was
        # claimed, never of record arrival order (float-sum stability).
        grouped = canonical_claims(group_claims(claims))
        sources = sorted({c.source for c in claims})
        self.trust = {s: self.initial_trust for s in sources}

        confidences: Dict[int, Dict[str, float]] = {}
        for _ in range(self.max_iterations):
            confidences = self._claim_confidences(grouped)
            new_trust = self._source_trust(grouped, confidences, sources)
            delta = max(
                (abs(new_trust[s] - self.trust[s]) for s in sources),
                default=0.0,
            )
            self.trust = new_trust
            if delta < self.tolerance:
                break

        # Every cluster is mapped, claimless ones to None: consumers
        # (and the fusion property suite) rely on uniform coverage
        # across fusion methods.
        golden: Dict[int, Optional[str]] = {}
        for obj in range(table.num_clusters):
            by_value = grouped.get(obj)
            if not by_value:
                golden[obj] = None
                continue
            scores = confidences.get(obj, {})
            golden[obj] = max(
                by_value, key=lambda v: (scores.get(v, 0.0), v)
            )
        return golden

    # -- internals ----------------------------------------------------------

    def _claim_confidences(
        self, grouped: Dict[int, Dict[str, List[str]]]
    ) -> Dict[int, Dict[str, float]]:
        confidences: Dict[int, Dict[str, float]] = {}
        for obj, by_value in grouped.items():
            raw: Dict[str, float] = {}
            for value, sources in by_value.items():
                # sigma(v) via trust scores: -sum ln(1 - tau(s))
                score = 0.0
                for s in sources:
                    trust = min(self.trust[s], 0.999999)
                    score += -math.log(1.0 - trust)
                raw[value] = score
            adjusted: Dict[str, float] = {}
            for value in by_value:
                influence = sum(
                    raw[other] * self.implication(other, value)
                    for other in by_value
                    if other != value
                )
                adjusted[value] = (
                    raw[value] + self.implication_weight * influence
                )
            confidences[obj] = {
                value: 1.0 / (1.0 + math.exp(-self.dampening * score))
                for value, score in adjusted.items()
            }
        return confidences

    def _source_trust(
        self,
        grouped: Dict[int, Dict[str, List[str]]],
        confidences: Dict[int, Dict[str, float]],
        sources: Iterable[str],
    ) -> Dict[str, float]:
        sums: Dict[str, float] = {s: 0.0 for s in sources}
        counts: Dict[str, int] = {s: 0 for s in sources}
        for obj, by_value in grouped.items():
            for value, claimants in by_value.items():
                conf = confidences[obj][value]
                for s in claimants:
                    sums[s] += conf
                    counts[s] += 1
        return {
            s: (sums[s] / counts[s]) if counts[s] else self.initial_trust
            for s in sums
        }


def fuse(table: ClusterTable, column: str, **kwargs) -> Dict[int, Optional[str]]:
    """Module-level convenience mirroring :func:`repro.fusion.majority.fuse`."""
    return TruthFinder(**kwargs).fuse(table, column)
