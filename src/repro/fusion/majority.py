"""Majority consensus (MC) — the truth-discovery method of Section 8.3.

MC picks the most frequent value per cluster; when two values tie for
the top frequency it "could not produce a golden value" (paper,
Section 8.3).  Standardizing variant values first merges their vote
mass, which is exactly the mechanism behind Table 8's improvement.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional

from ..data.table import ClusterTable


def majority_value(values: Iterable[Optional[str]]) -> Optional[str]:
    """The strictly most frequent value, or ``None`` on a tie/empty.

    Empty and ``None`` cells never vote.  Ranking is order-stable —
    ``(count desc, value asc)`` — so the result is a pure function of
    the value *multiset*: permuting the input (records arriving in a
    different order, clusters merged in a different sequence) can never
    change the winner, which the incremental golden-record path and the
    fusion property suite both rely on.
    """
    counts = Counter(v for v in values if v)
    if not counts:
        return None
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
        return None
    return ranked[0][0]


def fuse(table: ClusterTable, column: str) -> Dict[int, Optional[str]]:
    """Golden value per cluster index by majority consensus."""
    return {
        ci: majority_value(table.cluster_values(ci, column))
        for ci in range(table.num_clusters)
    }
