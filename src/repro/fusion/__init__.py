"""Truth discovery / data fusion substrate (majority, TruthFinder, Accu)."""

from . import accu, majority, truthfinder
from .base import Claim, canonical_claims, claims_from_table, group_claims
