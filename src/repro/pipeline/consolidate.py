"""End-to-end golden-record creation (Algorithm 1, complete).

``GoldenRecordCreation`` iterates the standardization loop over *every*
column of the clustered table (Algorithm 1 line 2), then runs a truth-
discovery method on the updated clusters (line 10) and returns one
golden record per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..config import DEFAULT_CONFIG, Config
from ..core.terms import DEFAULT_VOCABULARY, TermVocabulary
from ..data.table import ClusterTable
from ..fusion import majority
from ..serve.model import TransformationModel, build_model
from .golden import FusionFn, golden_records
from .oracle import Oracle
from .standardize import StandardizationLog, Standardizer

#: Builds an oracle for one column's store; lets ground-truth oracles
#: bind to the column-specific replacement provenance.
OracleFactory = Callable[[Standardizer], Oracle]


@dataclass
class GoldenRecord:
    """The canonical value per attribute for one cluster."""

    cluster: int
    key: str
    values: Dict[str, Optional[str]] = field(default_factory=dict)


@dataclass
class ConsolidationReport:
    """Everything Algorithm 1 produced."""

    golden: List[GoldenRecord]
    logs: Dict[str, StandardizationLog]
    #: per-column transformation models (with ``collect_models``): the
    #: run's confirmed knowledge as a persistable by-product.
    models: Dict[str, TransformationModel] = field(default_factory=dict)

    @property
    def groups_confirmed(self) -> int:
        return sum(log.groups_confirmed for log in self.logs.values())

    @property
    def cells_changed(self) -> int:
        return sum(log.cells_changed for log in self.logs.values())


class GoldenRecordCreation:
    """Algorithm 1: per-column standardization, then truth discovery.

    The table is updated **in place** (standardization is the point);
    pass ``table.copy()`` to keep the original.
    """

    def __init__(
        self,
        table: ClusterTable,
        oracle_factory: OracleFactory,
        budget_per_column: int = 100,
        columns: Optional[Sequence[str]] = None,
        fusion: FusionFn = majority.fuse,
        config: Config = DEFAULT_CONFIG,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        collect_models: bool = False,
        dataset_name: str = "",
    ) -> None:
        self.table = table
        self.oracle_factory = oracle_factory
        self.budget_per_column = budget_per_column
        self.columns = tuple(columns) if columns is not None else table.columns
        self.fusion = fusion
        self.config = config
        self.vocabulary = vocabulary
        self.collect_models = collect_models
        self.dataset_name = dataset_name

    def run(self) -> ConsolidationReport:
        logs: Dict[str, StandardizationLog] = {}
        models: Dict[str, TransformationModel] = {}
        for column in self.columns:
            standardizer = Standardizer(
                self.table, column, self.config, self.vocabulary
            )
            oracle = self.oracle_factory(standardizer)
            logs[column] = standardizer.run(oracle, self.budget_per_column)
            if self.collect_models:
                models[column] = build_model(
                    logs[column],
                    column,
                    name=(
                        f"{self.dataset_name}-{column}"
                        if self.dataset_name
                        else column
                    ),
                    config=self.config,
                    vocabulary=self.vocabulary,
                    provenance={
                        "dataset": self.dataset_name,
                        "budget": self.budget_per_column,
                        "source": "GoldenRecordCreation",
                    },
                )
        golden = self._fuse_all()
        return ConsolidationReport(golden, logs, models)

    def _fuse_all(self) -> List[GoldenRecord]:
        per_column: Dict[str, Dict[int, Optional[str]]] = {
            column: golden_records(self.table, column, self.fusion)
            for column in self.columns
        }
        records: List[GoldenRecord] = []
        for ci, cluster in enumerate(self.table.clusters):
            record = GoldenRecord(ci, cluster.key)
            for column in self.columns:
                record.values[column] = per_column[column].get(ci)
            records.append(record)
        return records
