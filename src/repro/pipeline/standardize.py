"""The human-in-the-loop standardization loop (Algorithm 1, lines 2-9).

A :class:`Standardizer` wires together candidate generation, a group
feed (the incremental grouper by default, or a baseline feed), an
oracle, and Section 7.1 application/maintenance.  The per-step callback
lets the evaluation harness snapshot metrics after every confirmed
group, which is exactly the x-axis of Figures 6-8.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Tuple

from ..candidates.generate import generate_candidates
from ..candidates.store import ReplacementStore
from ..config import DEFAULT_CONFIG, Config
from ..core.grouping import Group
from ..core.incremental import IncrementalGrouper
from ..core.replacement import Replacement
from ..core.scoring import global_frequencies
from ..core.terms import DEFAULT_VOCABULARY, TermVocabulary
from ..data.table import ClusterTable
from .oracle import Decision, Oracle, REVERSE


class GroupFeed(Protocol):
    """A producer of replacement groups in presentation order."""

    def next_group(self) -> Optional[Group]: ...

    def remove_replacements(self, dead) -> None: ...


@dataclass(frozen=True)
class AppliedReplacement:
    """One direction-resolved replacement as it was applied.

    ``whole`` / ``token`` record which provenance kinds the replacement
    had *at apply time* — the information a persisted model needs to
    compile value-level and token-level rewrite rules
    (:mod:`repro.serve.engine`) and to replay the run exactly
    (:mod:`repro.serve.replay`).
    """

    replacement: Replacement
    whole: bool
    token: bool
    cells_changed: int


@dataclass
class StepRecord:
    """One presented group and what happened to it."""

    index: int
    group: Group
    decision: Decision
    cells_changed: int
    applied: List[AppliedReplacement] = field(default_factory=list)


@dataclass
class StandardizationLog:
    """Full trace of a standardization run."""

    steps: List[StepRecord] = field(default_factory=list)

    @property
    def groups_confirmed(self) -> int:
        return len(self.steps)

    @property
    def groups_approved(self) -> int:
        return sum(1 for s in self.steps if s.decision.approved)

    @property
    def cells_changed(self) -> int:
        return sum(s.cells_changed for s in self.steps)


class Standardizer:
    """Standardizes the variant values of one column (Algorithm 1)."""

    def __init__(
        self,
        table: ClusterTable,
        column: str,
        config: Config = DEFAULT_CONFIG,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        store: Optional[ReplacementStore] = None,
    ) -> None:
        self.table = table
        self.column = column
        self.config = config
        self.vocabulary = vocabulary
        self.store = store if store is not None else generate_candidates(
            table, column, config
        )

    def default_feed(self) -> IncrementalGrouper:
        """The paper's method: incremental largest-group-first feed."""
        counts: Optional[Counter] = None
        if self.config.constant_match_terms > 0:
            counts = global_frequencies(self.table.column_values(self.column))
        return IncrementalGrouper(
            self.store.replacements(), self.vocabulary, self.config, counts
        )

    def run(
        self,
        oracle: Oracle,
        budget: int,
        feed: Optional[GroupFeed] = None,
        after_step: Optional[Callable[[StepRecord], None]] = None,
    ) -> StandardizationLog:
        """Present up to ``budget`` groups, applying approved ones.

        Every presented group consumes one unit of budget whether or not
        it is approved, matching the paper's "number of groups
        confirmed by a human" axis.
        """
        if feed is None:
            feed = self.default_feed()
        log = StandardizationLog()
        for step_index in range(budget):
            group = feed.next_group()
            if group is None:
                break
            decision = oracle.review(group)
            changed = 0
            applied: List[AppliedReplacement] = []
            if decision.approved:
                changed, applied = self._apply_group_recorded(group, decision)
                feed.remove_replacements(self.store.drain_dead())
            record = StepRecord(step_index, group, decision, changed, applied)
            log.steps.append(record)
            if after_step is not None:
                after_step(record)
        return log

    def apply_group(self, group: Group, decision: Decision) -> int:
        """Apply every member of an approved group in the chosen
        direction; returns the number of cells changed."""
        changed, _ = self._apply_group_recorded(group, decision)
        return changed

    def _apply_group_recorded(
        self, group: Group, decision: Decision
    ) -> "Tuple[int, List[AppliedReplacement]]":
        return apply_group_recorded(self.store, group, decision)


def apply_group_recorded(
    store: ReplacementStore,
    group: Group,
    decision: Decision,
    changed_into: Optional[List] = None,
) -> "Tuple[int, List[AppliedReplacement]]":
    """Apply a group against a store and record the direction-resolved
    replacement sequence with its provenance kinds (model fodder).

    Shared by the one-shot :class:`Standardizer` and the streaming
    :class:`repro.stream.standardizer.IncrementalStandardizer` so both
    paths produce byte-identical :class:`AppliedReplacement` traces.
    ``changed_into`` (when given) collects the rewritten cell refs —
    the incremental golden-record fuser re-fuses exactly the clusters
    those cells live in.
    """
    changed = 0
    applied: List[AppliedReplacement] = []
    for replacement in group.replacements:
        resolved = (
            replacement.reversed()
            if decision.direction == REVERSE
            else replacement
        )
        whole = bool(store.cell_pairs(resolved))
        token = bool(store.token_pairs(resolved))
        cells = store.apply_replacement(resolved)
        applied.append(
            AppliedReplacement(resolved, whole, token, len(cells))
        )
        changed += len(cells)
        if changed_into is not None:
            changed_into.extend(cells)
    return changed, applied
