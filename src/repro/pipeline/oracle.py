"""Human verification oracles (Section 3, Step 3).

The paper's expert skims a group's value pairs and answers one yes/no
question (plus a direction).  :class:`GroundTruthOracle` simulates that
judgment against generator ground truth: a group is approved when the
majority of its pairs are true variant pairs — the human "is not
required to exhaustively check all pairs" and the method "is robust to
small numbers of errors", which the optional ``error_rate`` exercises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from ..align.tokenize import contains_token_run
from ..core.grouping import Group
from ..core.replacement import Replacement
from ..candidates.store import ReplacementStore
from ..data.table import CellRef

FORWARD = "forward"
REVERSE = "reverse"


@dataclass(frozen=True)
class Decision:
    """The reviewer's verdict on one group."""

    approved: bool
    direction: str = FORWARD  # FORWARD | REVERSE


class Oracle(Protocol):
    """Anything that can review a replacement group."""

    def review(self, group: Group) -> Decision: ...


class ApproveAllOracle:
    """Rubber-stamps everything; useful for stress tests."""

    def review(self, group: Group) -> Decision:
        return Decision(True, FORWARD)


class RejectAllOracle:
    """Rejects everything; the no-op upper bound on precision."""

    def review(self, group: Group) -> Decision:
        return Decision(False, FORWARD)


class ConsoleOracle:
    """A real human in the loop: prints each group and reads a verdict.

    Answers: ``y`` approve forward, ``r`` approve reversed, anything
    else rejects.  ``prompt_fn``/``print_fn`` are injectable for
    testing and for embedding in other UIs.

    A closed stdin (``EOFError`` from a piped run that ran out of
    input) or a ``KeyboardInterrupt`` at the prompt does not crash the
    batch: the oracle warns once, then rejects that group and every
    later one, letting the run finish with the verdicts it has.
    Rejections are never cached as approvals, so re-running
    interactively re-asks exactly the unanswered questions.
    """

    def __init__(
        self,
        members_shown: int = 8,
        prompt_fn=input,
        print_fn=print,
    ) -> None:
        self.members_shown = members_shown
        self._prompt = prompt_fn
        self._print = print_fn
        self.reviewed = 0
        self.approved = 0
        #: input is gone (EOF/interrupt); reject without prompting
        self.closed = False

    def review(self, group: Group) -> Decision:
        from ..core.explain import explain_program

        self.reviewed += 1
        if self.closed:
            return Decision(False, FORWARD)
        self._print(f"\nGroup of {group.size} replacements")
        self._print(f"  transformation: {explain_program(group.program)}")
        self._print(f"  program: {group.program.describe()}")
        for member in group.replacements[: self.members_shown]:
            self._print(f"    {member}")
        if group.size > self.members_shown:
            self._print(f"    ... and {group.size - self.members_shown} more")
        try:
            answer = self._prompt(
                "apply? [y = lhs->rhs / r = rhs->lhs / n = reject] "
            ).strip().lower()
        except (EOFError, KeyboardInterrupt):
            self.closed = True
            self._print(
                "\nwarning: console input closed; rejecting this and "
                "all remaining groups"
            )
            return Decision(False, FORWARD)
        if answer == "y":
            self.approved += 1
            return Decision(True, FORWARD)
        if answer == "r":
            self.approved += 1
            return Decision(True, REVERSE)
        return Decision(False, FORWARD)


class GroundTruthOracle:
    """Simulated expert backed by generator ground truth.

    ``canonical`` maps each cell to the canonical string of the entity
    its value denotes; two same-cluster cells are a variant pair iff
    their canonical strings agree.
    """

    def __init__(
        self,
        canonical: Dict[CellRef, str],
        store: ReplacementStore,
        approve_threshold: float = 0.5,
        error_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.canonical = canonical
        self.store = store
        self.approve_threshold = approve_threshold
        self.error_rate = error_rate
        self._rng = random.Random(seed)
        self.reviewed = 0
        self.approved = 0

    def review(self, group: Group) -> Decision:
        """Judge a group the way the paper's expert does: skim the
        listed *value pairs* and approve iff most are true variants.

        Each distinct member replacement contributes one vote (the
        human reads the pair list, not the per-cell provenance), so a
        group that maps several unrelated values onto one target is
        rejected even when its variant members are widely replicated.
        """
        self.reviewed += 1
        variant_members = conflict_members = 0
        toward_rhs = toward_lhs = 0
        for replacement in group.replacements:
            good, bad, rhs_canon, lhs_canon = self._judge(replacement)
            if good + bad == 0:
                continue
            if good > bad:
                variant_members += 1
                if rhs_canon > lhs_canon:
                    toward_rhs += 1
                elif lhs_canon > rhs_canon:
                    toward_lhs += 1
            else:
                conflict_members += 1
        total = variant_members + conflict_members
        approved = total > 0 and variant_members / total > self.approve_threshold
        if self.error_rate > 0 and self._rng.random() < self.error_rate:
            approved = not approved
        direction = FORWARD if toward_rhs >= toward_lhs else REVERSE
        if approved:
            self.approved += 1
        return Decision(approved, direction)

    def _judge(self, replacement: Replacement):
        """Per-replacement tallies: (variant pairs, conflict pairs,
        pairs where rhs is the canonical side, where lhs is).

        Both whole-value and token-level provenance are judged the same
        way the paper's expert reads the pair list: the pair is a
        variant iff its two cells denote the same entity; the canonical
        *side* only informs the replacement direction.
        """
        good = bad = rhs_canon = lhs_canon = 0
        for lhs_cell, rhs_cell in self.store.cell_pairs(replacement):
            ca = self.canonical.get(lhs_cell)
            cb = self.canonical.get(rhs_cell)
            if ca is None or cb is None:
                continue
            if ca == cb:
                good += 1
                if replacement.rhs == cb:
                    rhs_canon += 1
                if replacement.lhs == ca:
                    lhs_canon += 1
            else:
                bad += 1
        for lhs_cell, rhs_cell in self.store.token_pairs(replacement):
            ca = self.canonical.get(lhs_cell)
            cb = self.canonical.get(rhs_cell)
            if ca is None or cb is None:
                continue
            if ca == cb:
                good += 1
                if contains_token_run(ca, replacement.rhs):
                    rhs_canon += 1
                if contains_token_run(ca, replacement.lhs):
                    lhs_canon += 1
            else:
                bad += 1
        return good, bad, rhs_canon, lhs_canon
