"""Human-in-the-loop standardization and golden-record creation."""

from .consolidate import ConsolidationReport, GoldenRecord, GoldenRecordCreation
from .golden import entity_precision, golden_precision, golden_records
from .oracle import (
    ApproveAllOracle,
    Decision,
    FORWARD,
    GroundTruthOracle,
    Oracle,
    REVERSE,
    RejectAllOracle,
)
from .standardize import StandardizationLog, Standardizer, StepRecord
