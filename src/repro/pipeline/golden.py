"""Golden-record creation and its precision (Algorithm 1 line 10,
Section 8.3 / Table 8)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..data.table import ClusterTable

FusionFn = Callable[[ClusterTable, str], Dict[int, Optional[str]]]


def golden_records(
    table: ClusterTable, column: str, fuse: FusionFn
) -> Dict[int, Optional[str]]:
    """Golden value per cluster using the given fusion method."""
    return fuse(table, column)


def entity_precision(
    table: ClusterTable,
    column: str,
    golden: Dict[int, Optional[str]],
    canonical_by_cell,
    truth: Dict[int, str],
) -> float:
    """Entity-level golden-record precision (the paper's Table 8 rule:
    "if they refer to the same entity, we increase TP").

    A produced golden value is correct iff it *denotes* the cluster's
    true entity — i.e. some cell currently holding that value has the
    expected canonical form — even when its surface form is a variant
    rendering.  Clusters where fusion produced nothing (MC ties) count
    as wrong, mirroring the paper's accounting.
    """
    correct = 0
    total = 0
    for cluster, expected in truth.items():
        total += 1
        value = golden.get(cluster)
        if value is None:
            continue
        for cell in table.cluster_cells(cluster, column):
            if (
                table.value(cell) == value
                and canonical_by_cell.get(cell) == expected
            ):
                correct += 1
                break
    return correct / total if total else 0.0


def golden_precision(
    golden: Dict[int, Optional[str]],
    truth: Dict[int, str],
    count_missing_as_wrong: bool = True,
) -> float:
    """Fraction of clusters whose golden value matches ground truth.

    The paper's MC "could not produce a golden value" on frequency
    ties; by default such clusters count as wrong (TP never increases),
    which matches the paper's TP/(TP+FP) accounting where every
    ground-truth cluster is compared (Section 8.3).
    """
    tp = 0
    considered = 0
    for cluster, expected in truth.items():
        produced = golden.get(cluster)
        if produced is None and not count_missing_as_wrong:
            continue
        considered += 1
        if produced is not None and produced == expected:
            tp += 1
    return tp / considered if considered else 0.0
