"""Global configuration for the transformation-learning stack.

All knobs the paper exposes (max path length, affix functions on/off,
structure refinement, static-order truncation, sampling) live here so
that experiments can toggle them without touching algorithm code.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Config:
    """Tuning parameters for graph construction and grouping.

    Defaults follow the paper: affix functions enabled (Appendix D),
    structure refinement enabled (Section 7.2), and a maximum pivot-path
    length of 6 (Section 8.2).
    """

    #: Include the ``Prefix`` / ``Suffix`` string functions (Appendix D).
    use_affix: bool = True

    #: Pre-partition candidates by structure signature (Section 7.2).
    use_structure: bool = True

    #: Maximum number of string functions in a searched path (theta in
    #: Appendix E).  The paper uses 6 in all experiments.
    max_path_length: int = 6

    #: Static-order truncation: keep at most this many position
    #: functions per position in the input string (Appendix E).
    max_position_functions: int = 2

    #: Cap on the number of occurrences of an output substring in the
    #: input string for which SubStr labels are generated.
    max_occurrences_per_edge: int = 2

    #: Cap on SubStr labels emitted per (edge, occurrence).
    max_substr_labels_per_edge: int = 8

    #: Strings longer than this never get a transformation graph (their
    #: replacements fall back to singleton groups).  Guards the
    #: O(|s|^2 |t|^2) construction.
    max_string_length: int = 80

    #: Restrict position functions to term-match boundaries of the
    #: input string (strict Appendix E static order); mid-token cuts
    #: remain expressible through the affix functions.
    boundary_positions_only: bool = True

    #: Emit ``ConstantStr`` labels only on edges aligned with the
    #: output string's term-unit boundaries (the Appendix E
    #: constant-string static order: per-character constants score
    #: worst and are dropped).  The whole-string constant label is
    #: always aligned, so every replacement keeps >= 1 consistent
    #: program.
    aligned_constants: bool = True

    #: Appendix E's frequency-scored constants: inside a structure
    #: group, alphanumeric constant content is admitted only when it
    #: recurs across members (``freqStruc`` high); separators always
    #: pass and the whole-target constant is always kept.
    scored_constants: bool = True

    #: A token is 'recurring' when it appears in at least this fraction
    #: of a structure group's targets (and in at least 2 of them).
    constant_token_min_share: float = 0.25

    #: Number of frequency-scored constant-string MatchPos terms to mine
    #: per structure group (Appendix E).  0 disables constant terms.
    constant_match_terms: int = 0

    #: Optional random-sampling size for pivot search acceleration
    #: (Appendix E).  ``None`` disables sampling.
    sample_size: Optional[int] = None

    #: Hard cap on DFS expansions per pivot search; past it the best
    #: path found so far is returned.  Bounded-work acceleration in the
    #: spirit of Appendix E; set very high to approximate exact search.
    max_search_expansions: int = 2000

    #: Enable local-threshold early termination (Section 5.2).
    local_threshold: bool = True

    #: Enable global-threshold early termination (Section 5.2).
    global_threshold: bool = True

    #: Generate token-level candidates via LCS alignment (Appendix A).
    token_level_candidates: bool = True

    #: Generate token-level candidates via Damerau-Levenshtein alignment
    #: as well (Appendix A mentions this as an alternative source).
    damerau_candidates: bool = False

    #: Random seed used anywhere randomness is permitted (sampling).
    seed: int = 0

    #: Extra literal strings always admitted as MatchPos terms.
    extra_constant_terms: Tuple[str, ...] = field(default_factory=tuple)

    def without_early_termination(self) -> "Config":
        """Variant used by the OneShot baseline in Figure 9."""
        return replace(self, local_threshold=False, global_threshold=False)

    def with_early_termination(self) -> "Config":
        """Variant used by the EarlyTerm method in Figure 9."""
        return replace(self, local_threshold=True, global_threshold=True)

    def without_affix(self) -> "Config":
        """Variant used by the NoAffix method in Figure 10."""
        return replace(self, use_affix=False)

    def to_dict(self) -> Dict:
        """JSON-safe rendering (tuples become lists)."""
        payload = asdict(self)
        payload["extra_constant_terms"] = list(self.extra_constant_terms)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Config":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so old
        models keep loading after new knobs are added."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        if "extra_constant_terms" in kwargs:
            kwargs["extra_constant_terms"] = tuple(
                kwargs["extra_constant_terms"]
            )
        return cls(**kwargs)


#: Shared default configuration (paper settings).
DEFAULT_CONFIG = Config()
