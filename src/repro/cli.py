"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats`` — print the Table 6 row for a synthetic dataset;
* ``groups`` — print the top replacement groups the unsupervised
  method finds on a dataset column (the Table 4 experience);
* ``standardize`` — run the full human-in-the-loop standardization
  with the ground-truth oracle and report precision / recall / MCC;
* ``consolidate`` — Algorithm 1 end to end: standardize, fuse, report
  golden-record precision before/after.

All commands operate on the built-in synthetic datasets (``--dataset``
one of ``Address``, ``AuthorList``, ``JournalTitle``); ``--scale``
controls their size.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import Config
from .data.stats import dataset_stats
from .datagen import DATASETS
from .evaluation.experiment import run_consolidation, run_method_series
from .pipeline.oracle import GroundTruthOracle
from .pipeline.standardize import Standardizer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unsupervised string transformation learning "
        "(Deng et al., ICDE 2019) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dataset",
            choices=sorted(DATASETS),
            default="Address",
            help="synthetic dataset to operate on",
        )
        p.add_argument("--scale", type=float, default=0.15)
        p.add_argument("--seed", type=int, default=None)

    stats = sub.add_parser("stats", help="Table 6 row for a dataset")
    add_common(stats)

    groups = sub.add_parser("groups", help="show the top groups found")
    add_common(groups)
    groups.add_argument("--top", type=int, default=10)
    groups.add_argument("--members", type=int, default=4)

    standardize = sub.add_parser(
        "standardize", help="run standardization and report metrics"
    )
    add_common(standardize)
    standardize.add_argument("--budget", type=int, default=100)
    standardize.add_argument("--sample-size", type=int, default=500)
    standardize.add_argument("--error-rate", type=float, default=0.0)

    consolidate = sub.add_parser(
        "consolidate", help="golden-record precision before/after"
    )
    add_common(consolidate)
    consolidate.add_argument("--budget", type=int, default=100)
    consolidate.add_argument(
        "--fusion",
        choices=("majority", "truthfinder", "accu"),
        default="majority",
    )
    return parser


def _make_dataset(args):
    maker = DATASETS[args.dataset]
    if args.seed is not None:
        return maker(scale=args.scale, seed=args.seed)
    return maker(scale=args.scale)


def cmd_stats(args) -> int:
    dataset = _make_dataset(args)
    stats = dataset_stats(dataset.table, dataset.column, dataset.labeler())
    print(f"dataset: {dataset.name} ({dataset.table})")
    print(
        f"cluster size avg/min/max: {stats.avg_cluster_size:.1f}"
        f"/{stats.min_cluster_size}/{stats.max_cluster_size}"
    )
    print(f"distinct value pairs: {stats.distinct_value_pairs}")
    print(
        f"variant pairs: {stats.variant_pair_pct:.1%}   "
        f"conflict pairs: {stats.conflict_pair_pct:.1%}"
    )
    return 0


def cmd_groups(args) -> int:
    dataset = _make_dataset(args)
    standardizer = Standardizer(dataset.fresh_table(), dataset.column)
    feed = standardizer.default_feed()
    for rank in range(1, args.top + 1):
        group = feed.next_group()
        if group is None:
            break
        print(f"Group {rank} - {group.size} replacements")
        print(f"  program: {group.program.describe()}")
        for member in group.replacements[: args.members]:
            print(f"    {member}")
        if group.size > args.members:
            print(f"    ... and {group.size - args.members} more")
        print()
    return 0


def cmd_standardize(args) -> int:
    dataset = _make_dataset(args)
    series = run_method_series(
        dataset,
        "group",
        budget=args.budget,
        sample_size=args.sample_size,
        oracle_error_rate=args.error_rate,
    )
    for point in series.points:
        if point.confirmed % max(1, args.budget // 5) == 0:
            print(
                f"{point.confirmed:4d} groups  precision={point.precision:.3f}  "
                f"recall={point.recall:.3f}  mcc={point.mcc:.3f}"
            )
    final = series.final()
    print(
        f"final ({final.confirmed} groups): precision={final.precision:.3f} "
        f"recall={final.recall:.3f} mcc={final.mcc:.3f}"
    )
    return 0


def cmd_consolidate(args) -> int:
    dataset = _make_dataset(args)
    before, after = run_consolidation(
        dataset, budget=args.budget, fusion=args.fusion
    )
    print(f"{args.fusion} golden-record precision (entity-level):")
    print(f"  before standardization: {before.precision:.3f}")
    print(f"  after  standardization: {after.precision:.3f}")
    return 0


COMMANDS = {
    "stats": cmd_stats,
    "groups": cmd_groups,
    "standardize": cmd_standardize,
    "consolidate": cmd_consolidate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
