"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats`` — print the Table 6 row for a synthetic dataset;
* ``groups`` — print the top replacement groups the unsupervised
  method finds on a dataset column (the Table 4 experience);
* ``standardize`` — run the full human-in-the-loop standardization
  with the ground-truth oracle and report precision / recall / MCC;
* ``consolidate`` — Algorithm 1 end to end: standardize, fuse, report
  golden-record precision before/after;
* ``learn`` — run standardization and persist what it learned as a
  transformation model (JSON file or versioned registry);
* ``apply`` — load a model and standardize a fresh table or CSV with
  the compiled engine / exact replayer — no re-learning, no human;
* ``serve`` — a long-running JSON-lines worker answering transform
  requests on stdin (one JSON request per line);
* ``stream`` — incremental consolidation over a record stream: batches
  are folded into persistent cluster / candidate / decision state, new
  confirmations publish fresh model versions with hot engine reload,
  and repeated variation never costs a second oracle question.  With
  ``--columns a,b,c`` the stream turns multi-column: one shared
  resolver, one incremental standardizer per column, golden records
  fused per batch (``--fusion``), one atomic model bundle published
  per confirming batch, and ``--golden-out`` dumping the final golden
  records as JSON lines.  ``--question-order yield`` spends the oracle
  budget by expected cells-fixed-per-question instead of discovery
  order (see docs/oracle-scheduling.md);
* ``decisions`` — offline maintenance of the durable verdict logs:
  ``compact`` drops lines replay ignores, ``diff`` compares two logs
  by effective verdicts, ``audit`` reports health (duplicates,
  conflicts, asked vs inferred, tail damage).

Synthetic-data commands operate on the built-in datasets (``--dataset``
one of ``Address``, ``AuthorList``, ``JournalTitle``); ``--scale``
controls their size.  ``--seed`` defaults to *unset*: the run then
picks a random seed and **prints it**, so any logged run can be
reproduced by passing the printed value back.
"""

from __future__ import annotations

import argparse
import json
import random
import re
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from .config import Config
from .resolution.blocking import (
    BLOCKING_MODES,
    derive_lsh_params,
    make_block_keys,
)
from .data.io import (
    read_csv_clusters,
    read_csv_records,
    write_csv_clusters,
    write_csv_records,
)
from .data.stats import dataset_stats
from .datagen import DATASETS
from .evaluation.experiment import run_consolidation, run_method_series
from .pipeline.oracle import GroundTruthOracle
from .pipeline.standardize import Standardizer
from .serve import (
    ApplyEngine,
    ModelRegistry,
    ModelReplayer,
    TransformationModel,
    build_model,
    serve_forever,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unsupervised string transformation learning "
        "(Deng et al., ICDE 2019) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dataset",
            choices=sorted(DATASETS),
            default="Address",
            help="synthetic dataset to operate on",
        )
        p.add_argument("--scale", type=float, default=0.15)
        p.add_argument("--seed", type=int, default=None)

    stats = sub.add_parser(
        "stats",
        help="Table 6 row for a dataset, or summarize a recorded "
        "metrics file (--metrics)",
    )
    add_common(stats)
    stats.add_argument(
        "--metrics",
        help="summarize this JSON-lines metrics file (written by "
        "`repro stream --metrics`) instead of a dataset: per-stage "
        "runtime breakdown, oracle questions per column, apply-tier "
        "hit ratios",
    )
    stats.add_argument(
        "--check",
        action="store_true",
        help="with --metrics: validate every row against the "
        "documented schema and exit non-zero on violations (the CI "
        "perf-smoke gate)",
    )
    stats.add_argument(
        "--trace-tree",
        action="store_true",
        help="with --metrics: render the merged span forest (parent "
        "stages with their re-attached per-shard worker spans) as a "
        "tree with per-node count / total / self time; needs a "
        "recording made with --trace",
    )

    groups = sub.add_parser("groups", help="show the top groups found")
    add_common(groups)
    groups.add_argument("--top", type=int, default=10)
    groups.add_argument("--members", type=int, default=4)

    standardize = sub.add_parser(
        "standardize", help="run standardization and report metrics"
    )
    add_common(standardize)
    standardize.add_argument("--budget", type=int, default=100)
    standardize.add_argument("--sample-size", type=int, default=500)
    standardize.add_argument("--error-rate", type=float, default=0.0)

    consolidate = sub.add_parser(
        "consolidate", help="golden-record precision before/after"
    )
    add_common(consolidate)
    consolidate.add_argument("--budget", type=int, default=100)
    consolidate.add_argument(
        "--fusion",
        choices=("majority", "truthfinder", "accu"),
        default="majority",
    )

    def add_model_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", help="path of a saved model file")
        p.add_argument("--registry", help="model-registry root directory")
        p.add_argument("--name", help="model name inside the registry")
        p.add_argument(
            "--model-version",
            type=int,
            default=None,
            help="registry version to load (default: latest)",
        )

    learn = sub.add_parser(
        "learn", help="standardize and persist the learned model"
    )
    add_common(learn)
    learn.add_argument("--budget", type=int, default=100)
    learn.add_argument("--error-rate", type=float, default=0.0)
    learn.add_argument(
        "--out",
        help="model file to write (default: <dataset>.model.json; "
        "ignored with --registry)",
    )
    learn.add_argument("--registry", help="save into this registry instead")
    learn.add_argument("--name", help="model name (default: dataset name)")

    apply_p = sub.add_parser(
        "apply", help="standardize fresh data with a saved model"
    )
    add_common(apply_p)
    add_model_source(apply_p)
    apply_p.add_argument(
        "--input",
        help="CSV file to standardize instead of a synthetic dataset",
    )
    apply_p.add_argument(
        "--column", help="column to standardize (default: model's column)"
    )
    apply_p.add_argument(
        "--key",
        help="cluster the CSV by this key column and replay with "
        "cluster provenance (exact Section 7.1 semantics); without it "
        "the compiled value engine is used",
    )
    apply_p.add_argument("--out", help="write the standardized data here")
    apply_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard large batches across this many processes",
    )
    apply_p.add_argument(
        "--no-programs",
        action="store_true",
        help="disable program generalization to unseen values",
    )
    apply_p.add_argument(
        "--stats",
        action="store_true",
        help="print the engine's path counters as JSON "
        "(cache hits, exact / program / token hits, misses)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="JSON-lines transform worker: stdin/stdout by default, "
        "or a concurrent asyncio TCP service with --listen",
    )
    add_model_source(serve_p)
    serve_p.add_argument("--cache-size", type=int, default=65536)
    serve_p.add_argument("--no-programs", action="store_true")
    serve_p.add_argument(
        "--listen",
        help="serve JSON-over-TCP on HOST:PORT instead of stdin/stdout "
        "(port 0 picks an ephemeral port, announced on stderr)",
    )
    serve_p.add_argument(
        "--bundle",
        action="store_true",
        help="the registry/model holds multi-column bundles "
        "(record-level apply; golden-record lookups)",
    )
    serve_p.add_argument(
        "--follow",
        action="store_true",
        help="poll the registry and hot-swap newly published versions "
        "without dropping in-flight requests (needs --registry --name)",
    )
    serve_p.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        help="--follow poll cadence in seconds",
    )
    serve_p.add_argument(
        "--ttl",
        type=float,
        default=5.0,
        help="compiled-model cache TTL: max staleness before the "
        "registry is re-consulted on the request path",
    )
    serve_p.add_argument(
        "--golden-log",
        help="golden delta log to tail for lookup/subscribe ops "
        "(default with --bundle --registry: the stream's "
        "golden-deltas.jsonl next to the bundle)",
    )
    serve_p.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="close connections idle longer than this many seconds "
        "(0 disables)",
    )
    serve_p.add_argument(
        "--max-request-bytes",
        type=int,
        default=1 << 20,
        help="reject request lines larger than this",
    )
    serve_p.add_argument(
        "--metrics",
        help="record serve.* metrics/spans to this JSON-lines file",
    )
    serve_p.add_argument(
        "--snapshot-interval",
        type=float,
        default=None,
        help="with --metrics: append a metrics snapshot row every "
        "this many seconds (default: only on shutdown)",
    )

    stream_p = sub.add_parser(
        "stream",
        help="incremental consolidation over record batches "
        "(no full relearn per batch)",
    )
    add_common(stream_p)
    stream_p.add_argument(
        "--batches", type=int, default=5, help="number of arrival batches"
    )
    stream_p.add_argument(
        "--columns",
        help="comma-separated column list (e.g. address,authors,title) "
        "switching to multi-column golden-record mode: one shared "
        "resolver, one incremental standardizer per column, golden "
        "records fused per batch, and one atomic model bundle "
        "published per confirming batch (--dataset is ignored; the "
        "multi-column golden_stream generator supplies the data)",
    )
    stream_p.add_argument(
        "--golden-out",
        help="write the final golden records as JSON lines here "
        "(multi-column mode only)",
    )
    stream_p.add_argument(
        "--fusion",
        choices=("majority", "truthfinder", "accu"),
        default=None,
        help="truth-discovery method for golden records (multi-column "
        "mode; default majority, which fuses incrementally per "
        "touched cluster — the global methods re-fuse every live "
        "cluster per batch)",
    )
    stream_p.add_argument(
        "--budget",
        type=int,
        default=50,
        help="oracle questions allowed per batch (novel groups only)",
    )
    stream_p.add_argument(
        "--question-order",
        choices=("discovery", "yield"),
        default="discovery",
        help="how the oracle budget is spent: 'discovery' (default) "
        "asks in feed order; 'yield' ranks questions by expected "
        "cells-fixed-per-question, pools one budget across --columns "
        "by marginal yield, and settles transitively-proven verdicts "
        "without asking (logged with source 'inferred'); both orders "
        "are byte-identical at any --shards value",
    )
    stream_p.add_argument("--error-rate", type=float, default=0.0)
    stream_p.add_argument(
        "--registry",
        help="publish model versions into this registry directory",
    )
    stream_p.add_argument("--name", help="model name (default: dataset)")
    stream_p.add_argument(
        "--no-engine",
        action="store_true",
        help="disable the serve fast path (provenance-exact mode)",
    )
    stream_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the streaming learner across this many worker "
        "processes (matching, candidate alignment, grouping feed); "
        "published models and question counts are identical at any "
        "shard count",
    )
    stream_p.add_argument(
        "--blocking",
        choices=("key",) + BLOCKING_MODES,
        default="key",
        help="how arrivals are resolved into clusters: 'key' clusters "
        "by the synthetic entity key (default); 'token', 'lsh', and "
        "'token+lsh' switch to blocked similarity matching on the "
        "consolidated column — 'lsh' blocks by banded MinHash "
        "signatures over character shingles, which keeps blocks "
        "near-duplicate-sized on high-cardinality vocabularies",
    )
    stream_p.add_argument(
        "--lsh-bands",
        type=int,
        default=None,
        help="LSH band count (more bands = higher recall, more keys); "
        "default: derived from --similarity-threshold via the S-curve",
    )
    stream_p.add_argument(
        "--lsh-rows",
        type=int,
        default=None,
        help="signature rows per LSH band (more rows = stricter "
        "collisions); default: derived from --similarity-threshold "
        "via the S-curve",
    )
    stream_p.add_argument(
        "--lsh-shingle",
        type=int,
        default=3,
        help="character shingle width the MinHash signature is "
        "computed over",
    )
    stream_p.add_argument(
        "--similarity-threshold",
        type=float,
        default=0.8,
        help="similarity-mode match threshold (ignored with "
        "--blocking key)",
    )
    stream_p.add_argument(
        "--block-retention",
        type=int,
        default=None,
        help="similarity mode: keep only the newest N members per "
        "block (rotation), bounding per-arrival matching cost "
        "(default: unbounded)",
    )
    stream_p.add_argument(
        "--stats",
        action="store_true",
        help="print one machine-readable JSON line of counters per "
        "batch (candidate pairs, values/bytes shipped to shards, "
        "questions, reuse)",
    )
    stream_p.add_argument(
        "--metrics",
        help="record the run's observability stream (batch rows, "
        "events, a final metrics snapshot) to this JSON-lines file; "
        "summarize it later with `repro stats --metrics FILE`",
    )
    stream_p.add_argument(
        "--trace",
        action="store_true",
        help="also record one span row per timed stage — including "
        "shard-worker spans re-attached under their batch parent — "
        "(requires --metrics; render with `repro stats --trace-tree`)",
    )
    stream_p.add_argument(
        "--profile",
        metavar="OUT",
        help="sample the main thread's stack (~200 Hz) for the whole "
        "run and write span-attributed collapsed-stack rows to this "
        "JSON-lines file (flamegraph-ready)",
    )
    stream_p.add_argument(
        "--decision-log",
        help="JSON-lines file for durable oracle verdicts (default: "
        "<registry>/<name>/decisions.jsonl when --registry is given); "
        "with --columns it names the *directory* holding the "
        "per-column decisions-<column>.jsonl logs",
    )
    stream_p.add_argument(
        "--no-decision-log",
        action="store_true",
        help="keep oracle verdicts in memory only (a restarted stream "
        "will re-ask)",
    )
    stream_p.add_argument(
        "--fresh",
        action="store_true",
        help="ignore existing registry state instead of resuming from "
        "the latest published model; an existing decision log is "
        "archived (*.pre-fresh-N), not replayed",
    )
    stream_p.add_argument(
        "--drift-threshold",
        type=float,
        default=None,
        help="unmatched-rate above which a deeper relearn triggers "
        "(default: drift monitoring off)",
    )
    stream_p.add_argument(
        "--drift-window",
        type=int,
        default=5,
        help="batches in the drift monitor's sliding window",
    )

    decisions_p = sub.add_parser(
        "decisions",
        help="inspect and maintain durable oracle-verdict logs "
        "(decisions.jsonl): compact duplicates, diff two logs, audit "
        "health",
    )
    decisions_sub = decisions_p.add_subparsers(
        dest="decisions_command", required=True
    )
    dec_compact = decisions_sub.add_parser(
        "compact",
        help="drop lines replay ignores (orientation duplicates and "
        "exact repeats; first verdict per pair wins) — replaying the "
        "compacted log is byte-for-byte equivalent",
    )
    dec_compact.add_argument("log", help="the decisions.jsonl file")
    dec_compact.add_argument(
        "--write",
        action="store_true",
        help="rewrite the log in place (the original is kept as "
        "<log>.pre-compact); default is a dry run printing what would "
        "be dropped",
    )
    dec_diff = decisions_sub.add_parser(
        "diff",
        help="compare two logs by their effective verdicts (first per "
        "pair, either orientation); exits 1 when they differ",
    )
    dec_diff.add_argument("log_a", help="first decisions.jsonl")
    dec_diff.add_argument("log_b", help="second decisions.jsonl")
    dec_audit = decisions_sub.add_parser(
        "audit",
        help="health report: effective verdicts, duplicate and "
        "conflicting lines, asked vs inferred split, tail damage; "
        "exits 1 on conflicts or damage",
    )
    dec_audit.add_argument("log", help="the decisions.jsonl file")
    dec_audit.add_argument(
        "--json",
        action="store_true",
        help="emit the report as one JSON object instead of text",
    )

    top_p = sub.add_parser(
        "top",
        help="live terminal monitor: tail a --metrics JSON-lines file "
        "and render per-stage p50/p95/p99, shard busy fractions, "
        "drift events, and the questions-asked rate, refreshing "
        "in place",
    )
    top_p.add_argument(
        "--metrics",
        required=True,
        help="the JSON-lines file a concurrent `repro stream "
        "--metrics` run is appending to",
    )
    top_p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between refreshes",
    )
    top_p.add_argument(
        "--once",
        action="store_true",
        help="render one plain frame (no ANSI repaint) and exit — the "
        "scriptable form",
    )
    top_p.add_argument(
        "--refreshes",
        type=int,
        default=None,
        help="exit after this many repaints (default: run until `q` "
        "or Ctrl-C)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="perf-trajectory gates over the machine-readable BENCH "
        "history in benchmarks/results/",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="compare the latest row of every baselined series "
        "against the committed baseline; exit non-zero on regression "
        "(the CI perf gate)",
    )
    bench_check.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory holding the BENCH_*.json history",
    )
    bench_check.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        help="committed baseline file (write one with `repro bench "
        "baseline --write`)",
    )
    bench_check.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="multiplicative tolerance: a lower-is-better series "
        "fails above baseline*T, a higher-is-better one below "
        "baseline/T",
    )
    bench_base = bench_sub.add_parser(
        "baseline",
        help="compute the per-series medians (and direction) from the "
        "recorded history; --write commits them as the reference",
    )
    bench_base.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory holding the BENCH_*.json history",
    )
    bench_base.add_argument(
        "--max-spread",
        type=float,
        default=4.0,
        help="exclude series whose history already varies by more "
        "than this factor (too noisy to gate)",
    )
    bench_base.add_argument(
        "--write",
        nargs="?",
        const="benchmarks/baseline.json",
        default=None,
        metavar="PATH",
        help="write the baseline file (default path "
        "benchmarks/baseline.json when given without a value)",
    )
    return parser


def _resolve_seed(args) -> int:
    """The run's seed; unseeded runs pick one and *print* it so the
    exact run can be reproduced from its logs."""
    if args.seed is None:
        args.seed = random.SystemRandom().randrange(2**31)
        print(
            f"seed: {args.seed} (picked at random; rerun with "
            f"--seed {args.seed} to reproduce)"
        )
    return args.seed


def _make_dataset(args):
    maker = DATASETS[args.dataset]
    return maker(scale=args.scale, seed=_resolve_seed(args))


def _cmd_stats_metrics(args) -> int:
    """``repro stats --metrics FILE``: summarize (and optionally
    schema-check or trace-tree-render) a recorded observability
    stream."""
    from .obs.summary import (
        format_summary,
        format_trace_tree,
        iter_rows,
        summarize,
        validate_rows,
    )

    try:
        rows = list(iter_rows(args.metrics))
    except FileNotFoundError:
        raise SystemExit(f"error: no such metrics file: {args.metrics}")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.check:
        problems = validate_rows(rows)
        if problems:
            for problem in problems:
                print(f"schema violation: {problem}", file=sys.stderr)
            print(
                f"{args.metrics}: {len(problems)} schema violation(s) "
                f"in {len(rows)} rows",
                file=sys.stderr,
            )
            return 1
        print(f"{args.metrics}: {len(rows)} rows, schema OK")
    if args.trace_tree:
        print(format_trace_tree(rows))
        return 0
    print(format_summary(summarize(rows)))
    return 0


def cmd_stats(args) -> int:
    if args.metrics:
        return _cmd_stats_metrics(args)
    if args.check:
        raise SystemExit("error: --check requires --metrics FILE")
    if args.trace_tree:
        raise SystemExit("error: --trace-tree requires --metrics FILE")
    dataset = _make_dataset(args)
    stats = dataset_stats(dataset.table, dataset.column, dataset.labeler())
    print(f"dataset: {dataset.name} ({dataset.table})")
    print(
        f"cluster size avg/min/max: {stats.avg_cluster_size:.1f}"
        f"/{stats.min_cluster_size}/{stats.max_cluster_size}"
    )
    print(f"distinct value pairs: {stats.distinct_value_pairs}")
    print(
        f"variant pairs: {stats.variant_pair_pct:.1%}   "
        f"conflict pairs: {stats.conflict_pair_pct:.1%}"
    )
    return 0


def cmd_groups(args) -> int:
    dataset = _make_dataset(args)
    standardizer = Standardizer(dataset.fresh_table(), dataset.column)
    feed = standardizer.default_feed()
    for rank in range(1, args.top + 1):
        group = feed.next_group()
        if group is None:
            break
        print(f"Group {rank} - {group.size} replacements")
        print(f"  program: {group.program.describe()}")
        for member in group.replacements[: args.members]:
            print(f"    {member}")
        if group.size > args.members:
            print(f"    ... and {group.size - args.members} more")
        print()
    return 0


def cmd_standardize(args) -> int:
    dataset = _make_dataset(args)
    series = run_method_series(
        dataset,
        "group",
        budget=args.budget,
        sample_size=args.sample_size,
        oracle_error_rate=args.error_rate,
    )
    for point in series.points:
        if point.confirmed % max(1, args.budget // 5) == 0:
            print(
                f"{point.confirmed:4d} groups  precision={point.precision:.3f}  "
                f"recall={point.recall:.3f}  mcc={point.mcc:.3f}"
            )
    final = series.final()
    print(
        f"final ({final.confirmed} groups): precision={final.precision:.3f} "
        f"recall={final.recall:.3f} mcc={final.mcc:.3f}"
    )
    return 0


def cmd_consolidate(args) -> int:
    dataset = _make_dataset(args)
    before, after = run_consolidation(
        dataset, budget=args.budget, fusion=args.fusion
    )
    print(f"{args.fusion} golden-record precision (entity-level):")
    print(f"  before standardization: {before.precision:.3f}")
    print(f"  after  standardization: {after.precision:.3f}")
    return 0


def _load_model_with_index(args):
    """``(model, precompiled index or None)`` from the CLI's model
    flags.

    Registry loads come through
    :meth:`~repro.serve.registry.ModelRegistry.load_with_index`, so a
    sidecar written at publish time spares the consumer the model
    recompilation; ``--model FILE`` loads look for the sidecar next to
    the file.  A missing/stale index is simply ``None`` — engines then
    compile from the model exactly as before.
    """
    from .serve import try_load_index

    try:
        if args.model:
            model = TransformationModel.load(args.model)
            return model, try_load_index(args.model, model)
        if args.registry and args.name:
            return ModelRegistry(args.registry).load_with_index(
                args.name, args.model_version
            )
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    except (ValueError, KeyError, re.error) as exc:
        raise SystemExit(f"error: cannot load model: {exc}")
    raise SystemExit(
        "error: pass --model FILE, or --registry DIR with --name NAME"
    )


def cmd_learn(args) -> int:
    dataset = _make_dataset(args)
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(
        dataset.canonical,
        standardizer.store,
        error_rate=args.error_rate,
        seed=args.seed,
    )
    start = time.perf_counter()
    log = standardizer.run(oracle, args.budget)
    elapsed = time.perf_counter() - start
    model = build_model(
        log,
        dataset.column,
        name=args.name or args.dataset,
        config=standardizer.config,
        vocabulary=standardizer.vocabulary,
        provenance={
            "dataset": args.dataset,
            "scale": args.scale,
            "seed": args.seed,
            "budget": args.budget,
            "oracle": "ground_truth",
            "oracle_error_rate": args.error_rate,
            "learn_seconds": elapsed,
        },
    )
    if args.registry:
        path = ModelRegistry(args.registry).save(model, args.name)
    else:
        path = model.save(args.out or f"{args.dataset.lower()}.model.json")
    print(
        f"learned {log.groups_approved}/{log.groups_confirmed} groups "
        f"({log.cells_changed} cells changed) in {elapsed:.2f}s"
    )
    print(f"model written: {path}")
    return 0


def cmd_apply(args) -> int:
    model, index = _load_model_with_index(args)
    column = args.column or model.column
    start = time.perf_counter()
    if args.input and not args.key:
        # Flat CSV: the compiled O(N) value engine.
        records = read_csv_records(args.input)
        engine = ApplyEngine(
            model,
            use_programs=not args.no_programs,
            precompiled=index,
        )
        values = [r.values.get(column, "") for r in records]
        outputs = engine.apply_values(values, workers=args.workers)
        changed = 0
        for record, out in zip(records, outputs):
            if record.values.get(column, "") != out:
                record.values[column] = out
                changed += 1
        elapsed = time.perf_counter() - start
        rows = len(records)
        if args.out:
            write_csv_records(records, args.out)
            print(f"standardized CSV written: {args.out}")
        hits = engine.stats()
        if hits.sharded_values:
            # Per-rule counters live in the worker processes and are
            # not merged back; don't print misleading zeros.
            print(
                f"engine: {hits.sharded_values} unique values sharded "
                f"across {args.workers} workers"
            )
        else:
            print(
                f"engine: exact={hits.exact_hits} "
                f"program={hits.program_hits} "
                f"token={hits.token_hits} untouched={hits.misses}"
            )
        if args.stats:
            payload = hits.as_dict()
            if hits.sharded_values:
                # Per-path counters live in the worker processes and
                # are not merged back; null them rather than emitting
                # false zeros for a run that had hits.
                for key in (
                    "exact_hits",
                    "program_hits",
                    "token_hits",
                    "misses",
                    "cache_hits",
                ):
                    payload[key] = None
            print("stats: " + json.dumps(payload, sort_keys=True))
    else:
        # Clustered input: provenance-aware replay (exact semantics).
        if args.stats:
            print(
                "note: --stats reports value-engine counters; clustered "
                "input replays with provenance semantics instead",
                file=sys.stderr,
            )
        if args.workers or args.no_programs:
            print(
                "note: --workers/--no-programs only affect the value "
                "engine; clustered input replays with exact provenance "
                "semantics (single process, no programs)",
                file=sys.stderr,
            )
        if args.input:
            table = read_csv_clusters(args.input, args.key)
        else:
            table = _make_dataset(args).fresh_table()
        report = ModelReplayer(model).apply(table, column)
        elapsed = time.perf_counter() - start
        rows = table.num_records
        changed = len(dict.fromkeys(report.changed_cells))
        if args.out:
            write_csv_clusters(table, args.out)
            print(f"standardized clusters written: {args.out}")
    rate = rows / elapsed if elapsed > 0 else float("inf")
    print(
        f"applied {model.groups_confirmed}-group model to {rows} rows in "
        f"{elapsed:.3f}s ({rate:,.0f} rows/s); {changed} cells changed"
    )
    return 0


def _cmd_serve_network(args) -> int:
    """``repro serve --listen``: the concurrent asyncio TCP service."""
    from .obs import NULL_OBS, JsonlSink, Obs
    from .serve.bundle import BundleRegistry, ModelBundle
    from .serve.registry import slugify
    from .serve.server import (
        GoldenTable,
        ModelSource,
        ServeServer,
        parse_listen,
        run_server,
    )

    try:
        host, port = parse_listen(args.listen)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.follow and not (args.registry and args.name):
        raise SystemExit(
            "error: --follow needs --registry DIR and --name NAME"
        )

    obs = None
    if args.metrics:
        obs = Obs(sink=JsonlSink(args.metrics))
        obs.emit(
            {
                "type": "meta",
                "command": "serve",
                "listen": args.listen,
                "bundle": bool(args.bundle),
                "follow": bool(args.follow),
            }
        )

    golden_path = args.golden_log
    try:
        if args.registry and args.name:
            registry = (
                BundleRegistry(args.registry)
                if args.bundle
                else ModelRegistry(args.registry)
            )
            if golden_path is None and args.bundle:
                golden_path = (
                    registry.root / slugify(args.name) / "golden-deltas.jsonl"
                )
            if args.model_version is not None:
                # A pinned version is served statically, never swapped.
                source = ModelSource(
                    model=registry.load(args.name, args.model_version),
                    use_programs=not args.no_programs,
                    cache_size=args.cache_size,
                    obs=obs or NULL_OBS,
                    model_version=args.model_version,
                )
            else:
                source = ModelSource(
                    registry=registry,
                    name=args.name,
                    use_programs=not args.no_programs,
                    cache_size=args.cache_size,
                    ttl=args.ttl,
                    obs=obs or NULL_OBS,
                )
        elif args.model:
            artifact = (
                ModelBundle.load(args.model)
                if args.bundle
                else TransformationModel.load(args.model)
            )
            source = ModelSource(
                model=artifact,
                use_programs=not args.no_programs,
                cache_size=args.cache_size,
                obs=obs or NULL_OBS,
            )
        else:
            raise SystemExit(
                "error: pass --model FILE, or --registry DIR with --name NAME"
            )
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    except (ValueError, KeyError, re.error) as exc:
        raise SystemExit(f"error: cannot load model: {exc}")

    server = ServeServer(
        source,
        golden=GoldenTable(golden_path) if golden_path else None,
        obs=obs,
        follow=args.follow,
        poll_interval=args.poll_interval,
        idle_timeout=args.idle_timeout or None,
        max_request_bytes=args.max_request_bytes,
        snapshot_interval=args.snapshot_interval,
    )

    def banner(bound_host: str, bound_port: int) -> None:
        # Parseable by supervisors/tests launching with port 0; stderr
        # so stdout stays free (the protocol lives on the socket).
        print(f"listening on {bound_host}:{bound_port}", file=sys.stderr)
        sys.stderr.flush()

    try:
        code = run_server(server, host, port, banner=banner)
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if obs is not None:
            obs.close()
    return code


def cmd_serve(args) -> int:
    if args.listen:
        return _cmd_serve_network(args)
    model, index = _load_model_with_index(args)
    engine = ApplyEngine(
        model,
        use_programs=not args.no_programs,
        cache_size=args.cache_size,
        precompiled=index,
    )
    # The banner goes to stderr: stdout carries only protocol lines.
    print(
        f"serving {model.describe()}; one JSON request per line "
        "(op: apply/ping/stats/shutdown)",
        file=sys.stderr,
    )
    served = serve_forever(engine)
    print(f"served {served} requests", file=sys.stderr)
    return 0


def _make_obs(args):
    """The stream run's observability context (:data:`NULL_OBS` unless
    ``--metrics`` asks for a recording).

    ``--profile`` without ``--metrics`` still gets a real (in-memory)
    context: the profiler attributes samples to the active span, which
    needs a live tracer stack even when no rows are recorded.
    """
    from .obs import NULL_OBS, JsonlSink, MemorySink, Obs

    if args.trace and not args.metrics:
        raise SystemExit("error: --trace requires --metrics FILE")
    if not args.metrics:
        if getattr(args, "profile", None):
            return Obs(sink=MemorySink())
        return NULL_OBS
    return Obs(sink=JsonlSink(args.metrics), trace=args.trace)


def _make_profiler(args, obs):
    """A started :class:`~repro.obs.profiler.SamplingProfiler` when
    ``--profile OUT`` was given, else ``None``."""
    if not getattr(args, "profile", None):
        return None
    from .obs.profiler import SamplingProfiler

    profiler = SamplingProfiler(
        tracer=obs.tracer if obs.enabled else None
    )
    profiler.start()
    return profiler


def _finish_profiler(profiler, args) -> None:
    if profiler is None:
        return
    profiler.stop()
    profiler.write(args.profile)
    print(
        f"profile written: {args.profile} "
        f"({profiler.samples} samples; collapsed stacks, "
        "flamegraph-ready)"
    )


def _resolve_lsh_params(args) -> Tuple[int, int]:
    """The effective LSH ``(bands, rows)`` for a similarity-mode run.

    Explicit ``--lsh-bands`` / ``--lsh-rows`` win; any flag left unset
    is derived from ``--similarity-threshold`` via the S-curve
    (:func:`~repro.resolution.blocking.derive_lsh_params`), so the
    collision cliff lands at the match threshold instead of wherever
    a fixed default happens to put it.  Prints the derived shape (to
    stderr) when LSH blocking is actually in play, so runs are
    reproducible from their logs.
    """
    bands, rows = args.lsh_bands, args.lsh_rows
    if bands is None or rows is None:
        try:
            derived_bands, derived_rows = derive_lsh_params(
                args.similarity_threshold
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        if bands is None:
            bands = derived_bands
        if rows is None:
            rows = derived_rows
        if "lsh" in args.blocking:
            print(
                f"lsh: bands={bands} rows={rows} (derived from "
                f"--similarity-threshold {args.similarity_threshold}; "
                "pass --lsh-bands/--lsh-rows to override)",
                file=sys.stderr,
            )
    return bands, rows


def cmd_stream(args) -> int:
    from .datagen.stream import dataset_stream
    from .stream import (
        DriftMonitor,
        StreamConsolidator,
        ground_truth_oracle_factory,
    )

    if args.columns:
        return _cmd_stream_golden(args)
    # The golden-only flags must not silently no-op in single-column
    # mode (the symmetric check — --drift-threshold with --columns —
    # lives in _cmd_stream_golden).
    for flag, value in (
        ("--golden-out", args.golden_out),
        ("--fusion", args.fusion),
    ):
        if value is not None:
            raise SystemExit(
                f"error: {flag} requires --columns (multi-column "
                "golden-record mode)"
            )
    obs = _make_obs(args)
    dataset = _make_dataset(args)
    stream = dataset_stream(dataset, batches=args.batches, seed=args.seed)
    obs.emit(
        {
            "type": "meta",
            "command": "stream",
            "dataset": args.dataset,
            "column": stream.column,
            "scale": args.scale,
            "seed": args.seed,
            "batches": args.batches,
            "shards": args.shards,
            "budget": args.budget,
            "question_order": args.question_order,
            "blocking": args.blocking,
        }
    )
    monitor = None
    if args.drift_threshold is not None:
        monitor = DriftMonitor(
            window=args.drift_window,
            miss_rate_threshold=args.drift_threshold,
        )
    resolution_kwargs = {}
    if args.blocking == "key":
        resolution_kwargs["key_attribute"] = stream.key_column
    else:
        # Similarity mode: resolve arrivals by blocked matching on the
        # consolidated column instead of the synthetic entity key.
        resolution_kwargs["attribute"] = stream.column
        resolution_kwargs["similarity_threshold"] = (
            args.similarity_threshold
        )
        bands, rows = _resolve_lsh_params(args)
        resolution_kwargs["block_keys"] = make_block_keys(
            args.blocking,
            bands=bands,
            rows=rows,
            shingle=args.lsh_shingle,
        )
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid,
            seed=args.seed,
            error_rate=args.error_rate,
        ),
        budget_per_batch=args.budget,
        registry=ModelRegistry(args.registry) if args.registry else None,
        model_name=args.name or args.dataset.lower(),
        use_engine=not args.no_engine,
        monitor=monitor,
        shards=args.shards,
        block_retention=args.block_retention,
        decision_log=args.decision_log,
        persist_decisions=not args.no_decision_log,
        resume=not args.fresh,
        obs=obs,
        question_order=args.question_order,
        **resolution_kwargs,
    )
    print(
        f"streaming {stream.num_records} records in "
        f"{len(stream.batches)} batches ({dataset.name})"
        + (f", {args.shards} learner shards" if args.shards > 1 else "")
        + (
            f", {args.blocking} blocking"
            if args.blocking != "key"
            else ""
        )
    )
    start = time.perf_counter()
    profiler = _make_profiler(args, obs)
    try:
        with consolidator:
            for batch in stream.batches:
                report = consolidator.process_batch(batch)
                print(f"{report.describe()}  [{report.seconds:.3f}s]")
                if args.stats:
                    print(
                        "stats: "
                        + json.dumps(report.stats(), sort_keys=True)
                    )
            if consolidator.resumed_from is not None:
                print(
                    f"resumed from model v{consolidator.resumed_from} "
                    f"(+{consolidator.standardizer.decisions.replayed} "
                    "replayed verdicts)"
                )
    finally:
        # A crashed stream still flushes its final snapshot and closes
        # the sink — partial recordings beat silently truncated ones.
        _finish_profiler(profiler, args)
        obs.flush_snapshot()
        obs.close()
    elapsed = time.perf_counter() - start
    print(
        f"stream done in {elapsed:.2f}s: "
        f"{consolidator.questions_asked} oracle questions asked, "
        f"{consolidator.questions_saved} saved by reuse, "
        f"model at v{consolidator.model_version}"
    )
    if args.metrics:
        print(
            f"metrics recorded: {args.metrics} "
            f"(summarize with `repro stats --metrics {args.metrics}`)"
        )
    if args.registry:
        print(f"model versions published under: {args.registry}")
        if consolidator.decision_log is not None:
            print(f"decision log: {consolidator.decision_log}")
    return 0


def _cmd_stream_golden(args) -> int:
    """Multi-column golden-record streaming (``--columns a,b,c``)."""
    from .datagen.stream import GOLDEN_COLUMN_FAMILIES, golden_stream
    from .fusion import accu, majority, truthfinder
    from .serve.bundle import BundleRegistry
    from .stream import (
        GoldenStreamConsolidator,
        golden_ground_truth_oracle_factory,
    )

    if args.drift_threshold is not None:
        raise SystemExit(
            "error: --drift-threshold is not supported with --columns "
            "(per-column drift monitoring is not wired yet)"
        )
    columns = [c.strip() for c in args.columns.split(",") if c.strip()]
    if not columns:
        raise SystemExit(
            "error: --columns needs at least one column name "
            f"(available: {sorted(GOLDEN_COLUMN_FAMILIES)})"
        )
    unknown = [c for c in columns if c not in GOLDEN_COLUMN_FAMILIES]
    if unknown:
        raise SystemExit(
            f"error: unknown golden columns {unknown}; available: "
            f"{sorted(GOLDEN_COLUMN_FAMILIES)}"
        )
    obs = _make_obs(args)
    seed = _resolve_seed(args)
    stream = golden_stream(
        batches=args.batches,
        n_clusters=max(8, round(200 * args.scale)),
        columns=columns,
        seed=seed,
    )
    obs.emit(
        {
            "type": "meta",
            "command": "stream",
            "columns": columns,
            "scale": args.scale,
            "seed": seed,
            "batches": args.batches,
            "shards": args.shards,
            "budget": args.budget,
            "question_order": args.question_order,
            "blocking": args.blocking,
            "fusion": args.fusion or "majority",
        }
    )
    fusion = {
        "majority": majority.fuse,
        "truthfinder": truthfinder.fuse,
        "accu": accu.fuse,
    }[args.fusion or "majority"]
    resolution_kwargs = {}
    if args.blocking == "key":
        resolution_kwargs["key_attribute"] = stream.key_column
    else:
        # Similarity mode: the shared resolver matches whole records by
        # blocked similarity on the first consolidated column.
        resolution_kwargs["attribute"] = columns[0]
        resolution_kwargs["similarity_threshold"] = (
            args.similarity_threshold
        )
        bands, rows = _resolve_lsh_params(args)
        resolution_kwargs["block_keys"] = make_block_keys(
            args.blocking,
            bands=bands,
            rows=rows,
            shingle=args.lsh_shingle,
        )
    consolidator = GoldenStreamConsolidator(
        columns=columns,
        oracle_factory=golden_ground_truth_oracle_factory(
            stream.canonical_by_rid,
            seed=seed,
            error_rate=args.error_rate,
        ),
        budget_per_batch=args.budget,
        fusion=fusion,
        registry=BundleRegistry(args.registry) if args.registry else None,
        bundle_name=args.name or "-".join(columns),
        use_engine=not args.no_engine,
        shards=args.shards,
        block_retention=args.block_retention,
        decision_log_dir=args.decision_log,
        persist_decisions=not args.no_decision_log,
        resume=not args.fresh,
        obs=obs,
        question_order=args.question_order,
        **resolution_kwargs,
    )
    print(
        f"streaming {stream.num_records} records in "
        f"{len(stream.batches)} batches "
        f"({len(columns)} columns: {', '.join(columns)})"
        + (f", {args.shards} learner shards" if args.shards > 1 else "")
        + (
            f", {args.blocking} blocking"
            if args.blocking != "key"
            else ""
        )
    )
    start = time.perf_counter()
    profiler = _make_profiler(args, obs)
    try:
        with consolidator:
            for batch in stream.batches:
                report = consolidator.process_batch(batch)
                print(f"{report.describe()}  [{report.seconds:.3f}s]")
                if args.stats:
                    print(
                        "stats: "
                        + json.dumps(report.stats(), sort_keys=True)
                    )
            if consolidator.resumed_from is not None:
                replayed = sum(
                    consolidator.standardizers[c].decisions.replayed
                    for c in columns
                )
                print(
                    f"resumed from bundle v{consolidator.resumed_from} "
                    f"(+{replayed} replayed verdicts)"
                )
            golden = consolidator.golden_records()
    finally:
        _finish_profiler(profiler, args)
        obs.flush_snapshot()
        obs.close()
    elapsed = time.perf_counter() - start
    print(
        f"stream done in {elapsed:.2f}s: "
        f"{len(golden)} golden records, "
        f"{consolidator.questions_asked} oracle questions asked, "
        f"{consolidator.questions_saved} saved by reuse, "
        f"{consolidator.clusters_refused} cluster re-fusions, "
        f"bundle at v{consolidator.bundle_version}"
    )
    if args.metrics:
        print(
            f"metrics recorded: {args.metrics} "
            f"(summarize with `repro stats --metrics {args.metrics}`)"
        )
    if args.golden_out:
        with open(args.golden_out, "w", encoding="utf-8") as handle:
            for record in golden:
                handle.write(
                    json.dumps(
                        {
                            "cluster": record.cluster,
                            "key": record.key,
                            **record.values,
                        },
                        ensure_ascii=False,
                        sort_keys=True,
                    )
                    + "\n"
                )
        print(f"golden records written: {args.golden_out}")
    if args.registry:
        print(f"bundle versions published under: {args.registry}")
        if consolidator.decision_log_dir is not None:
            print(f"decision logs: {consolidator.decision_log_dir}")
    return 0


def cmd_top(args) -> int:
    from pathlib import Path

    from .obs.top import run_top

    if args.once and not Path(args.metrics).exists():
        raise SystemExit(f"error: no such metrics file: {args.metrics}")
    return run_top(
        args.metrics,
        interval=args.interval,
        once=args.once,
        max_refreshes=args.refreshes,
    )


def cmd_bench(args) -> int:
    from .obs import baseline as bench_baseline

    if args.bench_command == "baseline":
        base = bench_baseline.build_baseline(
            args.results_dir, max_spread=args.max_spread
        )
        metrics = base["metrics"]
        for series, entry in sorted(metrics.items()):
            print(
                f"{series}: baseline={entry['baseline']:.6g} "
                f"({entry['direction']} is better, "
                f"{entry['points']} points)"
            )
        for series, reason in sorted(base["skipped"].items()):
            print(f"skipped {series}: {reason}")
        if not metrics:
            print(f"no usable series under {args.results_dir}")
            return 1
        if args.write:
            bench_baseline.save_baseline(base, args.write)
            print(
                f"baseline written: {args.write} "
                f"({len(metrics)} series)"
            )
        return 0

    try:
        base = bench_baseline.load_baseline(args.baseline)
    except FileNotFoundError:
        raise SystemExit(
            f"error: no baseline file: {args.baseline} "
            "(commit one with `repro bench baseline --write`)"
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    results, missing = bench_baseline.check(
        args.results_dir, base, tolerance=args.tolerance
    )
    for result in results:
        print(result.describe())
    for series in missing:
        print(f"no data    {series}: no row in {args.results_dir}")
    regressions = [result for result in results if not result.ok]
    print(
        f"bench check: {len(results)} series checked, "
        f"{len(regressions)} regression(s), {len(missing)} without "
        f"data (tolerance {args.tolerance:g}x)"
    )
    return 1 if regressions else 0


def cmd_decisions(args) -> int:
    """``repro decisions compact|diff|audit``: offline maintenance of
    durable verdict logs (see docs/oracle-scheduling.md)."""
    from .stream.decision_tools import (
        audit_log,
        compact_log,
        diff_logs,
        read_log,
    )

    def load(path):
        try:
            return read_log(path)
        except FileNotFoundError:
            raise SystemExit(f"error: no such log: {path}")
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")

    if args.decisions_command == "compact":
        entries, damage = load(args.log)
        kept, dropped = compact_log(entries)
        for entry in dropped:
            print(f"drop line {entry.line}: {entry.to_json()}")
        print(
            f"{args.log}: {len(entries)} lines, {len(kept)} effective, "
            f"{len(dropped)} droppable"
            + (f" ({damage})" if damage else "")
        )
        if args.write and (dropped or damage):
            path = Path(args.log)
            backup = path.with_name(path.name + ".pre-compact")
            path.replace(backup)
            with open(path, "w", encoding="utf-8") as handle:
                for entry in kept:
                    handle.write(entry.to_json() + "\n")
            print(f"rewrote {path} (original kept as {backup})")
        elif args.write:
            print("nothing to drop; log left untouched")
        return 0

    if args.decisions_command == "diff":
        a_entries, _ = load(args.log_a)
        b_entries, _ = load(args.log_b)
        diff = diff_logs(a_entries, b_entries)
        for entry in diff["only_a"]:
            print(f"only {args.log_a}: {entry.to_json()}")
        for entry in diff["only_b"]:
            print(f"only {args.log_b}: {entry.to_json()}")
        for a_entry, b_entry in diff["conflicts"]:
            print(
                f"conflict on {a_entry.pair}: "
                f"a={a_entry.to_json()} b={b_entry.to_json()}"
            )
        differs = any(diff.values())
        print(
            f"{len(diff['only_a'])} only in a, "
            f"{len(diff['only_b'])} only in b, "
            f"{len(diff['conflicts'])} conflicting"
        )
        return 1 if differs else 0

    # audit
    entries, damage = load(args.log)
    report = audit_log(entries, damage)
    if args.json:
        print(
            json.dumps(
                {
                    **report,
                    "duplicates": len(report["duplicates"]),
                    "conflicts": len(report["conflicts"]),
                },
                sort_keys=True,
            )
        )
    else:
        print(f"{args.log}:")
        print(f"  lines:     {report['entries']}")
        print(f"  effective: {report['effective']}")
        print(
            f"  verdicts:  {report['approved']} approved, "
            f"{report['rejected']} rejected"
        )
        for source, count in report["by_source"].items():
            print(f"  source:    {source} x{count}")
        for entry in report["duplicates"]:
            print(f"  duplicate line {entry.line}: {entry.to_json()}")
        for first, later in report["conflicts"]:
            print(
                f"  conflict: line {later.line} {later.to_json()} "
                f"vs line {first.line} {first.to_json()} (first wins)"
            )
        if report["damage"]:
            print(f"  damage:    {report['damage']}")
    unhealthy = bool(report["conflicts"]) or report["damage"] is not None
    return 1 if unhealthy else 0


COMMANDS = {
    "stats": cmd_stats,
    "groups": cmd_groups,
    "standardize": cmd_standardize,
    "consolidate": cmd_consolidate,
    "learn": cmd_learn,
    "apply": cmd_apply,
    "serve": cmd_serve,
    "stream": cmd_stream,
    "decisions": cmd_decisions,
    "top": cmd_top,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
