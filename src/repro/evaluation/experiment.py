"""Experiment harness: the runs behind every figure and table.

Each run copies the generated table, samples labeled pairs from the
*original* values (the paper labels before any updating), executes a
standardization method, and snapshots precision / recall / MCC after
every confirmed group — yielding the series plotted in Figures 6-8 and
10; Table 8 and Figure 9 have their own entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..baselines.rules import rules_for
from ..baselines.single import SingleFeed
from ..baselines.wrangler import RuleSet
from ..config import DEFAULT_CONFIG, Config
from ..core.grouping import unsupervised_grouping
from ..core.incremental import IncrementalGrouper
from ..datagen.base import GeneratedDataset, lowercased
from ..fusion import accu, majority, truthfinder
from ..pipeline.golden import entity_precision, golden_records
from ..pipeline.oracle import GroundTruthOracle
from ..pipeline.standardize import Standardizer, StepRecord
from .metrics import Confusion, confusion_from_pairs
from .sampling import LabeledPair, sample_labeled_pairs


@dataclass(frozen=True)
class SeriesPoint:
    """Metrics after ``confirmed`` groups were reviewed."""

    confirmed: int
    precision: float
    recall: float
    mcc: float


@dataclass
class StandardizationSeries:
    """One curve of Figures 6-8/10 for one method on one dataset."""

    dataset: str
    method: str
    points: List[SeriesPoint] = field(default_factory=list)

    def final(self) -> SeriesPoint:
        return self.points[-1] if self.points else SeriesPoint(0, 1.0, 0.0, 0.0)


def _evaluate(pairs: List[LabeledPair], table) -> Confusion:
    return confusion_from_pairs(
        [(p.is_variant, (p.a, p.b)) for p in pairs],
        lambda pair: table.value(pair[0]) == table.value(pair[1]),
    )


def run_method_series(
    dataset: GeneratedDataset,
    method: str,
    budget: int,
    config: Config = DEFAULT_CONFIG,
    sample_size: int = 1000,
    seed: int = 0,
    oracle_error_rate: float = 0.0,
) -> StandardizationSeries:
    """Run ``method`` ('group' or 'single') and record the metric series.

    The series contains the zero-budget point plus one point per
    confirmed group, exactly the x-axis of Figures 6-8.
    """
    table = dataset.fresh_table()
    pairs = sample_labeled_pairs(
        table, dataset.column, dataset.labeler(), sample_size, seed
    )
    standardizer = Standardizer(table, dataset.column, config)
    oracle = GroundTruthOracle(
        dataset.canonical,
        standardizer.store,
        error_rate=oracle_error_rate,
        seed=seed,
    )
    if method == "group":
        feed = standardizer.default_feed()
    elif method == "single":
        feed = SingleFeed(standardizer.store)
    else:
        raise ValueError(f"unknown method {method!r}")

    series = StandardizationSeries(dataset.name, method)
    baseline = _evaluate(pairs, table)
    series.points.append(
        SeriesPoint(0, baseline.precision, baseline.recall, baseline.mcc)
    )

    def snapshot(step: StepRecord) -> None:
        confusion = _evaluate(pairs, table)
        series.points.append(
            SeriesPoint(
                step.index + 1,
                confusion.precision,
                confusion.recall,
                confusion.mcc,
            )
        )

    standardizer.run(oracle, budget, feed=feed, after_step=snapshot)
    return series


def run_trifacta_series(
    dataset: GeneratedDataset,
    budget: int,
    rules: Optional[RuleSet] = None,
    sample_size: int = 1000,
    seed: int = 0,
) -> StandardizationSeries:
    """The Trifacta baseline: rules applied once, metrics constant in
    the number of confirmed groups (the dotted lines of Figures 6-8)."""
    table = dataset.fresh_table()
    pairs = sample_labeled_pairs(
        table, dataset.column, dataset.labeler(), sample_size, seed
    )
    if rules is None:
        rules = rules_for(dataset.name)
    rules.apply_to_table(table, dataset.column)
    confusion = _evaluate(pairs, table)
    series = StandardizationSeries(dataset.name, "trifacta")
    for confirmed in range(budget + 1):
        series.points.append(
            SeriesPoint(
                confirmed, confusion.precision, confusion.recall, confusion.mcc
            )
        )
    return series


@dataclass(frozen=True)
class RuntimePoint:
    """Cumulative seconds until the k-th group is available (Figure 9)."""

    groups: int
    seconds: float


def run_grouping_runtime(
    dataset: GeneratedDataset,
    variant: str,
    max_groups: int,
    config: Config = DEFAULT_CONFIG,
) -> List[RuntimePoint]:
    """Time group generation for one Figure 9 curve.

    ``oneshot`` / ``earlyterm`` pay their full partitioning cost before
    the first group is available (dotted lines); ``incremental`` pays
    per invocation (solid line).
    """
    store_table = dataset.fresh_table()
    standardizer = Standardizer(store_table, dataset.column, config)
    replacements = standardizer.store.replacements()

    if variant in ("oneshot", "earlyterm"):
        run_config = (
            config.without_early_termination()
            if variant == "oneshot"
            else config.with_early_termination()
        )
        start = time.perf_counter()
        outcome = unsupervised_grouping(replacements, config=run_config)
        upfront = time.perf_counter() - start
        available = len(outcome.groups)
        return [
            RuntimePoint(k, upfront)
            for k in range(1, min(max_groups, available) + 1)
        ]
    if variant == "incremental":
        grouper = IncrementalGrouper(replacements, config=config)
        points: List[RuntimePoint] = []
        elapsed = 0.0
        for k in range(1, max_groups + 1):
            start = time.perf_counter()
            group = grouper.next_group()
            elapsed += time.perf_counter() - start
            if group is None:
                break
            points.append(RuntimePoint(k, elapsed))
        return points
    raise ValueError(f"unknown grouping variant {variant!r}")


_FUSION_METHODS = {
    "majority": majority.fuse,
    "truthfinder": truthfinder.fuse,
    "accu": accu.fuse,
}


@dataclass(frozen=True)
class ConsolidationResult:
    """One cell of Table 8: golden-record precision for one setting."""

    dataset: str
    fusion: str
    standardized: bool
    precision: float


def run_consolidation(
    dataset: GeneratedDataset,
    budget: int,
    fusion: str = "majority",
    config: Config = DEFAULT_CONFIG,
    seed: int = 0,
    lowercase: bool = False,
) -> Tuple[ConsolidationResult, ConsolidationResult]:
    """Golden-record precision before and after standardization
    (Table 8's before/after rows).

    Correctness is *entity-level*, exactly as the paper scores it ("if
    they refer to the same entity, we increase TP"): a golden value in
    a variant surface form still counts when it denotes the right
    entity.  ``lowercase`` additionally reproduces the paper's only
    preprocessing (Section 8.3); it defaults off here because our
    synthetic ground truth is case-exact (see EXPERIMENTS.md).
    """
    fuse = _FUSION_METHODS[fusion]
    if lowercase:
        dataset = lowercased(dataset)

    before_table = dataset.fresh_table()
    before = entity_precision(
        before_table,
        dataset.column,
        golden_records(before_table, dataset.column, fuse),
        dataset.canonical,
        dataset.golden,
    )

    after_table = dataset.fresh_table()
    standardizer = Standardizer(after_table, dataset.column, config)
    oracle = GroundTruthOracle(dataset.canonical, standardizer.store, seed=seed)
    standardizer.run(oracle, budget)
    after = entity_precision(
        after_table,
        dataset.column,
        golden_records(after_table, dataset.column, fuse),
        dataset.canonical,
        dataset.golden,
    )
    return (
        ConsolidationResult(dataset.name, fusion, False, before),
        ConsolidationResult(dataset.name, fusion, True, after),
    )
