"""Metrics, pair sampling, experiment harness, and report rendering."""

from .charts import render_series_chart
from .experiment import (
    ConsolidationResult,
    RuntimePoint,
    SeriesPoint,
    StandardizationSeries,
    run_consolidation,
    run_grouping_runtime,
    run_method_series,
    run_trifacta_series,
)
from .metrics import Confusion, confusion_from_pairs
from .report import format_runtime, format_series, format_table
from .sampling import LabeledPair, all_nonidentical_pairs, sample_labeled_pairs
