"""ASCII line charts so benchmark output *looks* like the paper's
figures, not just its numbers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .experiment import SeriesPoint, StandardizationSeries

#: Plot symbols assigned to series in order.
SYMBOLS = "ox+*#@"


def render_series_chart(
    series: Sequence[StandardizationSeries],
    metric: str,
    width: int = 60,
    height: int = 16,
    y_max: float = 1.0,
) -> str:
    """Render metric-vs-#groups curves as an ASCII chart.

    Mirrors the paper's figure layout: x = number of groups confirmed,
    y = the metric in [0, y_max].  Later series draw over earlier ones;
    a legend follows the axes.
    """
    if not series:
        return "(no series)"
    x_max = max(
        (p.confirmed for s in series for p in s.points), default=0
    )
    if x_max == 0:
        x_max = 1
    grid: List[List[str]] = [[" "] * (width + 1) for _ in range(height + 1)]

    for idx, s in enumerate(series):
        symbol = SYMBOLS[idx % len(SYMBOLS)]
        values = _stepwise(s.points, metric, x_max, width)
        for col, value in enumerate(values):
            if value is None:
                continue
            row = height - round(min(max(value, 0.0), y_max) / y_max * height)
            grid[row][col] = symbol

    lines: List[str] = []
    for row_idx, row in enumerate(grid):
        y_value = y_max * (height - row_idx) / height
        label = f"{y_value:4.2f} |" if row_idx % 4 == 0 else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * (width + 1))
    lines.append(f"      0{' ' * (width - 10)}#groups={x_max}")
    legend = "   ".join(
        f"{SYMBOLS[i % len(SYMBOLS)]} = {s.method}" for i, s in enumerate(series)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def _stepwise(
    points: Sequence[SeriesPoint],
    metric: str,
    x_max: int,
    width: int,
) -> List[Optional[float]]:
    """Resample a step function (metric value at <= x) onto the grid."""
    ordered = sorted(points, key=lambda p: p.confirmed)
    values: List[Optional[float]] = []
    for col in range(width + 1):
        x = x_max * col / width
        current: Optional[float] = None
        for point in ordered:
            if point.confirmed <= x:
                current = getattr(point, metric)
            else:
                break
        values.append(current)
    return values
