"""Labeled pair sampling (Section 8: "we first randomly sampled 1000
non-identical value pairs for each dataset and manually labeled each").

Our "manual labels" come from generator ground truth; pairs are tracked
by cell reference so the same sample can be re-examined after any
number of updates to the table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, List, Tuple

from ..data.table import CellRef, ClusterTable

Pair = Tuple[CellRef, CellRef]


@dataclass(frozen=True)
class LabeledPair:
    """A sampled same-cluster pair with its ground-truth label."""

    a: CellRef
    b: CellRef
    is_variant: bool


def all_nonidentical_pairs(table: ClusterTable, column: str) -> List[Pair]:
    """Every same-cluster cell pair whose values currently differ."""
    pairs: List[Pair] = []
    for ci in range(table.num_clusters):
        cells = table.cluster_cells(ci, column)
        for a, b in combinations(cells, 2):
            if table.value(a) != table.value(b):
                pairs.append((a, b))
    return pairs


def sample_labeled_pairs(
    table: ClusterTable,
    column: str,
    labeler: Callable[[CellRef, CellRef], bool],
    sample_size: int = 1000,
    seed: int = 0,
) -> List[LabeledPair]:
    """Sample up to ``sample_size`` labeled non-identical pairs."""
    pairs = all_nonidentical_pairs(table, column)
    rng = random.Random(seed)
    if len(pairs) > sample_size:
        pairs = rng.sample(pairs, sample_size)
    return [LabeledPair(a, b, labeler(a, b)) for a, b in pairs]


def evaluate_pairs(
    pairs: List[LabeledPair], table: ClusterTable
) -> List[Tuple[bool, Pair]]:
    """Adapter for :func:`repro.evaluation.metrics.confusion_from_pairs`."""
    return [(p.is_variant, (p.a, p.b)) for p in pairs]
