"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .experiment import RuntimePoint, SeriesPoint, StandardizationSeries


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A minimal fixed-width table (no external deps)."""
    materialized: List[List[str]] = [
        [_cell(v) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


def format_series(
    series: List[StandardizationSeries],
    metric: str,
    checkpoints: Sequence[int],
) -> str:
    """Figures 6-8/10 as a table: one row per checkpoint budget, one
    column per method."""
    headers = ["#groups"] + [s.method for s in series]
    rows = []
    for budget in checkpoints:
        row: List[object] = [budget]
        for s in series:
            row.append(_metric_at(s.points, metric, budget))
        rows.append(row)
    return format_table(headers, rows)


def _metric_at(
    points: Sequence[SeriesPoint], metric: str, budget: int
) -> Optional[float]:
    """The metric at the largest confirmed count <= budget."""
    best: Optional[SeriesPoint] = None
    for point in points:
        if point.confirmed <= budget and (
            best is None or point.confirmed > best.confirmed
        ):
            best = point
    return getattr(best, metric) if best is not None else None


def format_runtime(
    curves: dict, checkpoints: Sequence[int]
) -> str:
    """Figure 9 as a table: cumulative seconds to reach k groups."""
    headers = ["#groups"] + list(curves)
    rows = []
    for k in checkpoints:
        row: List[object] = [k]
        for name, points in curves.items():
            row.append(_runtime_at(points, k))
        rows.append(row)
    return format_table(headers, rows)


def _runtime_at(points: Sequence[RuntimePoint], k: int) -> Optional[float]:
    best: Optional[RuntimePoint] = None
    for point in points:
        if point.groups <= k and (best is None or point.groups > best.groups):
            best = point
    return best.seconds if best is not None else None
