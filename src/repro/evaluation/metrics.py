"""Evaluation metrics (Section 8, Table 7).

Over a sample of labeled non-identical value pairs, after running a
standardization method:

* true positive  — variant pair that became identical;
* false negative — variant pair still non-identical;
* false positive — conflict pair that became identical;
* true negative  — conflict pair still non-identical.

Precision, recall and Matthews correlation coefficient follow; the
paper prefers MCC over F1 because the class sizes are very unbalanced
(Section 8, citing Baldi et al.).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Confusion:
    """A 2x2 confusion over labeled pairs."""

    tp: int = 0
    fn: int = 0
    fp: int = 0
    tn: int = 0

    @property
    def total(self) -> int:
        return self.tp + self.fn + self.fp + self.tn

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def mcc(self) -> float:
        """Matthews correlation coefficient in [-1, 1]; 0 when any
        marginal is empty (the standard degenerate-case convention)."""
        denom = (
            (self.tp + self.fp)
            * (self.tp + self.fn)
            * (self.tn + self.fp)
            * (self.tn + self.fn)
        )
        if denom == 0:
            return 0.0
        return (self.tp * self.tn - self.fp * self.fn) / math.sqrt(denom)

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(
            self.tp + other.tp,
            self.fn + other.fn,
            self.fp + other.fp,
            self.tn + other.tn,
        )


def confusion_from_pairs(pairs, values_equal) -> Confusion:
    """Build the confusion from ``(is_variant, pair)`` labels and a
    ``values_equal(pair) -> bool`` probe of the updated table."""
    tp = fn = fp = tn = 0
    for is_variant, pair in pairs:
        identical = values_equal(pair)
        if is_variant:
            if identical:
                tp += 1
            else:
                fn += 1
        else:
            if identical:
                fp += 1
            else:
                tn += 1
    return Confusion(tp, fn, fp, tn)
