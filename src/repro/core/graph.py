"""Transformation graphs (Definition 2, Appendix C).

For a replacement ``s -> t`` the graph has nodes ``n1 .. n_{|t|+1}`` —
one per boundary position of ``t`` — and an edge ``(i, j)`` for every
``1 <= i < j <= |t|+1``.  The labels of edge ``(i, j)`` are the string
functions that output ``t[i, j)`` when applied to ``s``:

* ``ConstantStr(t[i, j))`` — always present, so every replacement has
  at least one consistent program (the one-edge constant path);
* ``SubStr(f, g)`` for every occurrence ``s[x, y) == t[i, j)`` and
  position functions ``f`` locating ``x`` and ``g`` locating ``y``;
* ``Prefix``/``Suffix`` labels where ``t[i, j)`` is a proper affix of a
  term match in ``s`` (Appendix D), restricted to the *longest* affix
  per anchor position (static order, Appendix E).

Label lists are sorted by :func:`repro.core.functions.label_sort_key`
so downstream DFS is deterministic.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import DEFAULT_CONFIG, Config
from .functions import ConstantStr, Prefix, StringFunction, SubStr, Suffix, label_sort_key
from .positions import position_candidates
from .terms import DEFAULT_VOCABULARY, MatchContext, TermVocabulary

Edge = Tuple[int, int]


class TransformationGraph:
    """The DAG of all consistent programs for one replacement."""

    __slots__ = ("source", "target", "edges", "out_edges", "gid")

    def __init__(
        self,
        source: str,
        target: str,
        edges: Dict[Edge, Tuple[StringFunction, ...]],
    ) -> None:
        self.source = source
        self.target = target
        self.edges = edges
        self.gid: int = -1  # assigned when registered in an index
        out: Dict[int, List[Tuple[int, Tuple[StringFunction, ...]]]] = {}
        for (i, j), labels in sorted(edges.items()):
            out.setdefault(i, []).append((j, labels))
        self.out_edges = out

    @property
    def num_nodes(self) -> int:
        return len(self.target) + 1

    @property
    def last_node(self) -> int:
        return len(self.target) + 1

    def labels(self, i: int, j: int) -> Tuple[StringFunction, ...]:
        return self.edges.get((i, j), ())

    def all_labels(self) -> Iterable[Tuple[Edge, StringFunction]]:
        for edge, labels in self.edges.items():
            for label in labels:
                yield edge, label

    def __repr__(self) -> str:
        return (
            f"TransformationGraph({self.source!r} -> {self.target!r}, "
            f"{len(self.edges)} edges)"
        )


def build_graph(
    source: str,
    target: str,
    vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
    config: Config = DEFAULT_CONFIG,
    constant_whitelist: Optional[frozenset] = None,
) -> Optional[TransformationGraph]:
    """Construct the transformation graph for ``source -> target``.

    Returns ``None`` when either string exceeds
    ``config.max_string_length`` (such replacements fall back to
    singleton groups) or the target is empty.

    ``constant_whitelist`` (built per structure group by the grouping
    layer when ``config.scored_constants`` is on) lists the recurring
    alphanumeric tokens; ``ConstantStr`` labels whose text contains
    other tokens are dropped except on the whole-target edge, which is
    always labeled so every replacement keeps a consistent program.
    """
    if not target or not source:
        return None
    if (
        len(source) > config.max_string_length
        or len(target) > config.max_string_length
    ):
        return None

    ctx = MatchContext(source, vocabulary)
    positions = position_candidates(
        ctx, config.max_position_functions, config.boundary_positions_only
    )
    occurrences = _occurrence_index(source, len(target))
    boundaries = (
        _unit_boundaries(target) if config.aligned_constants else None
    )

    edges: Dict[Edge, List[StringFunction]] = {}
    n = len(target)
    for i in range(1, n + 1):
        for j in range(i + 1, n + 2):
            sub = target[i - 1 : j - 1]
            labels: List[StringFunction] = []
            if (
                (boundaries is None or (i in boundaries and j in boundaries))
                and _constant_admitted(sub, constant_whitelist)
            ) or (i == 1 and j == n + 1):
                labels.append(ConstantStr(sub))
            starts = occurrences.get(sub, ())
            for x in starts[: config.max_occurrences_per_edge]:
                y = x + len(sub)
                budget = config.max_substr_labels_per_edge
                emitted = 0
                for f in positions.get(x, ()):
                    for g in positions.get(y, ()):
                        labels.append(SubStr(f, g))
                        emitted += 1
                        if emitted >= budget:
                            break
                    if emitted >= budget:
                        break
            edges[(i, j)] = labels

    if config.use_affix:
        _add_affix_labels(ctx, target, edges)

    # Unlabeled edges (possible under aligned_constants) are dropped:
    # Definition 2 gives every span an edge, but an edge without labels
    # can never appear on a transformation path.
    frozen: Dict[Edge, Tuple[StringFunction, ...]] = {
        edge: tuple(sorted(set(labels), key=label_sort_key))
        for edge, labels in edges.items()
        if labels
    }
    return TransformationGraph(source, target, frozen)


_ALNUM_TOKEN = re.compile(r"[A-Za-z]+|[0-9]+")


def _constant_admitted(sub: str, whitelist: Optional[frozenset]) -> bool:
    """Scored-constant check: every alphanumeric token of ``sub`` must
    recur within the structure group (Appendix E's freqStruc order).
    Pure separators (whitespace/punctuation) always pass."""
    if whitelist is None:
        return True
    return all(token in whitelist for token in _ALNUM_TOKEN.findall(sub))


def _unit_boundaries(target: str) -> frozenset:
    """1-based boundary positions of the target's term units: maximal
    runs of the four character classes plus one unit per other char
    (the structure decomposition of Section 7.2)."""
    boundaries = {1, len(target) + 1}
    prev_class = None
    for idx, ch in enumerate(target):
        if ch.isdigit() and ch.isascii():
            cls = "d"
        elif "a" <= ch <= "z":
            cls = "l"
        elif "A" <= ch <= "Z":
            cls = "C"
        elif ch.isspace():
            cls = "b"
        else:
            cls = None  # single-character unit: both sides are boundaries
        if cls is None or cls != prev_class:
            boundaries.add(idx + 1)
            if cls is None:
                boundaries.add(idx + 2)
        prev_class = cls
    return frozenset(boundaries)


def _occurrence_index(source: str, max_len: int) -> Dict[str, Tuple[int, ...]]:
    """Map every substring of ``source`` (up to ``max_len`` chars) to its
    1-based start positions."""
    index: Dict[str, List[int]] = {}
    n = len(source)
    for length in range(1, min(n, max_len) + 1):
        for start in range(n - length + 1):
            index.setdefault(source[start : start + length], []).append(start + 1)
    return {sub: tuple(starts) for sub, starts in index.items()}


def _add_affix_labels(
    ctx: MatchContext,
    target: str,
    edges: Dict[Edge, List[StringFunction]],
) -> None:
    """Add ``Prefix``/``Suffix`` labels (Appendix D) with the
    longest-affix-only static order (Appendix E).

    For each term match and each anchor position in ``t`` we emit only
    the label for the longest proper affix: if both ``t[i, j)`` and
    ``t[i, j+1)`` are prefixes of a match, only the longer edge is
    labeled.  Both forward and backward match indices are emitted so the
    label can be shared across strings with different match counts.
    """
    n = len(target)
    for term in ctx.vocabulary.regex_terms:
        matches = ctx.matches(term)
        m = len(matches)
        for idx, (x, y) in enumerate(matches, start=1):
            text = ctx.s[x - 1 : y - 1]
            if len(text) < 2:
                continue
            back = idx - m - 1
            # Longest proper prefix of `text` starting at each i in t.
            for i in range(1, n + 1):
                length = _common_prefix_len(target, i - 1, text)
                length = min(length, len(text) - 1, n + 1 - i)
                if length >= 1:
                    edge = (i, i + length)
                    edges[edge].append(Prefix(term, idx))
                    edges[edge].append(Prefix(term, back))
            # Longest proper suffix of `text` ending at each j in t.
            for j in range(2, n + 2):
                length = _common_suffix_len(target, j - 1, text)
                length = min(length, len(text) - 1, j - 1)
                if length >= 1:
                    edge = (j - length, j)
                    edges[edge].append(Suffix(term, idx))
                    edges[edge].append(Suffix(term, back))


def _common_prefix_len(target: str, start: int, text: str) -> int:
    """Length of the longest common prefix of ``target[start:]`` and ``text``."""
    length = 0
    limit = min(len(target) - start, len(text))
    while length < limit and target[start + length] == text[length]:
        length += 1
    return length


def _common_suffix_len(target: str, end: int, text: str) -> int:
    """Length of the longest common suffix of ``target[:end]`` and ``text``."""
    length = 0
    limit = min(end, len(text))
    while length < limit and target[end - 1 - length] == text[len(text) - 1 - length]:
        length += 1
    return length
