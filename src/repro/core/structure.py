"""Structure signatures and structure-equivalence refinement (Section 7.2).

Each side of a replacement maps to a sequence of *terms*: maximal runs
of the four regex character classes (digits ``d``, lowercase ``l``,
capitals ``C``, whitespace ``b``) plus one single-character term per
character outside those classes.  Two replacements are structurally
equivalent iff both sides' signatures match; the paper groups
replacements only within structure-equivalence classes, which both
sharpens groups for human review and lets the incremental algorithm
seed upper bounds with structure-group sizes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from .replacement import Replacement

#: A structure signature: tuple of term tags.  Regex-based terms use
#: their one-letter names; single-character terms use the character.
Signature = Tuple[str, ...]

#: Signature of a whole replacement: (Struc(lhs), Struc(rhs)).
StructureKey = Tuple[Signature, Signature]


def _char_class(ch: str) -> str:
    if ch.isdigit() and ch.isascii():
        return "d"
    if "a" <= ch <= "z":
        return "l"
    if "A" <= ch <= "Z":
        return "C"
    if ch.isspace():
        return "b"
    return ""  # single-character term


def structure_signature(s: str) -> Signature:
    """``Struc(s)``: collapse class runs, keep other chars one-by-one.

    Examples: ``Struc("9") == ("d",)``; ``Struc("9th") == ("d", "l")``;
    ``Struc("A-1") == ("C", "-", "d")``.
    """
    tags: List[str] = []
    prev_class = None
    for ch in s:
        cls = _char_class(ch)
        if not cls:
            tags.append(ch)
            prev_class = None
        else:
            if cls != prev_class:
                tags.append(cls)
            prev_class = cls
    return tuple(tags)


def structure_key(replacement: Replacement) -> StructureKey:
    """Structure equivalence key of a replacement (Definition 4)."""
    return (
        structure_signature(replacement.lhs),
        structure_signature(replacement.rhs),
    )


def partition_by_structure(
    replacements: Iterable[Replacement],
) -> Dict[StructureKey, List[Replacement]]:
    """Partition candidates into structure groups, preserving input
    order within each group (keeps downstream behaviour deterministic)."""
    groups: Dict[StructureKey, List[Replacement]] = defaultdict(list)
    for replacement in replacements:
        groups[structure_key(replacement)].append(replacement)
    return dict(groups)


def structurally_equivalent(a: Replacement, b: Replacement) -> bool:
    """``Struc(a) == Struc(b)`` (Definition 4)."""
    return structure_key(a) == structure_key(b)
