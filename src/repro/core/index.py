"""Inverted index over transformation-graph edge labels (Section 5.1).

The posting list of a string function ``f`` holds every triple
``<G, i, j>`` such that edge ``(i, j)`` of graph ``G`` carries label
``f``.  Intersections are *adjacency-aware*: an entry ``<G, i1, j1>``
joins ``<G, i2, j2>`` only when ``j1 == i2``, producing ``<G, i1, j2>``.

Because every path the pivot search maintains starts at node ``n1``,
path states are stored compactly as ``{gid: frozenset(end_nodes)}``
("which graphs contain the current path as a prefix from node 1, and at
which end positions").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .functions import StringFunction
from .graph import TransformationGraph

#: ``gid -> start_node -> tuple(end_nodes)``
Posting = Dict[int, Dict[int, Tuple[int, ...]]]

#: ``gid -> set(end_nodes)`` for paths anchored at node 1.
PathState = Dict[int, FrozenSet[int]]


class InvertedIndex:
    """Index of edge labels across a collection of graphs."""

    def __init__(self) -> None:
        self._postings: Dict[StringFunction, Dict[int, Dict[int, List[int]]]] = {}
        self.graphs: Dict[int, TransformationGraph] = {}
        self.last_node: Dict[int, int] = {}
        self._next_gid = 0
        self._frozen: Dict[StringFunction, Posting] = {}

    def add_graph(self, graph: TransformationGraph) -> int:
        """Register a graph; assigns and returns its gid."""
        gid = self._next_gid
        self._next_gid += 1
        graph.gid = gid
        self.graphs[gid] = graph
        self.last_node[gid] = graph.last_node
        for (i, j), label in graph.all_labels():
            by_graph = self._postings.setdefault(label, {})
            by_graph.setdefault(gid, {}).setdefault(i, []).append(j)
        self._frozen.clear()
        return gid

    def add_graphs(self, graphs: Iterable[TransformationGraph]) -> List[int]:
        return [self.add_graph(g) for g in graphs]

    def posting(self, label: StringFunction) -> Posting:
        """The (frozen) posting of ``label``; empty dict if unknown."""
        frozen = self._frozen.get(label)
        if frozen is None:
            raw = self._postings.get(label)
            if raw is None:
                return {}
            frozen = {
                gid: {start: tuple(sorted(ends)) for start, ends in starts.items()}
                for gid, starts in raw.items()
            }
            self._frozen[label] = frozen
        return frozen

    def posting_size(self, label: StringFunction) -> int:
        """Number of distinct graphs whose edge sets contain ``label``."""
        raw = self._postings.get(label)
        return len(raw) if raw is not None else 0

    def posting_size_live(
        self, label: StringFunction, live: Optional[Set[int]]
    ) -> int:
        """Distinct *live* graphs containing ``label``."""
        raw = self._postings.get(label)
        if raw is None:
            return 0
        if live is None:
            return len(raw)
        return sum(1 for gid in raw if gid in live)

    def initial_state(
        self, label: StringFunction, live: Optional[Set[int]] = None
    ) -> PathState:
        """Path state for the single-label path ``[label]`` from node 1."""
        state: PathState = {}
        for gid, starts in self.posting(label).items():
            if live is not None and gid not in live:
                continue
            ends = starts.get(1)
            if ends:
                state[gid] = frozenset(ends)
        return state

    def extend_state(
        self,
        state: PathState,
        label: StringFunction,
        live: Optional[Set[int]] = None,
    ) -> PathState:
        """Adjacency-aware intersection: append ``label`` to the path."""
        posting = self.posting(label)
        nxt: PathState = {}
        for gid, ends in state.items():
            if live is not None and gid not in live:
                continue
            starts = posting.get(gid)
            if starts is None:
                continue
            new_ends: Set[int] = set()
            for end in ends:
                follow = starts.get(end)
                if follow:
                    new_ends.update(follow)
            if new_ends:
                nxt[gid] = frozenset(new_ends)
        return nxt

    def complete_members(
        self, state: PathState, live: Optional[Set[int]] = None
    ) -> Tuple[int, ...]:
        """Graphs for which the path is a full transformation path.

        An entry ``<G, 1, j>`` is complete iff ``j`` is ``G``'s last
        node — the path spans ``G``'s entire output string.
        """
        members = []
        for gid, ends in state.items():
            if live is not None and gid not in live:
                continue
            if self.last_node[gid] in ends:
                members.append(gid)
        return tuple(sorted(members))

    def state_size(self, state: PathState, live: Optional[Set[int]] = None) -> int:
        """Number of graphs containing the path as a prefix."""
        if live is None:
            return len(state)
        return sum(1 for gid in state if gid in live)

    def __len__(self) -> int:
        return len(self.graphs)
