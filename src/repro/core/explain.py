"""Plain-language explanations of transformation programs.

The paper's expert reads a group's value pairs; a production tool also
tells them *what the shared transformation does*.  ``explain_program``
renders a DSL program as an English sentence, e.g.::

    take the text from the start of the last capital-letter run to the
    end of the last capital-letter run, then append ". ", then take the
    text from the start of the string to the end of the 1st
    lowercase-letter run

which is what ``Group.describe`` shows next to the member pairs.
"""

from __future__ import annotations

from typing import List

from .functions import ConstantStr, Prefix, SubStr, Suffix
from .positions import BEGIN, ConstPos, MatchPos
from .program import Program
from .terms import ConstTerm, RegexTerm

_TERM_NAMES = {
    "C": "capital-letter run",
    "l": "lowercase-letter run",
    "d": "digit run",
    "b": "whitespace run",
    "p": "punctuation run",
}


def _ordinal(k: int) -> str:
    if k == -1:
        return "last"
    if k < 0:
        return f"{_ordinal_word(-k)}-from-last"
    return _ordinal_word(k)


def _ordinal_word(n: int) -> str:
    if 10 <= n % 100 <= 20:
        suffix = "th"
    else:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(n % 10, "th")
    return f"{n}{suffix}"


def describe_term(term) -> str:
    if isinstance(term, RegexTerm):
        return _TERM_NAMES.get(term.name, f"'{term.pattern}' run")
    if isinstance(term, ConstTerm):
        return f"literal {term.literal!r}"
    return repr(term)


def describe_position(fn) -> str:
    """One position function as an English phrase."""
    if isinstance(fn, ConstPos):
        if fn.k == 1:
            return "the start of the string"
        if fn.k == -1:
            return "the end of the string"
        if fn.k > 0:
            return f"position {fn.k}"
        return f"position {-fn.k - 1} from the end"
    if isinstance(fn, MatchPos):
        side = "start" if fn.direction == BEGIN else "end"
        return f"the {side} of the {_ordinal(fn.k)} {describe_term(fn.term)}"
    return repr(fn)


def describe_function(fn) -> str:
    """One string function as an English clause."""
    if isinstance(fn, ConstantStr):
        return f"append {fn.text!r}"
    if isinstance(fn, SubStr):
        return (
            f"take the text from {describe_position(fn.left)} "
            f"to {describe_position(fn.right)}"
        )
    if isinstance(fn, Prefix):
        return (
            f"take a leading part of the {_ordinal(fn.k)} "
            f"{describe_term(fn.term)}"
        )
    if isinstance(fn, Suffix):
        return (
            f"take a trailing part of the {_ordinal(fn.k)} "
            f"{describe_term(fn.term)}"
        )
    return repr(fn)


def explain_program(program: Program) -> str:
    """The whole program as one English sentence."""
    clauses: List[str] = [describe_function(fn) for fn in program]
    if not clauses:
        return "produce the empty string"
    return ", then ".join(clauses)
