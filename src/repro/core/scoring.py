"""Static orders and constant-string scoring (Appendix E).

The position-function static order lives in
:mod:`repro.core.positions`; the longest-affix rule lives in
:mod:`repro.core.graph`.  This module implements the third static
order: scoring constant-string terms by

    ``score(tau) = freqStruc(tau) / sqrt(freqGlobal(tau))``

which prefers strings frequent inside a structure group but rare
elsewhere, so e.g. ``"Mr."`` beats single characters that are frequent
everywhere.  The top-scoring strings become ``ConstTerm`` vocabulary
entries for that structure group's graphs.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from .replacement import Replacement

_TOKEN_RE = re.compile(r"[A-Za-z]+|[0-9]+|[^\sA-Za-z0-9]+")


def tokenize_for_scoring(value: str) -> List[str]:
    """Candidate constant strings of a value: letter runs, digit runs,
    and punctuation runs."""
    return _TOKEN_RE.findall(value)


def global_frequencies(values: Iterable[str]) -> Counter:
    """Token frequencies over an entire column (``freqGlobal``)."""
    counts: Counter = Counter()
    for value in values:
        counts.update(tokenize_for_scoring(value))
    return counts


def group_frequencies(replacements: Sequence[Replacement]) -> Counter:
    """Token frequencies inside one structure group (``freqStruc``).

    Both sides contribute: a constant term is useful whenever it anchors
    positions in the *input* string, and either side may play that role
    across the two replacement directions.
    """
    counts: Counter = Counter()
    for replacement in replacements:
        counts.update(tokenize_for_scoring(replacement.lhs))
        counts.update(tokenize_for_scoring(replacement.rhs))
    return counts


def score_constant(token: str, freq_struc: int, freq_global: int) -> float:
    """``freqStruc / sqrt(freqGlobal)`` (Appendix E)."""
    if freq_global <= 0:
        return 0.0
    return freq_struc / math.sqrt(freq_global)


def top_constant_terms(
    replacements: Sequence[Replacement],
    global_counts: Counter,
    top_n: int,
) -> List[str]:
    """The ``top_n`` best-scoring constant-string terms for a structure
    group, deterministic under score ties (higher score first, then
    lexicographic)."""
    if top_n <= 0:
        return []
    struc = group_frequencies(replacements)
    scored: List[Tuple[float, str]] = []
    for token, freq in struc.items():
        if len(token) < 2:
            # Single characters score poorly by design (frequent both
            # inside and outside the group); skip them outright.
            continue
        scored.append(
            (score_constant(token, freq, global_counts.get(token, freq)), token)
        )
    scored.sort(key=lambda pair: (-pair[0], pair[1]))
    return [token for _, token in scored[:top_n]]
