"""Incremental (top-k) grouping (Section 6, Algorithms 5-7).

Instead of partitioning all candidates upfront, the incremental grouper
returns the *next largest* group per invocation (Theorem 6.4).  Each
graph carries a lower bound (the global thresholds of Section 5.2,
cached together with their witness paths) and an upper bound
(Lemma 6.2, seeded from posting-list lengths); graphs are visited in
descending upper-bound order and the scan stops as soon as the largest
lower bound ``tau`` dominates the remaining upper bounds.

With structure refinement (Section 7.2) each structure bucket becomes a
lazy source whose initial upper bound is simply its candidate count;
buckets are preprocessed (graphs + index built) only when their bound
reaches the front, which is where the paper's up-to-3-orders-of-
magnitude upfront-cost reduction comes from.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import DEFAULT_CONFIG, Config
from .grouping import (
    Group,
    build_graphs,
    build_group_vocabulary,
    singleton_group,
)
from .index import InvertedIndex
from .pivot import (
    GlobalBounds,
    PivotCandidate,
    SearchStats,
    initial_upper_bound,
    search_pivot,
)
from .program import Program
from .replacement import Replacement
from .structure import StructureKey, partition_by_structure, structure_key
from .terms import DEFAULT_VOCABULARY, TermVocabulary


class _Source:
    """One structure bucket behaving as a lazy top-k source."""

    def __init__(
        self,
        order: int,
        skey: Optional[StructureKey],
        replacements: Sequence[Replacement],
        vocabulary: TermVocabulary,
        config: Config,
        stats: SearchStats,
    ) -> None:
        self.order = order
        self.skey = skey
        self.replacements = list(replacements)
        self.vocabulary = vocabulary
        self.config = config
        self.stats = stats
        self.index: Optional[InvertedIndex] = None
        self.by_gid: Dict[int, Replacement] = {}
        self.graphless: List[Replacement] = []
        self.live: Set[int] = set()
        self.up: Dict[int, int] = {}
        self.bounds = GlobalBounds()
        self.cached: Optional[Group] = None
        self._cached_members: Tuple[int, ...] = ()

    # -- bounds ----------------------------------------------------------

    def bound(self) -> int:
        """Upper bound on the size of this source's next group."""
        if self.cached is not None:
            return self.cached.size
        if self.index is None:
            # Unpreprocessed: the structure-group size itself (Section
            # 7.2's upper-bound seeding).
            return len(self.replacements)
        best = max((self.up[g] for g in self.live), default=0)
        if self.graphless:
            best = max(best, 1)
        return best

    def exhausted(self) -> bool:
        if self.cached is not None:
            return False
        if self.index is None:
            return not self.replacements
        return not self.live and not self.graphless

    # -- preprocessing (Algorithm 6) --------------------------------------

    def preprocess(self) -> None:
        if self.index is not None:
            return
        self.index, self.by_gid, self.graphless = build_graphs(
            self.replacements, self.vocabulary, self.config
        )
        self.live = set(self.by_gid)
        for gid in self.live:
            self.up[gid] = initial_upper_bound(self.index.graphs[gid], self.index)

    # -- Algorithm 7 -------------------------------------------------------

    def peek(self) -> Optional[Group]:
        """Compute (and cache) this source's next largest group."""
        if self.cached is not None:
            return self.cached
        self.preprocess()
        assert self.index is not None
        if not self.live:
            return self._pop_graphless()

        self.bounds.refresh(self.live)
        witness = self.bounds.best(self.live)
        tau = witness.count if witness is not None else 0

        for gid in sorted(self.live, key=lambda g: (-self.up[g], g)):
            if self.up[gid] <= tau:
                break
            found = search_pivot(
                self.index.graphs[gid],
                self.index,
                self.config,
                live=self.live,
                threshold=tau,
                bounds=self.bounds,
                stats=self.stats,
            )
            if found is not None:
                tau = found.count
                witness = found
                self.up[gid] = found.count
            else:
                self.up[gid] = max(tau, 1)

        if witness is None:
            # Every bound collapsed to <= 0 is impossible while graphs
            # remain; a threshold-0 search on any graph yields a
            # singleton witness.
            gid = min(self.live)
            witness = search_pivot(
                self.index.graphs[gid],
                self.index,
                self.config,
                live=self.live,
                threshold=0,
                bounds=self.bounds,
                stats=self.stats,
            )
            assert witness is not None

        if witness.count <= 1 and self.graphless:
            # Tie between a singleton graph group and a graphless
            # singleton; emit graphless ones first for determinism.
            return self._pop_graphless()

        members = tuple(sorted(witness.members))
        group = Group(
            Program(witness.path),
            tuple(self.by_gid[g] for g in members),
            self.skey,
        )
        self.cached = group
        self._cached_members = members
        return group

    def _pop_graphless(self) -> Optional[Group]:
        if not self.graphless:
            return None
        group = singleton_group(self.graphless[0])
        self.cached = group
        self._cached_members = ()
        return group

    def pop(self) -> Group:
        """Emit the cached group and retire its members (Algorithm 5)."""
        assert self.cached is not None, "peek() before pop()"
        group = self.cached
        if self._cached_members:
            self.live.difference_update(self._cached_members)
            self.bounds.refresh(self.live)
        else:
            self.graphless = self.graphless[1:]
        self.cached = None
        self._cached_members = ()
        return group

    def remove_replacements(self, dead: Set[Replacement]) -> None:
        """Drop candidates invalidated by applied replacements (§7.1).

        A touched *preprocessed* source resets to an unpreprocessed
        survivor list (original bucket order) instead of patching its
        index in place.  Patching would leave the posting lists, upper
        bounds, and cached witnesses reflecting graphs built *before*
        the removal — and since equal-share pivot paths tie-break on
        search visit order, the emitted **program** would then depend
        on whether the source happened to be preprocessed before or
        after the removal.  That timing is exactly what differs between
        the lazy single-process grouper and the sharded feed (which
        refines every shard's local winner eagerly), so the reset is
        what makes ``--shards N`` publish byte-identical models.
        Untouched sources keep their state: their (deterministic)
        build-plus-pop history is the same on every path.
        """
        if self.index is None:
            self.replacements = [r for r in self.replacements if r not in dead]
            return
        alive = {self.by_gid[g] for g in self.live} | set(self.graphless)
        if not (alive & dead):
            return
        self.replacements = [
            r for r in self.replacements if r in alive and r not in dead
        ]
        self.index = None
        self.by_gid = {}
        self.graphless = []
        self.live = set()
        self.up = {}
        self.bounds = GlobalBounds()
        self.cached = None
        self._cached_members = ()


class IncrementalGrouper:
    """Produces replacement groups largest-first, lazily (Section 6)."""

    def __init__(
        self,
        replacements: Iterable[Replacement],
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        config: Config = DEFAULT_CONFIG,
        global_counts: Optional[Counter] = None,
    ) -> None:
        self.config = config
        self.stats = SearchStats()
        unique = list(dict.fromkeys(replacements))
        self._sources: List[_Source] = []
        self._best: Optional[_Source] = None
        if config.use_structure:
            buckets = partition_by_structure(unique)
            for order, skey in enumerate(sorted(buckets)):
                bucket = buckets[skey]
                vocab = build_group_vocabulary(
                    bucket, vocabulary, config, global_counts
                )
                self._sources.append(
                    _Source(order, skey, bucket, vocab, config, self.stats)
                )
        elif unique:
            vocab = build_group_vocabulary(
                unique, vocabulary, config, global_counts
            )
            self._sources.append(
                _Source(0, None, unique, vocab, config, self.stats)
            )

    def peek_best(self) -> Optional[Tuple[Group, Optional[StructureKey]]]:
        """Refine sources until the next-largest group is dominant.

        Returns ``(group, source structure key)`` *without* emitting the
        group — the caller decides whether to :meth:`pop_best` it.  This
        is the primitive the sharded streaming learner merges on: each
        shard peeks its local winner, and the parent pops only the
        global winner, so losing shards keep their (still cached, still
        valid) candidates for the next round.  The returned structure
        key is the winning *source's* key — the global tie-break: source
        order is the rank of the key in the sorted key universe, so
        comparing ``(size desc, key asc)`` across shards reproduces the
        single-process emission order exactly.

        Classic lazy top-k: repeatedly tighten the max-bound source's
        candidate until no rival source's upper bound exceeds it.
        """
        while True:
            candidates = [s for s in self._sources if not s.exhausted()]
            if not candidates:
                return None
            best = max(candidates, key=lambda s: (s.bound(), -s.order))
            if best.bound() <= 0:
                return None
            if best.cached is None:
                if best.peek() is None:
                    # Source turned out to be exhausted.
                    continue
                continue
            size = best.cached.size
            rivals = [
                s for s in candidates if s is not best and s.bound() > size
            ]
            if not rivals:
                self._best = best
                return best.cached, best.skey
            rivals.sort(key=lambda s: (-s.bound(), s.order))
            rivals[0].peek()

    def pop_best(self) -> Group:
        """Emit the group the last :meth:`peek_best` returned, retiring
        its members from its source.  Requires a preceding successful
        ``peek_best`` with no intervening :meth:`remove_replacements`
        that invalidated it; re-peek after removals."""
        best = self._best
        assert best is not None and best.cached is not None, (
            "pop_best() requires a fresh successful peek_best()"
        )
        self._best = None
        return best.pop()

    def next_group(self) -> Optional[Group]:
        """The next largest group across all sources, or ``None``."""
        peeked = self.peek_best()
        if peeked is None:
            return None
        return self.pop_best()

    def groups(self, limit: Optional[int] = None) -> Iterable[Group]:
        """Iterate groups largest-first until exhaustion or ``limit``."""
        produced = 0
        while limit is None or produced < limit:
            group = self.next_group()
            if group is None:
                return
            produced += 1
            yield group

    def remove_replacements(self, dead: Iterable[Replacement]) -> None:
        """Propagate Section 7.1 candidate invalidation to all sources."""
        dead_set = set(dead)
        if not dead_set:
            return
        self._best = None
        for source in self._sources:
            source.remove_replacements(dead_set)
