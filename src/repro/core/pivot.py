"""Pivot-path search (Algorithms 3 and 4).

The *pivot path* of a graph ``G`` is the transformation path of ``G``
shared by the largest number of graphs in the collection.  The search
DFS-walks ``G`` from node 1, maintaining the posting-list state of the
current path prefix, with two optional prunings (Section 5.2):

* **local threshold** — a prefix shared by no more graphs than the best
  complete path found so far cannot improve on it;
* **global threshold** — a complete path containing graph ``G'`` proves
  a lower bound on ``G'``'s pivot share-count; prefixes below the bound
  of the currently-searched graph are skipped.

Deviation noted in DESIGN.md: prefix share-counts upper-bound complete
share-counts, so pruning uses the prefix count while scoring, bound
updates and group membership use the complete count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..config import DEFAULT_CONFIG, Config
from .functions import ConstantStr, StringFunction, label_sort_key
from .graph import TransformationGraph
from .index import InvertedIndex, PathState


@dataclass(frozen=True)
class PivotCandidate:
    """A complete transformation path with its sharing graphs."""

    count: int
    key: Tuple
    path: Tuple[StringFunction, ...]
    members: Tuple[int, ...]

    def restricted_to(self, live: Set[int]) -> Optional["PivotCandidate"]:
        """The candidate with dead members dropped (still a valid path
        shared by the surviving members), or ``None`` if none survive."""
        members = tuple(gid for gid in self.members if gid in live)
        if not members:
            return None
        if len(members) == len(self.members):
            return self
        return PivotCandidate(len(members), self.key, self.path, members)


@dataclass
class GlobalBounds:
    """Per-graph lower bounds and their witness paths (Algorithm 4 /
    Section 6).

    ``lo[gid]`` is the best known lower bound on the share-count of
    ``gid``'s pivot path; ``witness[gid]`` is a complete path achieving
    it.  Keeping the witness fixes the printed Algorithm 7's corner case
    where the next-largest group size equals tau (see DESIGN.md §5.4).
    """

    lo: Dict[int, int] = field(default_factory=dict)
    witness: Dict[int, PivotCandidate] = field(default_factory=dict)

    def lower(self, gid: int) -> int:
        return self.lo.get(gid, 1)

    def record(self, candidate: PivotCandidate) -> None:
        for gid in candidate.members:
            if candidate.count > self.lo.get(gid, 1) or (
                candidate.count == self.lo.get(gid, 1)
                and gid not in self.witness
            ):
                self.lo[gid] = candidate.count
                self.witness[gid] = candidate

    def refresh(self, live: Set[int]) -> None:
        """Filter witnesses after group removal; bounds stay valid
        because path containment survives member deletion."""
        for gid in list(self.witness):
            if gid not in live:
                del self.witness[gid]
                self.lo.pop(gid, None)
                continue
            restricted = self.witness[gid].restricted_to(live)
            if restricted is None:
                del self.witness[gid]
                self.lo.pop(gid, None)
            else:
                self.witness[gid] = restricted
                self.lo[gid] = restricted.count

    def best(self, live: Set[int]) -> Optional[PivotCandidate]:
        """The largest-count witness among live graphs (tau's witness)."""
        top: Optional[PivotCandidate] = None
        for gid, cand in self.witness.items():
            if gid not in live:
                continue
            if top is None or cand.count > top.count or (
                cand.count == top.count and cand.key < top.key
            ):
                top = cand
        return top


@dataclass
class SearchStats:
    """Instrumentation for the efficiency experiments (Figure 9)."""

    expansions: int = 0
    completions: int = 0
    prunes: int = 0
    searches: int = 0

    def merge(self, other: "SearchStats") -> None:
        self.expansions += other.expansions
        self.completions += other.completions
        self.prunes += other.prunes
        self.searches += other.searches


def search_pivot(
    graph: TransformationGraph,
    index: InvertedIndex,
    config: Config = DEFAULT_CONFIG,
    live: Optional[Set[int]] = None,
    threshold: int = 0,
    bounds: Optional[GlobalBounds] = None,
    stats: Optional[SearchStats] = None,
) -> Optional[PivotCandidate]:
    """Find the best transformation path of ``graph`` shared by strictly
    more than ``threshold`` graphs, or ``None`` if there is none.

    ``threshold=0`` always succeeds: the all-constant one-edge path is
    shared by at least ``graph`` itself.  With
    ``config.local_threshold`` / ``config.global_threshold`` disabled
    the search degenerates to the OneShot full enumeration of
    Algorithm 3.

    Beyond the paper's two prunings, the DFS applies three
    work-limiting devices in the spirit of Appendix E's accelerations
    (see DESIGN.md §5): posting-size pre-filtering before any join,
    dedup of sibling extensions that reach the same node with the same
    posting state, best-first child ordering (so the local threshold
    tightens as early as possible), and a hard expansion budget
    (``config.max_search_expansions``) beyond which the best path found
    so far is returned.
    """
    if stats is not None:
        stats.searches += 1
    best: List = [threshold, None]  # [best_count, Optional[PivotCandidate]]
    floor = bounds.lower(graph.gid) if (bounds and config.global_threshold) else 0
    budget = [config.max_search_expansions]
    _dfs(
        graph,
        index,
        config,
        live,
        node=1,
        state=None,
        path=[],
        best=best,
        floor=floor,
        bounds=bounds,
        stats=stats,
        budget=budget,
    )
    if best[1] is None and threshold <= 0:
        # Guarantee for threshold-0 searches (even under a tiny search
        # budget): the whole-target constant label always exists, so
        # every graph has at least its trivial singleton path.
        label = ConstantStr(graph.target)
        best[1] = PivotCandidate(
            1, (label_sort_key(label),), (label,), (graph.gid,)
        )
    return best[1]


def _state_key(state: PathState) -> Tuple:
    """Hashable identity of a posting state (for sibling dedup)."""
    return tuple(sorted((gid, ends) for gid, ends in state.items()))


def _dfs(
    graph: TransformationGraph,
    index: InvertedIndex,
    config: Config,
    live: Optional[Set[int]],
    node: int,
    state: Optional[PathState],
    path: List[StringFunction],
    best: List,
    floor: int,
    bounds: Optional[GlobalBounds],
    stats: Optional[SearchStats],
    budget: List,
) -> None:
    if node == graph.last_node:
        members = (
            index.complete_members(state, live) if state is not None else ()
        )
        if not members:
            return
        if all(isinstance(f, ConstantStr) for f in path):
            # An input-independent program ("everything becomes T") is
            # not a transformation: grouping unrelated pairs under it
            # has no generalization value and the expert always rejects
            # it (DESIGN.md §5).  It only ever explains its own graph.
            members = (graph.gid,)
        count = len(members)
        candidate = PivotCandidate(
            count,
            tuple(label_sort_key(f) for f in path),
            tuple(path),
            members,
        )
        if stats is not None:
            stats.completions += 1
        if bounds is not None:
            bounds.record(candidate)
        if count > best[0] or (
            count == best[0]
            and best[1] is not None
            and candidate.key < best[1].key
        ):
            best[0] = count
            best[1] = candidate
        return

    if len(path) >= config.max_path_length or budget[0] <= 0:
        return

    prune_local = config.local_threshold
    # Gather, dedupe, and order the extensions of this node before
    # recursing: exploring the widest-shared extension first raises the
    # local threshold quickly, which is what makes the pruning bite.
    extensions: Dict[Tuple, Tuple[int, StringFunction, PathState]] = {}
    state_size = len(state) if state is not None else len(index)
    for j, labels in graph.out_edges.get(node, ()):
        for label in labels:
            # Cheap pre-filter: a join can never exceed the label's own
            # posting size, so skip the join outright when it cannot
            # beat the thresholds.
            cap = min(state_size, index.posting_size(label))
            if prune_local and cap <= best[0]:
                if stats is not None:
                    stats.prunes += 1
                continue
            if config.global_threshold and cap < floor:
                if stats is not None:
                    stats.prunes += 1
                continue
            if state is None:
                nxt = index.initial_state(label, live)
            else:
                nxt = index.extend_state(state, label, live)
            size = len(nxt)
            if size == 0:
                continue
            if prune_local and size <= best[0]:
                if stats is not None:
                    stats.prunes += 1
                continue
            if config.global_threshold and size < floor:
                if stats is not None:
                    stats.prunes += 1
                continue
            key = (j, _state_key(nxt))
            held = extensions.get(key)
            if held is None or label_sort_key(label) < label_sort_key(held[1]):
                extensions[key] = (size, label, nxt)

    ordered = sorted(
        extensions.items(),
        key=lambda item: (-item[1][0], label_sort_key(item[1][1])),
    )
    for (j, _skey), (size, label, nxt) in ordered:
        # Thresholds may have tightened while exploring siblings.
        if prune_local and size <= best[0]:
            if stats is not None:
                stats.prunes += 1
            continue
        if budget[0] <= 0:
            return
        budget[0] -= 1
        if stats is not None:
            stats.expansions += 1
        path.append(label)
        _dfs(
            graph,
            index,
            config,
            live,
            j,
            nxt,
            path,
            best,
            floor,
            bounds,
            stats,
            budget,
        )
        path.pop()


def initial_upper_bound(
    graph: TransformationGraph,
    index: InvertedIndex,
    live: Optional[Set[int]] = None,
) -> int:
    """Lemma 6.2 upper bound on the pivot-path share-count of ``graph``.

    Every transformation path covers every output position ``k``; some
    edge ``(i, j)`` with ``i <= k < j`` is on the path, so the largest
    posting size among labels of edges covering ``k`` bounds the share
    count.  The tightest position gives the graph's initial bound.
    """
    n = len(graph.target)
    ub = [0] * (n + 1)  # 1-based positions 1..n
    for (i, j), labels in graph.edges.items():
        edge_max = 0
        for label in labels:
            size = index.posting_size_live(label, live)
            if size > edge_max:
                edge_max = size
        for k in range(i, j):
            if edge_max > ub[k]:
                ub[k] = edge_max
    positions = ub[1:] if n >= 1 else []
    return max(1, min(positions)) if positions else 1
