"""String functions of the DSL (Appendix B) plus the affix extension
(Appendix D).

A string function maps an input string to one or more output strings:

* ``ConstantStr(text)`` — always outputs ``text``.
* ``SubStr(left, right)`` — outputs ``s[l, r)`` where ``l``/``r`` come
  from two position functions.
* ``Prefix(term, k)`` — outputs any *proper* prefix of the ``k``-th
  match of ``term`` in ``s`` (paper extension, Appendix D).
* ``Suffix(term, k)`` — likewise for proper suffixes.

``ConstantStr`` and ``SubStr`` are single-valued; the affix functions
are multi-valued, which is exactly why the original FlashFill DSL could
not express them (Appendix D).  Program evaluation therefore works with
*output sets*; see :mod:`repro.core.program`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .positions import position_from_dict
from .terms import MatchContext, term_from_dict


@dataclass(frozen=True)
class ConstantStr:
    """Outputs a constant string regardless of the input."""

    text: str

    def outputs(self, ctx: MatchContext) -> List[str]:
        return [self.text]

    def produces(self, ctx: MatchContext, out: str) -> bool:
        return out == self.text

    def canonical(self) -> Tuple:
        return ("const", self.text)

    def to_dict(self) -> Dict:
        return {"kind": "const", "text": self.text}

    def __repr__(self) -> str:
        return f"ConstantStr({self.text!r})"


@dataclass(frozen=True)
class SubStr:
    """Outputs ``s[l, r)`` located by two position functions."""

    left: object  # PositionFunction
    right: object  # PositionFunction

    def outputs(self, ctx: MatchContext) -> List[str]:
        l = self.left.evaluate(ctx)
        r = self.right.evaluate(ctx)
        if l is None or r is None or not 1 <= l < r <= len(ctx) + 1:
            return []
        return [ctx.s[l - 1 : r - 1]]

    def produces(self, ctx: MatchContext, out: str) -> bool:
        produced = self.outputs(ctx)
        return bool(produced) and produced[0] == out

    def canonical(self) -> Tuple:
        return ("substr", self.left.canonical(), self.right.canonical())

    def to_dict(self) -> Dict:
        return {
            "kind": "substr",
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }

    def __repr__(self) -> str:
        return f"SubStr({self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class Prefix:
    """Outputs any proper prefix of the k-th match of ``term`` in ``s``."""

    term: object
    k: int

    def _match_text(self, ctx: MatchContext) -> Optional[str]:
        matches = ctx.matches(self.term)
        m = len(matches)
        idx = self.k - 1 if self.k > 0 else m + self.k
        if self.k == 0 or not 0 <= idx < m:
            return None
        beg, end = matches[idx]
        return ctx.s[beg - 1 : end - 1]

    def outputs(self, ctx: MatchContext) -> List[str]:
        text = self._match_text(ctx)
        if text is None:
            return []
        return [text[:i] for i in range(1, len(text))]

    def produces(self, ctx: MatchContext, out: str) -> bool:
        text = self._match_text(ctx)
        return (
            text is not None
            and 0 < len(out) < len(text)
            and text.startswith(out)
        )

    def canonical(self) -> Tuple:
        return ("prefix", self.term.sort_key(), self.k)

    def to_dict(self) -> Dict:
        return {"kind": "prefix", "term": self.term.to_dict(), "k": self.k}

    def __repr__(self) -> str:
        return f"Prefix({self.term!r}, {self.k})"


@dataclass(frozen=True)
class Suffix:
    """Outputs any proper suffix of the k-th match of ``term`` in ``s``."""

    term: object
    k: int

    def _match_text(self, ctx: MatchContext) -> Optional[str]:
        matches = ctx.matches(self.term)
        m = len(matches)
        idx = self.k - 1 if self.k > 0 else m + self.k
        if self.k == 0 or not 0 <= idx < m:
            return None
        beg, end = matches[idx]
        return ctx.s[beg - 1 : end - 1]

    def outputs(self, ctx: MatchContext) -> List[str]:
        text = self._match_text(ctx)
        if text is None:
            return []
        return [text[i:] for i in range(1, len(text))]

    def produces(self, ctx: MatchContext, out: str) -> bool:
        text = self._match_text(ctx)
        return (
            text is not None
            and 0 < len(out) < len(text)
            and text.endswith(out)
        )

    def canonical(self) -> Tuple:
        return ("suffix", self.term.sort_key(), self.k)

    def to_dict(self) -> Dict:
        return {"kind": "suffix", "term": self.term.to_dict(), "k": self.k}

    def __repr__(self) -> str:
        return f"Suffix({self.term!r}, {self.k})"


StringFunction = object  # ConstantStr | SubStr | Prefix | Suffix


def function_from_dict(payload: Dict) -> StringFunction:
    """Inverse of the string functions' ``to_dict`` methods."""
    kind = payload.get("kind")
    if kind == "const":
        return ConstantStr(str(payload["text"]))
    if kind == "substr":
        return SubStr(
            position_from_dict(payload["left"]),
            position_from_dict(payload["right"]),
        )
    if kind == "prefix":
        return Prefix(term_from_dict(payload["term"]), int(payload["k"]))
    if kind == "suffix":
        return Suffix(term_from_dict(payload["term"]), int(payload["k"]))
    raise ValueError(f"unknown string-function kind: {kind!r}")


def label_sort_key(fn: StringFunction) -> Tuple:
    """Deterministic total order over string-function labels.

    Used to sort edge label lists so pivot-path DFS explores labels in a
    canonical order, making tie-breaking reproducible across graphs.
    SubStr labels come first (they generalize best across replacements),
    then affix labels, then constants.
    """
    if isinstance(fn, SubStr):
        return (0,) + fn.canonical()
    if isinstance(fn, (Prefix, Suffix)):
        return (1,) + fn.canonical()
    return (2,) + fn.canonical()
