"""Exact optimal partition for small inputs (Definition 3).

The paper proves the optimal partition problem NP-complete by reduction
from set cover (Section 4.2) and therefore solves it greedily.  For
*small* replacement collections we can afford the exact answer: every
transformation path of every graph is enumerated, identical paths are
merged into candidate sets of graphs, and a branch-and-bound set cover
finds the minimum number of groups.  Tests use this to quantify how
close the greedy pivot-path partition gets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..config import DEFAULT_CONFIG, Config
from .functions import StringFunction, label_sort_key
from .graph import TransformationGraph, build_graph
from .replacement import Replacement
from .terms import DEFAULT_VOCABULARY, TermVocabulary


def enumerate_paths(
    graph: TransformationGraph, max_length: int = 6, cap: int = 20000
) -> List[Tuple[StringFunction, ...]]:
    """All transformation paths of a graph up to ``max_length`` labels.

    Exponential by design (Theorem 4.2's path space); ``cap`` guards
    accidental misuse on large graphs.
    """
    paths: List[Tuple[StringFunction, ...]] = []
    stack: List[Tuple[int, Tuple[StringFunction, ...]]] = [(1, ())]
    while stack:
        node, prefix = stack.pop()
        if node == graph.last_node:
            paths.append(prefix)
            if len(paths) > cap:
                raise ValueError("path enumeration cap exceeded")
            continue
        if len(prefix) >= max_length:
            continue
        for j, labels in graph.out_edges.get(node, ()):
            for label in labels:
                stack.append((j, prefix + (label,)))
    return paths


def path_cover_sets(
    replacements: Sequence[Replacement],
    vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
    config: Config = DEFAULT_CONFIG,
) -> Dict[Tuple, FrozenSet[int]]:
    """Map each distinct path (by canonical key) to the set of
    replacement indices whose graphs contain it."""
    cover: Dict[Tuple, Set[int]] = {}
    for idx, replacement in enumerate(replacements):
        graph = build_graph(replacement.lhs, replacement.rhs, vocabulary, config)
        if graph is None:
            # Graphless replacements can only ever be singletons.
            cover[("__singleton__", idx)] = {idx}
            continue
        for path in enumerate_paths(graph, config.max_path_length):
            key = tuple(f.canonical() for f in path)
            cover.setdefault(key, set()).add(idx)
    return {key: frozenset(v) for key, v in cover.items()}


def minimum_partition_size(
    replacements: Sequence[Replacement],
    vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
    config: Config = DEFAULT_CONFIG,
) -> int:
    """The minimum number of groups in any valid partition (exact).

    Branch and bound over the set-cover formulation from the paper's
    NP-completeness proof: pick an uncovered element, branch on the
    candidate sets containing it.  Only feasible for small inputs.
    """
    cover = path_cover_sets(replacements, vocabulary, config)
    universe = frozenset(range(len(replacements)))
    if not universe:
        return 0
    sets = sorted(set(cover.values()), key=lambda s: (-len(s), sorted(s)))
    best: List[int] = [len(universe)]  # singletons always work

    def bound(remaining: FrozenSet[int]) -> int:
        largest = max((len(s & remaining) for s in sets), default=0)
        if largest == 0:
            return 10**9
        return -(-len(remaining) // largest)  # ceil

    def recurse(remaining: FrozenSet[int], used: int) -> None:
        if not remaining:
            best[0] = min(best[0], used)
            return
        if used + bound(remaining) >= best[0]:
            return
        element = min(remaining)
        for candidate in sets:
            if element in candidate:
                recurse(remaining - candidate, used + 1)

    recurse(universe, 0)
    return best[0]
