"""Terms: the token classes the DSL's regexes are built from.

The paper (Section 7.2 and Appendix B) uses four *regex-based terms*

    ``TC = [A-Z]+``   capital letters
    ``Tl = [a-z]+``   lowercase letters
    ``Td = [0-9]+``   digits
    ``Tb = \\s+``      whitespace

plus *constant-string terms* (a literal that matches only itself) and,
for structure signatures, *single-character terms* for characters no
regex-based term covers.

All positions in this package are **1-based**, matching the paper's
formulas: a match of term ``tau`` occupying characters ``i..j-1`` of
``s`` is reported as the half-open span ``[i, j)`` with
``beg = i`` and ``end = j``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


Span = Tuple[int, int]  # 1-based, half-open [beg, end)


@dataclass(frozen=True)
class RegexTerm:
    """A maximal-run character-class term such as ``TC = [A-Z]+``."""

    name: str
    pattern: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_compiled", re.compile(self.pattern))

    def matches(self, s: str) -> List[Span]:
        """All maximal matches of the term in ``s`` as 1-based spans."""
        return [(m.start() + 1, m.end() + 1) for m in self._compiled.finditer(s)]

    def sort_key(self) -> Tuple:
        return ("re", self.name)

    def to_dict(self) -> Dict:
        return {"kind": "regex", "name": self.name, "pattern": self.pattern}

    def __repr__(self) -> str:
        return f"T{self.name}"


@dataclass(frozen=True)
class ConstTerm:
    """A constant-string term: matches exactly its literal text.

    Occurrences are found left-to-right and non-overlapping, mirroring
    ``re.finditer`` on the escaped literal.
    """

    literal: str

    def matches(self, s: str) -> List[Span]:
        spans: List[Span] = []
        if not self.literal:
            return spans
        start = 0
        while True:
            pos = s.find(self.literal, start)
            if pos < 0:
                break
            spans.append((pos + 1, pos + 1 + len(self.literal)))
            start = pos + len(self.literal)
        return spans

    def sort_key(self) -> Tuple:
        return ("str", self.literal)

    def to_dict(self) -> Dict:
        return {"kind": "const", "literal": self.literal}

    def __repr__(self) -> str:
        return f"T{self.literal!r}"


#: The paper's four pre-defined regex-based terms.
CAPITALS = RegexTerm("C", r"[A-Z]+")
LOWERCASE = RegexTerm("l", r"[a-z]+")
DIGITS = RegexTerm("d", r"[0-9]+")
WHITESPACE = RegexTerm("b", r"\s+")

#: Convenience punctuation term used in the paper's Figure 5 example
#: (``Tp``); not part of the default vocabulary.
PUNCTUATION = RegexTerm("p", r"[^\sA-Za-z0-9]+")

DEFAULT_REGEX_TERMS: Tuple[RegexTerm, ...] = (
    CAPITALS,
    LOWERCASE,
    DIGITS,
    WHITESPACE,
)


def term_from_dict(payload: Dict):
    """Inverse of ``RegexTerm.to_dict`` / ``ConstTerm.to_dict``.

    Frozen dataclasses compare by field values, so reconstructed terms
    are equal to (and hash like) the originals; well-known regex terms
    round-trip to the shared module-level instances.
    """
    kind = payload.get("kind")
    if kind == "regex":
        term = RegexTerm(str(payload["name"]), str(payload["pattern"]))
        for known in DEFAULT_REGEX_TERMS + (PUNCTUATION,):
            if known == term:
                return known
        return term
    if kind == "const":
        return ConstTerm(str(payload["literal"]))
    raise ValueError(f"unknown term kind: {kind!r}")


class TermVocabulary:
    """The set of terms available to ``MatchPos`` and the affix functions.

    A vocabulary always contains the regex-based terms; constant-string
    terms can be added per structure group (Appendix E scores them by
    ``freqStruc / sqrt(freqGlobal)``).
    """

    def __init__(
        self,
        regex_terms: Sequence[RegexTerm] = DEFAULT_REGEX_TERMS,
        constant_terms: Sequence[ConstTerm] = (),
    ) -> None:
        self.regex_terms: Tuple[RegexTerm, ...] = tuple(regex_terms)
        self.constant_terms: Tuple[ConstTerm, ...] = tuple(constant_terms)

    @property
    def all_terms(self) -> Tuple:
        return self.regex_terms + self.constant_terms

    def with_constant_terms(self, literals: Sequence[str]) -> "TermVocabulary":
        """A copy of this vocabulary extended with constant terms."""
        existing = {t.literal for t in self.constant_terms}
        extra = tuple(
            ConstTerm(lit) for lit in literals if lit and lit not in existing
        )
        return TermVocabulary(self.regex_terms, self.constant_terms + extra)

    def to_dict(self) -> Dict:
        return {
            "regex_terms": [t.to_dict() for t in self.regex_terms],
            "constant_terms": [t.to_dict() for t in self.constant_terms],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TermVocabulary":
        return cls(
            [term_from_dict(t) for t in payload.get("regex_terms", ())],
            [term_from_dict(t) for t in payload.get("constant_terms", ())],
        )

    def __repr__(self) -> str:
        return (
            f"TermVocabulary(regex={list(self.regex_terms)}, "
            f"const={list(self.constant_terms)})"
        )


DEFAULT_VOCABULARY = TermVocabulary()


class MatchContext:
    """Caches term matches for one input string.

    Evaluating many position functions against the same string is the
    hot path of program evaluation; this memoizes ``term.matches(s)``.
    """

    def __init__(self, s: str, vocabulary: TermVocabulary = DEFAULT_VOCABULARY):
        self.s = s
        self.vocabulary = vocabulary
        self._matches: Dict[object, List[Span]] = {}

    def matches(self, term) -> List[Span]:
        found = self._matches.get(term)
        if found is None:
            found = term.matches(self.s)
            self._matches[term] = found
        return found

    def __len__(self) -> int:
        return len(self.s)
