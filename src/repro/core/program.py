"""Transformation programs (Definition 5).

A program is a sequence of string functions; its output is the
concatenation of their outputs.  With the affix extension a function may
be multi-valued, so a program denotes a *set* of outputs; a program is
consistent with a replacement ``s -> t`` iff ``t`` is in that set
(Appendix D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .functions import StringFunction, function_from_dict, label_sort_key
from .terms import DEFAULT_VOCABULARY, MatchContext, TermVocabulary


@dataclass(frozen=True)
class Program:
    """An immutable sequence of string functions (``f1 ⊕ f2 ⊕ ... ⊕ fn``)."""

    functions: Tuple[StringFunction, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.functions, tuple):
            object.__setattr__(self, "functions", tuple(self.functions))

    def __len__(self) -> int:
        return len(self.functions)

    def __iter__(self):
        return iter(self.functions)

    def canonical(self) -> Tuple:
        return tuple(f.canonical() for f in self.functions)

    def sort_key(self) -> Tuple:
        return tuple(label_sort_key(f) for f in self.functions)

    def evaluate(
        self,
        s: str,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        max_outputs: int = 64,
    ) -> Set[str]:
        """All outputs of the program on ``s`` (capped at ``max_outputs``).

        Single-valued programs (no affix functions) return a set of at
        most one string.
        """
        ctx = MatchContext(s, vocabulary)
        partials: Set[str] = {""}
        for fn in self.functions:
            outs = fn.outputs(ctx)
            if not outs:
                return set()
            nxt: Set[str] = set()
            for head in partials:
                for out in outs:
                    nxt.add(head + out)
                    if len(nxt) > max_outputs:
                        break
            partials = nxt
        return partials

    def evaluate_unique(
        self, s: str, vocabulary: TermVocabulary = DEFAULT_VOCABULARY
    ) -> Optional[str]:
        """The single output if the program is deterministic on ``s``."""
        outs = self.evaluate(s, vocabulary)
        return next(iter(outs)) if len(outs) == 1 else None

    def produces(
        self,
        s: str,
        t: str,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
    ) -> bool:
        """Is the program consistent with the replacement ``s -> t``?

        Implemented as a forward reachability DP over positions of ``t``
        so multi-valued affix functions do not blow up: state ``p``
        means the first ``p`` characters of ``t`` have been produced.
        """
        ctx = MatchContext(s, vocabulary)
        reachable: Set[int] = {0}
        for fn in self.functions:
            nxt: Set[int] = set()
            for p in reachable:
                for q in _extensions(fn, ctx, t, p):
                    nxt.add(q)
            if not nxt:
                return False
            reachable = nxt
        return len(t) in reachable

    def describe(self) -> str:
        """Human-readable rendering, e.g. for group review UIs."""
        return " ⊕ ".join(repr(f) for f in self.functions)

    def to_dict(self) -> Dict:
        """JSON-safe rendering; inverse is :meth:`from_dict`."""
        return {"functions": [f.to_dict() for f in self.functions]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "Program":
        return cls(
            tuple(
                function_from_dict(f) for f in payload.get("functions", ())
            )
        )


def _extensions(fn: StringFunction, ctx: MatchContext, t: str, p: int) -> List[int]:
    """Positions reachable from ``p`` in ``t`` by one application of ``fn``."""
    ends: List[int] = []
    for out in fn.outputs(ctx):
        if out and t.startswith(out, p):
            ends.append(p + len(out))
    return ends


def make_program(functions: Sequence[StringFunction]) -> Program:
    """Convenience constructor accepting any sequence of functions."""
    return Program(tuple(functions))
