"""Position functions of the DSL (Appendix B).

A position function maps an input string ``s`` to a 1-based position in
``1 .. |s|+1`` (or fails).  Two kinds exist:

* ``ConstPos(k)`` — the fixed position ``k`` (``k > 0``, forward) or
  ``|s| + 2 + k`` (``k < 0``, backward).
* ``MatchPos(term, k, direction)`` — the beginning (``B``) or ending
  (``E``) position of the ``k``-th match of ``term`` in ``s``; negative
  ``k`` counts from the back (``k = -1`` is the last match).

The module also builds the per-position candidate table ``P`` used by
the transformation-graph constructor (Appendix C) and applies the
static preference order of Appendix E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .terms import (
    ConstTerm,
    MatchContext,
    RegexTerm,
    TermVocabulary,
    term_from_dict,
)

BEGIN = "B"
END = "E"


@dataclass(frozen=True)
class ConstPos:
    """``ConstPos(k)``: an absolute position, forward or backward."""

    k: int

    def evaluate(self, ctx: MatchContext) -> Optional[int]:
        n = len(ctx)
        if self.k > 0:
            return self.k if self.k <= n + 1 else None
        if self.k < 0:
            pos = n + 2 + self.k
            return pos if pos >= 1 else None
        return None

    def sort_key(self) -> Tuple:
        # ConstPos ranks below MatchPos in the static order; forward
        # positions rank above backward ones.
        return (2, 0 if self.k > 0 else 1, abs(self.k))

    def canonical(self) -> Tuple:
        return ("cp", self.k)

    def to_dict(self) -> Dict:
        return {"kind": "cp", "k": self.k}

    def __repr__(self) -> str:
        return f"ConstPos({self.k})"


@dataclass(frozen=True)
class MatchPos:
    """``MatchPos(term, k, direction)``: a match-relative position."""

    term: object  # RegexTerm | ConstTerm
    k: int
    direction: str  # BEGIN | END

    def evaluate(self, ctx: MatchContext) -> Optional[int]:
        matches = ctx.matches(self.term)
        m = len(matches)
        if self.k > 0:
            idx = self.k - 1
        elif self.k < 0:
            idx = m + self.k
        else:
            return None
        if not 0 <= idx < m:
            return None
        beg, end = matches[idx]
        return beg if self.direction == BEGIN else end

    def sort_key(self) -> Tuple:
        # Regex-based terms outrank constant-string terms ("wider
        # character class is better", Appendix E); small absolute match
        # indices outrank large ones; forward outranks backward.
        term_rank = 0 if isinstance(self.term, RegexTerm) else 1
        return (
            term_rank,
            abs(self.k),
            0 if self.k > 0 else 1,
            0 if self.direction == BEGIN else 1,
            self.term.sort_key(),
        )

    def canonical(self) -> Tuple:
        return ("mp", self.term.sort_key(), self.k, self.direction)

    def to_dict(self) -> Dict:
        return {
            "kind": "mp",
            "term": self.term.to_dict(),
            "k": self.k,
            "direction": self.direction,
        }

    def __repr__(self) -> str:
        return f"MatchPos({self.term!r}, {self.k}, {self.direction})"


PositionFunction = object  # ConstPos | MatchPos


def position_from_dict(payload: Dict) -> PositionFunction:
    """Inverse of ``ConstPos.to_dict`` / ``MatchPos.to_dict``."""
    kind = payload.get("kind")
    if kind == "cp":
        return ConstPos(int(payload["k"]))
    if kind == "mp":
        direction = payload["direction"]
        if direction not in (BEGIN, END):
            raise ValueError(f"bad MatchPos direction: {direction!r}")
        return MatchPos(
            term_from_dict(payload["term"]), int(payload["k"]), direction
        )
    raise ValueError(f"unknown position-function kind: {kind!r}")


def position_candidates(
    ctx: MatchContext,
    max_per_position: int = 0,
    boundaries_only: bool = False,
) -> Dict[int, List[PositionFunction]]:
    """Build ``P``: position -> position functions locating it (App. C).

    For every match ``[x, y)`` of every vocabulary term, the forward and
    backward ``MatchPos`` variants land in ``P[x]`` / ``P[y]``; every
    position additionally gets its forward and backward ``ConstPos``.

    When ``max_per_position`` is positive, each list is truncated to its
    best entries under the static order (Appendix E): this is the
    "skip a position function if a larger one locates the same
    position" rule.

    With ``boundaries_only`` (the Appendix E static order in its
    strictest form) only term-match boundaries and the two string ends
    carry position functions: mid-token positions are unreachable by
    ``SubStr``, which kills the degenerate per-character extraction
    programs — the affix functions (Appendix D) cover legitimate
    mid-token cuts instead.
    """
    s = ctx.s
    table: Dict[int, List[PositionFunction]] = {
        k: [] for k in range(1, len(s) + 2)
    }
    for term in ctx.vocabulary.all_terms:
        matches = ctx.matches(term)
        m = len(matches)
        for idx, (x, y) in enumerate(matches, start=1):
            back = idx - m - 1
            table[x].append(MatchPos(term, idx, BEGIN))
            table[x].append(MatchPos(term, back, BEGIN))
            table[y].append(MatchPos(term, idx, END))
            table[y].append(MatchPos(term, back, END))
    last = len(s) + 1
    for k in range(1, last + 1):
        if boundaries_only and not table[k] and k not in (1, last):
            continue
        table[k].append(ConstPos(k))
        table[k].append(ConstPos(k - len(s) - 2))
        entries = sorted(set(table[k]), key=_static_key)
        if max_per_position > 0:
            entries = entries[:max_per_position]
        table[k] = entries
    return table


def _static_key(fn: PositionFunction) -> Tuple:
    """Total static order: MatchPos-regex < MatchPos-const < ConstPos."""
    if isinstance(fn, MatchPos):
        head = 0 if isinstance(fn.term, RegexTerm) else 1
        return (head,) + fn.sort_key()
    return (2,) + fn.sort_key()
