"""One-shot unsupervised grouping (Algorithm 2 / Section 5).

``unsupervised_grouping`` partitions a set of candidate replacements
into groups that share a transformation program: every replacement's
graph is searched for its *pivot path* and graphs with equal pivot
paths form a group.  The two Figure 9 variants are driven by
``Config``: ``OneShot`` disables both early-termination prunings,
``EarlyTerm`` enables them (Section 5.2).  Structure refinement
(Section 7.2) pre-partitions candidates and mines per-structure-group
constant-string terms (Appendix E) before graphs are built.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import DEFAULT_CONFIG, Config
from .functions import ConstantStr
from .graph import _ALNUM_TOKEN, TransformationGraph, build_graph
from .index import InvertedIndex
from .pivot import GlobalBounds, PivotCandidate, SearchStats, search_pivot
from .program import Program
from .replacement import Replacement
from .scoring import top_constant_terms
from .structure import StructureKey, partition_by_structure, structure_key
from .terms import DEFAULT_VOCABULARY, TermVocabulary


@dataclass(frozen=True)
class Group:
    """A group of replacements sharing one transformation program."""

    program: Program
    replacements: Tuple[Replacement, ...]
    structure: Optional[StructureKey] = None

    @property
    def size(self) -> int:
        return len(self.replacements)

    def describe(self, limit: int = 5) -> str:
        """Short human-readable rendering for verification UIs."""
        from .explain import explain_program  # local: avoids import cycle

        shown = [repr(r) for r in self.replacements[:limit]]
        more = self.size - len(shown)
        if more > 0:
            shown.append(f"... and {more} more")
        return (
            f"[{self.size}] {explain_program(self.program)}\n  "
            + "\n  ".join(shown)
        )


def singleton_group(replacement: Replacement) -> Group:
    """Fallback group for replacements without a transformation graph
    (oversized strings): the trivial all-constant program."""
    return Group(
        Program((ConstantStr(replacement.rhs),)),
        (replacement,),
        structure_key(replacement),
    )


def group_sort_key(group: Group) -> Tuple:
    """Descending size, then canonical program key, then first member —
    the deterministic order groups are presented in."""
    return (-group.size, group.program.canonical(), group.replacements[:1])


@dataclass
class GroupingOutcome:
    """Result of a one-shot grouping run, with instrumentation."""

    groups: List[Group]
    stats: SearchStats = field(default_factory=SearchStats)

    def sorted_groups(self) -> List[Group]:
        return sorted(self.groups, key=group_sort_key)


def build_group_vocabulary(
    replacements: Sequence[Replacement],
    base: TermVocabulary,
    config: Config,
    global_counts: Optional[Counter] = None,
) -> TermVocabulary:
    """Vocabulary for one structure group: base terms plus any
    explicitly-configured constants plus mined constants (Appendix E)."""
    vocab = base
    if config.extra_constant_terms:
        vocab = vocab.with_constant_terms(config.extra_constant_terms)
    if config.constant_match_terms > 0 and global_counts is not None:
        mined = top_constant_terms(
            replacements, global_counts, config.constant_match_terms
        )
        vocab = vocab.with_constant_terms(mined)
    return vocab


def constant_whitelist(
    replacements: Sequence[Replacement], config: Config
) -> Optional[frozenset]:
    """Recurring alphanumeric tokens across a structure group's targets
    (Appendix E's ``freqStruc``-scored constant admission)."""
    if not config.scored_constants:
        return None
    member_counts: Counter = Counter()
    for replacement in replacements:
        tokens = set(_ALNUM_TOKEN.findall(replacement.rhs))
        member_counts.update(tokens)
    needed = max(2, math.ceil(len(replacements) * config.constant_token_min_share))
    return frozenset(
        token for token, count in member_counts.items() if count >= needed
    )


def build_graphs(
    replacements: Sequence[Replacement],
    vocabulary: TermVocabulary,
    config: Config,
) -> Tuple[InvertedIndex, Dict[int, Replacement], List[Replacement]]:
    """Build graphs + inverted index for one structure group.

    Returns the index, the gid -> replacement mapping, and the list of
    replacements that could not get a graph (oversized strings).
    """
    index = InvertedIndex()
    by_gid: Dict[int, Replacement] = {}
    graphless: List[Replacement] = []
    whitelist = constant_whitelist(replacements, config)
    for replacement in replacements:
        graph = build_graph(
            replacement.lhs, replacement.rhs, vocabulary, config, whitelist
        )
        if graph is None:
            graphless.append(replacement)
        else:
            gid = index.add_graph(graph)
            by_gid[gid] = replacement
    return index, by_gid, graphless


def _group_structure_bucket(
    replacements: Sequence[Replacement],
    vocabulary: TermVocabulary,
    config: Config,
    stats: SearchStats,
) -> List[Group]:
    """Pivot-path grouping of one structure bucket (Algorithm 2 body)."""
    index, by_gid, graphless = build_graphs(replacements, vocabulary, config)
    groups: List[Group] = [singleton_group(r) for r in graphless]
    if not by_gid:
        return groups

    sample: Optional[Set[int]] = None
    if config.sample_size is not None and len(by_gid) > config.sample_size:
        rng = random.Random(config.seed)
        sample = set(rng.sample(sorted(by_gid), config.sample_size))

    bounds = GlobalBounds() if config.global_threshold else None
    pivots: Dict[int, PivotCandidate] = {}
    for gid in sorted(by_gid):
        live = None if sample is None else (sample | {gid})
        found = search_pivot(
            index.graphs[gid],
            index,
            config,
            live=live,
            threshold=0,
            bounds=bounds,
            stats=stats,
        )
        assert found is not None, "threshold-0 search always succeeds"
        pivots[gid] = found

    # Group by pivot-path membership, largest path first.  Assigning
    # via the candidate's member list (all graphs containing the path)
    # rather than each graph's own tie-broken pivot keeps equal-count
    # ties from splitting a group (DESIGN.md §5.3) and matches the
    # incremental algorithm's output (Theorem 6.4).
    def pivot_key(candidate: PivotCandidate) -> Tuple:
        key = tuple(f.canonical() for f in candidate.path)
        if all(isinstance(f, ConstantStr) for f in candidate.path):
            # Input-independent paths only ever explain their own graph
            # (the search already restricts their members; DESIGN.md
            # §5): keep their keys distinct per graph so the straggler
            # pass below cannot re-merge what that rule kept apart —
            # the incremental grouper emits them as singletons too.
            key = key + (candidate.members,)
        return key

    distinct: Dict[Tuple, PivotCandidate] = {}
    for candidate in pivots.values():
        distinct.setdefault(pivot_key(candidate), candidate)
    skey = structure_key(replacements[0])
    assigned: Set[int] = set()
    grouped_gids: Dict[Tuple, List[int]] = {}
    order = sorted(distinct.values(), key=lambda c: (-c.count, c.key))
    for candidate in order:
        gids = [g for g in candidate.members if g not in assigned]
        if not gids:
            continue
        assigned.update(gids)
        grouped_gids.setdefault(pivot_key(candidate), []).extend(gids)
    # Under sampling, a graph's membership may be invisible to the
    # representative candidate of its pivot key (member lists were
    # computed against different samples); attach stragglers to their
    # own pivot's group so the result stays a partition.
    for gid, candidate in sorted(pivots.items()):
        if gid not in assigned:
            grouped_gids.setdefault(pivot_key(candidate), []).append(gid)
            assigned.add(gid)
    for candidate in order:
        gids = grouped_gids.pop(pivot_key(candidate), None)
        if not gids:
            continue
        members = tuple(by_gid[g] for g in sorted(gids))
        groups.append(Group(Program(candidate.path), members, skey))
    return groups


def unsupervised_grouping(
    replacements: Iterable[Replacement],
    vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
    config: Config = DEFAULT_CONFIG,
    global_counts: Optional[Counter] = None,
) -> GroupingOutcome:
    """Partition candidates into transformation groups (Algorithm 2).

    With ``config.use_structure`` (the paper's default) candidates are
    first split by structure signature and each bucket is grouped
    independently; groups never span structure buckets (Section 7.2).
    """
    replacements = list(dict.fromkeys(replacements))
    stats = SearchStats()
    groups: List[Group] = []
    if config.use_structure:
        buckets = partition_by_structure(replacements)
        for skey in sorted(buckets):
            bucket = buckets[skey]
            vocab = build_group_vocabulary(bucket, vocabulary, config, global_counts)
            groups.extend(_group_structure_bucket(bucket, vocab, config, stats))
    elif replacements:
        vocab = build_group_vocabulary(
            replacements, vocabulary, config, global_counts
        )
        groups.extend(_group_structure_bucket(replacements, vocab, config, stats))
    groups.sort(key=group_sort_key)
    return GroupingOutcome(groups, stats)
