"""The paper's core contribution: DSL, graphs, pivot search, grouping."""

from .functions import ConstantStr, Prefix, SubStr, Suffix
from .graph import TransformationGraph, build_graph
from .grouping import Group, GroupingOutcome, unsupervised_grouping
from .incremental import IncrementalGrouper
from .index import InvertedIndex
from .pivot import GlobalBounds, PivotCandidate, SearchStats, search_pivot
from .explain import describe_function, describe_position, explain_program
from .positions import BEGIN, END, ConstPos, MatchPos
from .program import Program, make_program
from .replacement import Replacement
from .structure import (
    partition_by_structure,
    structure_key,
    structure_signature,
    structurally_equivalent,
)
from .terms import (
    CAPITALS,
    DEFAULT_VOCABULARY,
    DIGITS,
    LOWERCASE,
    MatchContext,
    PUNCTUATION,
    RegexTerm,
    ConstTerm,
    TermVocabulary,
    WHITESPACE,
)
