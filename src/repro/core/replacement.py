"""The candidate-replacement value object (Section 3, Step 1).

A replacement ``lhs -> rhs`` states that the two strings are matched
and one could be substituted for the other at the places it was
generated from.  Replacements are directed; both directions are always
generated as separate candidates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Replacement:
    """A directed candidate replacement ``lhs -> rhs``."""

    lhs: str
    rhs: str

    def __post_init__(self) -> None:
        if self.lhs == self.rhs:
            raise ValueError("a replacement requires two different strings")

    def reversed(self) -> "Replacement":
        """The opposite-direction candidate ``rhs -> lhs``."""
        return Replacement(self.rhs, self.lhs)

    def __repr__(self) -> str:
        return f"{self.lhs!r} -> {self.rhs!r}"
