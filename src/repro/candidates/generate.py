"""Candidate replacement generation API (Section 3, Step 1 + Appendix A)."""

from __future__ import annotations

from ..config import DEFAULT_CONFIG, Config
from ..data.table import ClusterTable
from .store import ReplacementStore


def generate_candidates(
    table: ClusterTable,
    column: str,
    config: Config = DEFAULT_CONFIG,
) -> ReplacementStore:
    """Enumerate whole-value and token-level candidate replacements for
    one column, with provenance for later application."""
    return ReplacementStore(table, column, config).generate()
