"""Replacement sets and their maintenance (Section 7.1).

For every candidate replacement the store remembers *where* it was
generated so approved groups can be applied surgically ("not all 'St's
are 'Street'" — footnote 1).  Two granularities exist:

* **whole-value** candidates (Section 3, Step 1): an entry is an
  ordered cell pair ``(lhs_cell, rhs_cell)`` within one cluster.  The
  paper's ``L[lhs -> rhs]`` keeps only the lhs cell; keying by the pair
  makes the Section 7.1 update rules exact when a cluster holds several
  copies of ``lhs`` (see DESIGN.md §5).
* **token-level** candidates (Appendix A): an entry is again an
  ordered cell pair — the cell whose value contains the lhs segment
  first, its aligned cluster mate second.  Keeping the mate lets the
  reviewing oracle judge variant-ness exactly as for whole values
  (do the two cells denote the same entity?).

After a cell's value changes, all of its stale entries are dropped and
its pairings against cluster mates are re-derived.  New entries may
only land under *existing* replacement keys, preserving the paper's
"no new candidate replacements appear" invariant.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..align.damerau import alignment_segments
from ..align.lcs import aligned_segments
from ..align.tokenize import join, tokens
from ..config import DEFAULT_CONFIG, Config
from ..core.replacement import Replacement
from ..data.table import CellRef, ClusterTable

CellPair = Tuple[CellRef, CellRef]

#: Ordered token-level (lhs, rhs) segments one value pair contributes.
TokenSegments = Tuple[Tuple[str, str], ...]


def derive_token_segments(
    va: str, vb: str, config: Config = DEFAULT_CONFIG
) -> TokenSegments:
    """Token-level candidate segments of one ordered value pair.

    This is the *pure* (table-free, side-effect-free) core of candidate
    generation: everything :meth:`ReplacementStore.add_cell` derives
    for a cell pair is a function of the two values and the config
    alone.  The streaming shard workers exploit that purity — value
    pairs are aligned in parallel worker processes and the resulting
    segments merged into the single parent store in the exact order
    inline generation would have produced them, so sharded and
    single-process runs build byte-identical candidate state.

    Returns the deduplicated ``(lhs, rhs)`` segments in derivation
    order, excluding the whole-value pair itself (the caller always
    adds that separately).
    """
    if va == vb or not va or not vb:
        return ()
    if not config.token_level_candidates:
        return ()
    ta, tb = tokens(va), tokens(vb)
    if not ta or not tb:
        return ()
    segment_pairs = aligned_segments(ta, tb)
    if config.damerau_candidates:
        segment_pairs = segment_pairs + alignment_segments(ta, tb)
    seen: Set[Tuple[str, str]] = set()
    out: List[Tuple[str, str]] = []
    for seg_a, seg_b in segment_pairs:
        lhs, rhs = join(seg_a), join(seg_b)
        if lhs == rhs or not lhs or not rhs:
            continue
        if (lhs, rhs) in seen:
            continue
        seen.add((lhs, rhs))
        if (lhs, rhs) != (va, vb):
            out.append((lhs, rhs))
    return tuple(out)


class ReplacementStore:
    """Candidate replacements of one column plus their provenance."""

    def __init__(self, table: ClusterTable, column: str, config: Config = DEFAULT_CONFIG):
        self.table = table
        self.column = column
        self.config = config
        #: whole-value provenance: replacement -> ordered cell pairs
        self.pair_entries: Dict[Replacement, Set[CellPair]] = {}
        #: token-level provenance: replacement -> (lhs cell, mate cell)
        self.token_entries: Dict[Replacement, Set[CellPair]] = {}
        #: reverse index: cell -> replacement keys it participates in
        self._by_cell: Dict[CellRef, Set[Replacement]] = {}
        #: cells whose pairings have been derived (delta-generation
        #: bookkeeping for the streaming path)
        self._indexed: Set[CellRef] = set()
        self._dead: Set[Replacement] = set()

    # -- generation (Section 3 Step 1, Appendix A) --------------------------

    def generate(self) -> "ReplacementStore":
        """Enumerate all candidates for the column."""
        for ci in range(self.table.num_clusters):
            cells = self.table.cluster_cells(ci, self.column)
            for ai in range(len(cells)):
                for bi in range(ai + 1, len(cells)):
                    self._generate_for_pair(cells[ai], cells[bi], allow_new=True)
            self._indexed.update(cells)
        return self

    # -- incremental generation (stream path) --------------------------------

    def add_cell(
        self,
        cell: CellRef,
        segments: Optional[Dict[Tuple[str, str], TokenSegments]] = None,
    ) -> int:
        """Index one new cell: pair it against the already-indexed cells
        of its cluster, allowing new candidate keys.

        This is the delta form of :meth:`generate`: calling it for every
        cell of a table (in any order) derives exactly the pairs the
        batch form derives, but a record batch arriving later only pays
        for pairs touching its own cells.

        ``segments`` optionally supplies precomputed
        :func:`derive_token_segments` results keyed by ordered value
        pair — the sharded streaming path computes them in worker
        processes and merges here; pairs absent from the map are
        derived inline, so a partial map is always safe.

        Returns the number of candidate keys the cell *created* — zero
        means every variation the cell introduced was already known, the
        signal the stream's drift monitor feeds on.
        """
        if cell in self._indexed:
            return 0
        before = len(self.pair_entries) + len(self.token_entries)
        for mate in self.table.cluster_cells(cell.cluster, cell.column):
            if mate == cell or mate not in self._indexed:
                continue
            self._generate_for_pair(
                mate, cell, allow_new=True, segments=segments
            )
        self._indexed.add(cell)
        return len(self.pair_entries) + len(self.token_entries) - before

    def pending_pairs(
        self, cells: Sequence[CellRef]
    ) -> List[Tuple[str, str]]:
        """The ordered distinct ``(mate value, cell value)`` pairs that
        :meth:`add_cell` will derive segments for when the given cells
        are indexed in order.

        This mirrors :meth:`add_cell`'s own iteration exactly (mate
        before cell, earlier cells of the batch counting as indexed for
        later ones) and lives here so the two can never drift apart:
        the sharded streaming path precomputes
        :func:`derive_token_segments` for exactly these pairs on its
        workers and hands the map back to :meth:`add_cell`.
        """
        pairs: List[Tuple[str, str]] = []
        virtually_indexed = set(self._indexed)
        for cell in cells:
            if cell in virtually_indexed:
                continue
            value = self.table.value(cell)
            for mate in self.table.cluster_cells(cell.cluster, cell.column):
                if mate == cell or mate not in virtually_indexed:
                    continue
                mate_value = self.table.value(mate)
                if mate_value == value or not mate_value or not value:
                    continue
                pairs.append((mate_value, value))
            virtually_indexed.add(cell)
        return pairs

    def purge_cell(self, cell: CellRef) -> None:
        """Forget a cell entirely (it moved during a cluster merge).

        All entries referencing the cell are removed and the cell is
        un-indexed; re-add it at its new position via :meth:`add_cell`.
        """
        for r in list(self._by_cell.get(cell, ())):
            self._remove_cell_from(r, cell)
        self._by_cell.pop(cell, None)
        self._indexed.discard(cell)

    def _generate_for_pair(
        self,
        cell_a: CellRef,
        cell_b: CellRef,
        allow_new: bool,
        segments: Optional[Dict[Tuple[str, str], TokenSegments]] = None,
    ) -> None:
        va = self.table.value(cell_a)
        vb = self.table.value(cell_b)
        if va == vb or not va or not vb:
            return
        self._add_pair(Replacement(va, vb), (cell_a, cell_b), allow_new)
        self._add_pair(Replacement(vb, va), (cell_b, cell_a), allow_new)
        if self.config.token_level_candidates:
            derived = (
                segments.get((va, vb)) if segments is not None else None
            )
            if derived is None:
                derived = derive_token_segments(va, vb, self.config)
            for lhs, rhs in derived:
                self._add_token(
                    Replacement(lhs, rhs), (cell_a, cell_b), allow_new
                )
                self._add_token(
                    Replacement(rhs, lhs), (cell_b, cell_a), allow_new
                )

    def _add_pair(self, r: Replacement, pair: CellPair, allow_new: bool) -> None:
        entries = self.pair_entries.get(r)
        if entries is None:
            if not allow_new:
                return
            entries = set()
            self.pair_entries[r] = entries
        entries.add(pair)
        self._by_cell.setdefault(pair[0], set()).add(r)
        self._by_cell.setdefault(pair[1], set()).add(r)
        self._dead.discard(r)

    def _add_token(self, r: Replacement, pair: CellPair, allow_new: bool) -> None:
        entries = self.token_entries.get(r)
        if entries is None:
            if not allow_new:
                return
            entries = set()
            self.token_entries[r] = entries
        entries.add(pair)
        self._by_cell.setdefault(pair[0], set()).add(r)
        self._by_cell.setdefault(pair[1], set()).add(r)
        self._dead.discard(r)

    # -- queries -------------------------------------------------------------

    def replacements(self) -> List[Replacement]:
        """All live candidates (whole-value first, then token-only).

        Keys whose entries emptied (pending drain) are not live.
        """
        keys = [k for k, entries in self.pair_entries.items() if entries]
        keys.extend(
            k
            for k, entries in self.token_entries.items()
            if entries and not self.pair_entries.get(k)
        )
        return keys

    def support(self, r: Replacement) -> int:
        """Number of places the replacement applies to (its 'profit')."""
        return len(self.pair_entries.get(r, ())) + len(
            self.token_entries.get(r, ())
        )

    def cell_pairs(self, r: Replacement) -> Set[CellPair]:
        return set(self.pair_entries.get(r, ()))

    def token_pairs(self, r: Replacement) -> Set[CellPair]:
        return set(self.token_entries.get(r, ()))

    def token_cells(self, r: Replacement) -> Set[CellRef]:
        """The cells a token-level replacement would rewrite."""
        return {pair[0] for pair in self.token_entries.get(r, ())}

    def __contains__(self, r: Replacement) -> bool:
        return bool(self.pair_entries.get(r)) or bool(self.token_entries.get(r))

    def __len__(self) -> int:
        return len(self.replacements())

    # -- application (Section 7.1) --------------------------------------------

    def apply_replacement(self, r: Replacement) -> List[CellRef]:
        """Apply one approved replacement everywhere it was generated.

        Whole-value entries rewrite the lhs cell to ``rhs``; token-level
        entries rewrite the lhs segment inside the cell (token-boundary
        aware).  Returns the changed cells; collect invalidated
        candidates afterwards via :meth:`drain_dead`.
        """
        changed: List[CellRef] = []
        for lhs_cell, _rhs_cell in sorted(self.pair_entries.get(r, ())):
            if self.table.value(lhs_cell) == r.lhs:
                self.table.set_value(lhs_cell, r.rhs)
                changed.append(lhs_cell)
        for cell in sorted(self.token_cells(r)):
            value = self.table.value(cell)
            updated = _replace_token_segment(value, r.lhs, r.rhs)
            if updated is not None and updated != value:
                self.table.set_value(cell, updated)
                changed.append(cell)
        # Orientation symmetry, defense in depth: generation always
        # creates both orientations together, but provenance that only
        # survives under the mirrored key (its *second* cells hold
        # ``r.lhs``) supports the same rewrite.  On a symmetric store
        # every mirror cell was already handled above (the value check
        # skips it), so this pass changes nothing there.
        mirror = r.reversed()
        for cell in sorted(
            {pair[1] for pair in self.pair_entries.get(mirror, ())}
        ):
            if self.table.value(cell) == r.lhs:
                self.table.set_value(cell, r.rhs)
                changed.append(cell)
        for cell in sorted(
            {pair[1] for pair in self.token_entries.get(mirror, ())}
        ):
            value = self.table.value(cell)
            updated = _replace_token_segment(value, r.lhs, r.rhs)
            if updated is not None and updated != value:
                self.table.set_value(cell, updated)
                changed.append(cell)
        for cell in dict.fromkeys(changed):
            self.refresh_cell(cell)
        return changed

    def refresh_cell(self, cell: CellRef) -> None:
        """Re-derive a changed cell's candidates (Section 7.1 update).

        Stale entries referencing the cell are removed everywhere; fresh
        pairings against cluster mates are added, but only under
        already-existing keys.
        """
        for r in list(self._by_cell.get(cell, ())):
            self._remove_cell_from(r, cell)
        self._by_cell.pop(cell, None)
        for mate in self.table.cluster_cells(cell.cluster, cell.column):
            if mate == cell:
                continue
            # `allow_new=False`: rhs already lives in the cluster, so
            # every fresh pairing re-uses an existing key (Section 7.1).
            self._generate_for_pair(cell, mate, allow_new=False)

    def _remove_cell_from(self, r: Replacement, cell: CellRef) -> None:
        for entries in (self.pair_entries.get(r), self.token_entries.get(r)):
            if entries is None:
                continue
            for pair in [p for p in entries if cell in p]:
                entries.discard(pair)
                for other in pair:
                    if other != cell and not self._participates(r, other):
                        self._by_cell.get(other, set()).discard(r)
        if not self.pair_entries.get(r) and not self.token_entries.get(r):
            # Mark dead but keep the (empty) key: re-derivation during
            # the same refresh may legitimately revive it, and the
            # no-new-keys rule must not block that.  Truly dead keys
            # are dropped at drain time.
            self._dead.add(r)

    def _participates(self, r: Replacement, cell: CellRef) -> bool:
        if any(cell in pair for pair in self.pair_entries.get(r, ())):
            return True
        return any(cell in pair for pair in self.token_entries.get(r, ()))

    def drain_dead(self) -> Set[Replacement]:
        """Candidates invalidated since the last call (for the grouper).

        Emptiness is re-checked at drain time: a key that emptied
        mid-refresh but was revived by re-derivation is *not* dead.
        """
        dead = {
            r
            for r in self._dead
            if not self.pair_entries.get(r) and not self.token_entries.get(r)
        }
        for r in dead:
            self.pair_entries.pop(r, None)
            self.token_entries.pop(r, None)
        self._dead = set()
        return dead


def _replace_token_segment(value: str, lhs: str, rhs: str) -> Optional[str]:
    """Replace the first token-boundary-aligned occurrence of ``lhs``
    inside ``value`` by ``rhs``; ``None`` when ``lhs`` is absent.

    Token alignment guarantees lhs was a run of whole tokens in the
    original value, so matching on token boundaries (rather than raw
    substring) avoids corrupting e.g. 'Stone' when replacing 'St'.
    """
    value_tokens = tokens(value)
    lhs_tokens = tokens(lhs)
    if not lhs_tokens or len(lhs_tokens) > len(value_tokens):
        return None
    for start in range(len(value_tokens) - len(lhs_tokens) + 1):
        if value_tokens[start : start + len(lhs_tokens)] == lhs_tokens:
            out = (
                value_tokens[:start]
                + tokens(rhs)
                + value_tokens[start + len(lhs_tokens) :]
            )
            return join(out)
    return None
