"""Candidate replacement generation and Section 7.1 maintenance."""

from .generate import generate_candidates
from .store import ReplacementStore
