"""The ``Single`` baseline (Section 8.1): no grouping at all.

Every candidate replacement is its own group, presented one at a time.
The paper doesn't state the presentation order; we rank by current
replacement-set support (the number of places a replacement applies),
the one-by-one analogue of "larger groups are more profitable"
(DESIGN.md §5.8).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..candidates.store import ReplacementStore
from ..core.grouping import Group, singleton_group
from ..core.replacement import Replacement


class SingleFeed:
    """A :class:`~repro.pipeline.standardize.GroupFeed` of singletons."""

    def __init__(self, store: ReplacementStore) -> None:
        self.store = store
        self._presented: Set[Replacement] = set()

    def next_group(self) -> Optional[Group]:
        best: Optional[Replacement] = None
        best_support = 0
        for replacement in self.store.replacements():
            if replacement in self._presented:
                continue
            support = self.store.support(replacement)
            if support > best_support or (
                support == best_support
                and best is not None
                and replacement < best
            ):
                best = replacement
                best_support = support
        if best is None:
            return None
        self._presented.add(best)
        return singleton_group(best)

    def remove_replacements(self, dead: Iterable[Replacement]) -> None:
        """Dead candidates never resurface (their support is 0 anyway)."""
        self._presented.update(dead)
