"""The paper's baselines: Single and the Trifacta-style wrangler."""

from .rules import address_rules, authorlist_rules, journaltitle_rules, rules_for
from .single import SingleFeed
from .wrangler import ReplaceRule, RuleSet
