"""A DataWrangler/Trifacta-style rule engine (the paper's baseline).

The paper's baseline user spent an hour writing 30-40 lines of wrangler
code — regex ``REPLACE`` rules like::

    REPLACE with: '' on: '\\(({any}+)\\)'
    REPLACE with: '$2 $3. $1' on: '({alpha}+), ({alpha}+) ({alpha}.)'

This engine executes exactly such rules (Python regex syntax with
``\\1`` backreferences), applied globally to every value of a column —
which is both the strength (no per-group confirmation needed) and the
weakness (the code "only covers a fraction of the data" and "may
introduce some errors", Section 8.1) of the baseline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List

from ..data.table import ClusterTable


@dataclass(frozen=True)
class ReplaceRule:
    """One ``REPLACE on: <pattern> with: <replacement>`` rule."""

    pattern: str
    replacement: str
    flags: int = 0

    def apply(self, value: str) -> str:
        return re.compile(self.pattern, self.flags).sub(self.replacement, value)


class RuleSet:
    """An ordered list of rules — one user's hour of wrangling.

    Rules are applied via their own ``apply`` so subclasses (e.g. case
    conversions) keep their semantics; ``re``'s internal pattern cache
    keeps repeated application cheap.
    """

    def __init__(self, name: str, rules: Iterable[ReplaceRule]) -> None:
        self.name = name
        self.rules: List[ReplaceRule] = list(rules)

    def __len__(self) -> int:
        return len(self.rules)

    def apply(self, value: str) -> str:
        for rule in self.rules:
            value = rule.apply(value)
        return value

    def apply_to_table(self, table: ClusterTable, column: str) -> int:
        """Rewrite every cell of ``column`` in place; returns the number
        of cells changed."""
        changed = 0
        for cell in table.cells(column):
            old = table.value(cell)
            new = self.apply(old)
            if new != old:
                table.set_value(cell, new)
                changed += 1
        return changed
