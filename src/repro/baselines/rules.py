"""Hand-written wrangler rule sets — "what a skilled user writes in an
hour" (Section 8.1: 30-40 lines of wrangler code per dataset).

The rules target each dataset's canonical form and deliberately carry
the imperfections the paper observed in the Trifacta baseline: they
cover only the transformation families the user noticed (recall gap —
nicknames, missing-separator author lists and rare states go unfixed)
and global regex application occasionally overreaches (precision dip).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .wrangler import ReplaceRule, RuleSet


@dataclass(frozen=True)
class CaseRule(ReplaceRule):
    """Trifacta-style case conversion, applied when ``pattern`` matches
    the whole value.  ``replacement`` selects the mode: ``title``,
    ``lower`` or ``upper``."""

    def apply(self, value: str) -> str:
        if not re.fullmatch(self.pattern, value):
            return value
        if self.replacement == "title":
            return value.title()
        if self.replacement == "lower":
            return value.lower()
        if self.replacement == "upper":
            return value.upper()
        return value


def address_rules() -> RuleSet:
    """Standardize addresses toward ``"3rd E Avenue, 33990 CA"``."""
    rules: List[ReplaceRule] = []
    # Street-type abbreviations -> full words (12 rules).  Note the
    # authentic gap: the user keyed the rules on the undotted forms, so
    # "St." rewrites to "Street." and never quite matches the canonical
    # value — the global-regex overreach the paper observed.
    for full, abbrev in (
        ("Street", "St"), ("Avenue", "Ave"), ("Boulevard", "Blvd"),
        ("Road", "Rd"), ("Drive", "Dr"), ("Lane", "Ln"), ("Court", "Ct"),
        ("Place", "Pl"), ("Parkway", "Pkwy"), ("Terrace", "Ter"),
        ("Square", "Sq"), ("Highway", "Hwy"),
    ):
        rules.append(ReplaceRule(rf"\b{abbrev}\b", full))
    # The user never noticed the spelled-out compass directions
    # ("East Avenue" vs "E Avenue") — a recall gap for the baseline.
    # Ordinal suffixes on leading street numbers (4 rules; order matters).
    rules.append(ReplaceRule(r"^(\d*1)(?<!11) ", r"\1st "))
    rules.append(ReplaceRule(r"^(\d*2)(?<!12) ", r"\1nd "))
    rules.append(ReplaceRule(r"^(\d*3)(?<!13) ", r"\1rd "))
    rules.append(ReplaceRule(r"^(\d+) ", r"\1th "))
    # State names -> postal codes: the user covers the states they
    # noticed in the data — most, but not all (recall gap).
    for full, abbrev in (
        ("California", "CA"), ("New York", "NY"), ("Texas", "TX"),
        ("Florida", "FL"), ("Illinois", "IL"), ("Pennsylvania", "PA"),
        ("Ohio", "OH"), ("Georgia", "GA"), ("Michigan", "MI"),
        ("New Jersey", "NJ"), ("Virginia", "VA"), ("Washington", "WA"),
        ("Massachusetts", "MA"), ("Arizona", "AZ"), ("Wisconsin", "WI"),
        ("Colorado", "CO"), ("Minnesota", "MN"), ("Missouri", "MO"),
        ("Indiana", "IN"), ("Tennessee", "TN"), ("Maryland", "MD"),
        ("Oregon", "OR"), ("Connecticut", "CT"), ("Iowa", "IA"),
        ("Kansas", "KS"), ("Utah", "UT"), ("Nevada", "NV"),
        ("Oklahoma", "OK"),
    ):
        rules.append(ReplaceRule(rf"\b{full}$", abbrev))
    return RuleSet("address-wrangler", rules)


def authorlist_rules() -> RuleSet:
    """Standardize author lists toward ``"dan fox, jon box"``."""
    rules: List[ReplaceRule] = [
        # The paper's own example rule: strip parenthesized annotations.
        ReplaceRule(r" ?\([a-z]+\)", ""),
        # Transposed forms, most-specific first (3 / 2 / 1 authors).
        ReplaceRule(
            r"^([a-z]+), ([a-z]+) ([a-z]+), ([a-z]+) ([a-z]+), ([a-z]+)$",
            r"\2 \1, \4 \3, \6 \5",
        ),
        ReplaceRule(
            r"^([a-z]+), ([a-z]+) ([a-z]+), ([a-z]+)$", r"\2 \1, \4 \3"
        ),
        ReplaceRule(r"^([a-z]+), ([a-z]+)$", r"\2 \1"),
        # Whitespace cleanup after annotation removal.
        ReplaceRule(r"\s+,", ","),
        ReplaceRule(r"\s{2,}", " "),
        ReplaceRule(r"^\s+|\s+$", ""),
    ]
    # The user cannot invert initials ("d. fox"), nicknames ("bob") or
    # the missing-separator form ("levy, margipowell, philip") with
    # regex replaces — the baseline's recall gap (Section 8.1).
    return RuleSet("authorlist-wrangler", rules)


def journaltitle_rules() -> RuleSet:
    """Standardize journal titles toward ``"Journal of Applied Biology"``."""
    rules: List[ReplaceRule] = [
        # All-caps titles -> Title Case.  Note the authentic wrangler
        # imperfection: title() yields "Journal Of ..." with a capital
        # connective, fixed by the follow-up rules only for the
        # connectives the user remembered.
        CaseRule(r"[A-Z0-9 &.\-]+", "title"),
        ReplaceRule(r"\bOf\b", "of"),
        ReplaceRule(r"\bAnd\b", "and"),
        ReplaceRule(r"\bIn\b", "in"),
        ReplaceRule(r"\bOn\b", "on"),
        ReplaceRule(r"(.)\bThe\b", r"\1the"),
        ReplaceRule(r" & ", " and "),
        ReplaceRule(r"\.$", ""),
    ]
    # Head-word abbreviations -> full words (dotted or not).  The user
    # covers the frequent ones; "Q", "Rep" and "Adv" slip through.
    for abbrev, full in (
        ("J", "Journal"), ("Int", "International"), ("Proc", "Proceedings"),
        ("Trans", "Transactions"), ("Ann", "Annals"), ("Rev", "Review"),
        ("Bull", "Bulletin"), ("Arch", "Archives"), ("Lett", "Letters"),
    ):
        rules.append(ReplaceRule(rf"\b{abbrev}\.?(?= |$)", full))
    return RuleSet("journaltitle-wrangler", rules)


def rules_for(dataset_name: str) -> RuleSet:
    """The rule set for one of the three benchmark datasets."""
    by_name = {
        "Address": address_rules,
        "AuthorList": authorlist_rules,
        "JournalTitle": journaltitle_rules,
    }
    try:
        return by_name[dataset_name]()
    except KeyError:
        raise KeyError(f"no wrangler rules for dataset {dataset_name!r}") from None
