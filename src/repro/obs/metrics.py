"""Counters, gauges, and quantile histograms (``repro.obs``).

The paper's headline claims are operational — runtime per stage
(Fig. 9) and human questions spent (Section V) — so the reproduction
needs a real metrics substrate, not counters scattered across report
dataclasses.  :class:`MetricsRegistry` is that substrate: a flat
namespace of named instruments (optionally labelled, Prometheus-style)
that every layer of the hot path writes through.

Design constraints, in order:

* **near-free when disabled** — the default everywhere is
  :data:`NULL_REGISTRY`, whose instruments are shared no-op singletons;
  an uninstrumented run pays one attribute load and one no-op call per
  hook, nothing else (asserted by ``benchmarks/bench_obs_overhead.py``);
* **deterministic where the system is** — instruments are registered as
  deterministic (counts that must be identical at any ``--shards``
  value: questions, merges, candidate pairs) or volatile (wall-clock
  timings, IPC bytes).  :meth:`MetricsRegistry.snapshot` with
  ``deterministic_only=True`` is the byte-comparable view the
  shard-equivalence tests diff;
* **mergeable quantiles** — histograms bucket observations on a
  geometric grid (:data:`HISTOGRAM_GROWTH` per bucket), so p50/p95/p99
  estimation is a deterministic function of the bucket counts and two
  histograms merge by adding buckets — no reservoir sampling, no
  order dependence.

Stdlib only, and importable by every layer (this package imports
nothing from the rest of ``repro``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]

#: Geometric bucket growth factor.  2**0.25 keeps the relative
#: quantile-estimation error under ~9% (half a bucket) while a span of
#: nanoseconds..hours still fits in ~150 live bucket indexes.
HISTOGRAM_GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(HISTOGRAM_GROWTH)

#: Observations at or below this are folded into one underflow bucket
#: (perf_counter deltas can legitimately be 0.0).
HISTOGRAM_FLOOR = 1e-9


def _bucket_index(value: float) -> int:
    """The geometric bucket a positive observation falls into.

    Bucket ``i`` covers ``(GROWTH**(i-1), GROWTH**i]``; values at or
    below :data:`HISTOGRAM_FLOOR` share the underflow bucket.
    """
    if value <= HISTOGRAM_FLOOR:
        return -(10 ** 9)  # underflow sentinel, sorts before everything
    return math.ceil(math.log(value) / _LOG_GROWTH - 1e-12)


#: Label values containing any of these must be quoted in a metric key
#: or the key would no longer parse unambiguously.
_KEY_STRUCTURAL = set(',={}"\\')


def _key_value(value: str) -> str:
    """A label value as it appears in a metric key: verbatim when it is
    structurally inert, double-quoted with ``\\"``/``\\\\`` escapes
    otherwise — :func:`repro.obs.summary.parse_metric_key` inverts
    both forms, so values with commas, equals signs, braces, or quotes
    round-trip instead of corrupting the key."""
    value = str(value)
    if not _KEY_STRUCTURAL.intersection(value):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def metric_key(name: str, labels: Dict[str, str]) -> str:
    """The stable string key of one instrument: ``name{k=v,...}`` with
    label keys sorted — the key format of snapshots, the Prometheus
    writer, and the documented schema (docs/observability.md).  Label
    values with structural characters are quoted (:func:`_key_value`)."""
    if not labels:
        return name
    inner = ",".join(
        f"{key}={_key_value(labels[key])}" for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (floats allowed: accumulated
    seconds ship through counters too)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def as_value(self) -> Number:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def as_value(self) -> Number:
        return self.value


class Histogram:
    """Geometric-bucket distribution with deterministic quantiles.

    ``observe`` is O(1): one log, one dict increment.  Quantiles are
    estimated from the bucket counts — the p-th quantile is the
    geometric midpoint of the bucket holding the p-th observation,
    clamped to the exact observed ``[min, max]``; with the default
    growth the estimate is within ~9% of the true value.  Because the
    state is just (count, sum, min, max, bucket counts), two histograms
    merge by addition and identical observation *multisets* produce
    identical state regardless of order.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) of the observations."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                if index <= -(10 ** 9):
                    estimate = 0.0
                else:
                    # geometric midpoint of (GROWTH**(i-1), GROWTH**i]
                    estimate = HISTOGRAM_GROWTH ** (index - 0.5)
                low = self.min if self.min is not None else estimate
                high = self.max if self.max is not None else estimate
                return min(max(estimate, low), high)
        return self.max or 0.0  # pragma: no cover — count guarantees hit

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_value(self) -> Dict[str, Number]:
        """The snapshot form: summary stats + estimated quantiles."""
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "min": round(self.min, 9) if self.min is not None else None,
            "max": round(self.max, 9) if self.max is not None else None,
            "mean": round(self.mean, 9),
            "p50": round(self.p50, 9),
            "p95": round(self.p95, 9),
            "p99": round(self.p99, 9),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat, ordered namespace of named instruments.

    Instruments are created on first use and then shared: hot paths
    should bind the instrument once (``c = registry.counter(...)``)
    and call ``c.inc()`` in the loop.  ``deterministic=False`` marks an
    instrument as run-dependent (timings, IPC bytes); such instruments
    are excluded from ``snapshot(deterministic_only=True)``, the view
    that must be byte-identical at any ``--shards`` value.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._volatile: set = set()

    # -- instrument access -------------------------------------------------

    def _get(
        self,
        cls,
        name: str,
        deterministic: bool,
        labels: Dict[str, str],
    ):
        key = metric_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = cls(name, dict(labels))
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {key!r} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        if not deterministic:
            self._volatile.add(key)
        return instrument

    def counter(
        self, name: str, deterministic: bool = True, **labels: str
    ) -> Counter:
        return self._get(Counter, name, deterministic, labels)

    def gauge(
        self, name: str, deterministic: bool = True, **labels: str
    ) -> Gauge:
        return self._get(Gauge, name, deterministic, labels)

    def histogram(
        self, name: str, deterministic: bool = True, **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, deterministic, labels)

    # -- views -------------------------------------------------------------

    def instruments(self) -> Iterable[Instrument]:
        """Every live instrument, in stable key order."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def snapshot(
        self, deterministic_only: bool = False
    ) -> Dict[str, object]:
        """All instrument values as one flat ``key -> value`` dict.

        Keys are :func:`metric_key` strings in sorted order; counter /
        gauge values are numbers, histogram values are their summary
        dicts.  ``deterministic_only=True`` drops every instrument
        registered as volatile — the resulting dict (and its sorted
        JSON serialization) must be identical at any shard count, which
        ``tests/stream/test_obs_stream.py`` asserts.
        """
        out: Dict[str, object] = {}
        for key in sorted(self._instruments):
            if deterministic_only and key in self._volatile:
                continue
            out[key] = self._instruments[key].as_value()
        return out

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """Shared no-op instrument: accepts every write, stores nothing."""

    __slots__ = ()

    name = ""
    labels: Dict[str, str] = {}
    value = 0
    count = 0
    total = 0.0

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def as_value(self) -> Number:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every instrument is the shared no-op.

    This is the default wired through the hot path, so instrumentation
    costs one truthiness check or no-op method call when nobody is
    observing.
    """

    enabled = False

    def counter(self, name: str, deterministic: bool = True, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, deterministic: bool = True, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, deterministic: bool = True, **labels):
        return _NULL_INSTRUMENT

    def instruments(self) -> Tuple:
        return ()

    def snapshot(self, deterministic_only: bool = False) -> Dict:
        return {}

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
