"""Metric/span row sinks (``repro.obs``).

A sink receives flat JSON-serializable row dicts (``{"type": ...}``)
from the :class:`~repro.obs.Obs` facade.  Three are provided:

* :class:`MemorySink` — a list, for tests;
* :class:`JsonlSink` — append-only JSON-lines with the same crash
  discipline as the decision log (`repro.stream.decisions`): each row
  is one flushed line, so a kill mid-run loses at most the torn final
  line, which the reader (`repro.obs.summary.iter_rows`) skips and a
  reopening sink repairs before appending;
* :func:`prometheus_text` — not a sink but the text exposition writer
  for the future serve tier: renders a registry snapshot in the
  Prometheus 0.0.4 text format.
"""

from __future__ import annotations

import atexit
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from .metrics import MetricsRegistry

PathLike = Union[str, Path]

Row = Dict[str, object]


class MemorySink:
    """Collects rows in a list (``sink.rows``)."""

    def __init__(self) -> None:
        self.rows: List[Row] = []
        self.closed = False

    def emit(self, row: Row) -> None:
        self.rows.append(row)

    def close(self) -> None:
        self.closed = True


class JsonlSink:
    """Append-only JSON-lines sink with torn-tail repair on open.

    Rows are serialized with sorted keys and flushed per emit, so the
    file is valid JSON-lines up to (at worst) a torn final line after a
    crash.  Opening an existing file first repairs such a tail — a
    final line without a terminating newline is truncated away —
    because appending onto a fragment would glue two rows into one
    permanently unreadable line (the decision-log lesson).

    Every open sink also registers an :mod:`atexit` close (undone once
    closed), and the sink is its own context manager — so a short CLI
    run, an uncaught exception, or a forgotten ``close()`` still gets
    the final flush+fsync instead of leaving a tail for the next open
    to repair away.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        self._handle = open(self.path, "a", encoding="utf-8")
        atexit.register(self.close)

    def _repair_tail(self) -> None:
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        tail = data.rfind(b"\n") + 1  # 0 when the whole file is one line
        fragment = data[tail:]
        try:
            json.loads(fragment.decode("utf-8"))
            # Intact final row, newline eaten by the crash: terminate it.
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
        except (ValueError, UnicodeDecodeError):
            # Torn mid-write: drop the fragment.
            with open(self.path, "r+b") as handle:
                handle.truncate(tail)

    def emit(self, row: Row) -> None:
        self._handle.write(
            json.dumps(row, sort_keys=True, ensure_ascii=False) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        atexit.unregister(self.close)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Metric names have ``.`` flattened to ``_``; histograms expose
    ``_count`` / ``_sum`` plus estimated ``quantile`` series (the
    summary form — the buckets are log-scale internal detail).
    """

    def flat(name: str) -> str:
        return name.replace(".", "_").replace("-", "_")

    def escape(value) -> str:
        # The exposition format's label escapes: backslash, the
        # value-closing double quote, and raw newlines (which would
        # otherwise terminate the sample line mid-value).
        return (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )

    def label_str(labels: Dict[str, str], extra: Optional[Dict] = None):
        merged = dict(labels)
        if extra:
            merged.update(extra)
        if not merged:
            return ""
        inner = ",".join(
            f'{flat(k)}="{escape(merged[k])}"' for k in sorted(merged)
        )
        return "{" + inner + "}"

    lines: List[str] = []
    typed: set = set()
    for instrument in registry.instruments():
        name = flat(instrument.name)
        if instrument.kind in ("counter", "gauge"):
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {instrument.kind}")
            lines.append(
                f"{name}{label_str(instrument.labels)} "
                f"{instrument.as_value()}"
            )
        else:  # histogram -> summary exposition
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} summary")
            for q in (0.5, 0.95, 0.99):
                value = instrument.quantile(q) if instrument.count else 0.0
                lines.append(
                    f"{name}"
                    f"{label_str(instrument.labels, {'quantile': q})} "
                    f"{value}"
                )
            lines.append(
                f"{name}_sum{label_str(instrument.labels)} "
                f"{instrument.total}"
            )
            lines.append(
                f"{name}_count{label_str(instrument.labels)} "
                f"{instrument.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
