"""``repro top`` — a live terminal monitor over a recorded metrics file.

While ``repro stream --metrics run.jsonl`` appends rows, ``repro top
--metrics run.jsonl`` tails the same file and re-renders one in-place
dashboard (ANSI cursor-home + clear, no curses dependency — works in
any VT100-ish terminal and in CI logs with ``--once``):

* per-stage latency p50/p95/p99 + share of run time, fed from each
  batch row's ``stage_seconds`` through the same geometric-bucket
  :class:`~repro.obs.metrics.Histogram` the registry uses;
* per-shard busy fractions (shard compute seconds over run wall time)
  from the latest snapshot's ``shards.busy_seconds{shard=N}`` gauges;
* drift events as they happen, and the questions-asked rate over a
  sliding window of recent batches (the oracle-budget dial the paper's
  human-involvement analysis optimizes).

The reader is incremental and torn-tolerant: it remembers its byte
offset, keeps a partial final line buffered until the writer finishes
it, and never re-reads the head of the file — tailing a multi-hour
stream costs the same per refresh as tailing a fresh one.

Keys: ``q`` quits (Ctrl-C always works); everything else is display.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from .metrics import Histogram
from .summary import parse_metric_key

PathLike = Union[str, Path]

Row = Dict[str, object]

#: ANSI: cursor home + clear-to-end — repaint without scrollback spam.
_REFRESH = "\x1b[H\x1b[J"


class TailReader:
    """Incremental JSON-lines tail with torn-line buffering.

    Each :meth:`poll` returns the complete rows appended since the
    last poll.  A final line without its newline stays buffered — the
    writer flushes whole lines, so the fragment completes on a later
    poll (or never, if the writer died mid-write, in which case it is
    correctly never surfaced).  Truncation (a fresh run reusing the
    file) resets the reader.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._offset = 0
        self._buffer = b""

    def poll(self) -> List[Row]:
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._offset:  # truncated: a new run took the file
            self._offset = 0
            self._buffer = b""
        rows: List[Row] = []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
            self._offset = handle.tell()
        data = self._buffer + chunk
        lines = data.split(b"\n")
        self._buffer = lines.pop()  # b"" after a terminated final line
        for raw in lines:
            if not raw:
                continue
            try:
                row = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue  # foreign line; the dashboard shrugs
            if isinstance(row, dict):
                rows.append(row)
        return rows


class TopModel:
    """The dashboard's state: consume rows, render a frame.

    Pure in-memory — no terminal I/O — so tests drive it row-by-row
    and assert on :meth:`frame` output directly.
    """

    def __init__(self, window: int = 20) -> None:
        self.meta: Optional[Row] = None
        self.batches = 0
        self.records = 0
        self.wall_seconds = 0.0
        self.questions = 0
        self.stage_hist: Dict[str, Histogram] = {}
        self.stage_totals: Dict[str, float] = {}
        self.shard_busy: Dict[str, float] = {}
        self.drift_events: List[Row] = []
        self.recent: Deque[Tuple[int, int, float]] = deque(maxlen=window)
        self.rows_seen = 0

    # -- ingest ------------------------------------------------------------

    def consume(self, row: Row) -> None:
        self.rows_seen += 1
        kind = row.get("type")
        if kind == "meta":
            self.meta = row
        elif kind == "batch":
            self.batches += 1
            records = int(row.get("records", 0))
            seconds = float(row.get("seconds", 0.0))
            questions = int(row.get("questions_asked", 0))
            self.records += records
            self.wall_seconds += seconds
            self.questions += questions
            self.recent.append((records, questions, seconds))
            for stage, value in (row.get("stage_seconds") or {}).items():
                hist = self.stage_hist.get(stage)
                if hist is None:
                    hist = self.stage_hist[stage] = Histogram(stage, {})
                hist.observe(float(value))
                self.stage_totals[stage] = (
                    self.stage_totals.get(stage, 0.0) + float(value)
                )
        elif kind == "event" and row.get("event") == "drift":
            self.drift_events.append(row)
        elif kind == "snapshot":
            for key, value in (row.get("metrics") or {}).items():
                name, labels = parse_metric_key(key)
                if name == "shards.busy_seconds" and "shard" in labels:
                    self.shard_busy[labels["shard"]] = float(value)

    def consume_all(self, rows) -> None:
        for row in rows:
            self.consume(row)

    # -- questions-asked rate ----------------------------------------------

    def question_rate(self) -> Tuple[float, float]:
        """``(questions per batch, questions per 1k records)`` over the
        sliding window of recent batches."""
        if not self.recent:
            return 0.0, 0.0
        records = sum(item[0] for item in self.recent)
        questions = sum(item[1] for item in self.recent)
        per_batch = questions / len(self.recent)
        per_1k = 1000.0 * questions / records if records else 0.0
        return per_batch, per_1k

    # -- render ------------------------------------------------------------

    def frame(self, width: int = 80) -> str:
        lines: List[str] = []
        title = "repro top"
        if self.meta:
            command = self.meta.get("command", "?")
            dataset = self.meta.get("dataset")
            title += f" — {command}" + (f" ({dataset})" if dataset else "")
        lines.append(title[:width])
        per_batch, per_1k = self.question_rate()
        lines.append(
            f"batches={self.batches} records={self.records} "
            f"wall={self.wall_seconds:.2f}s questions={self.questions} "
            f"rate={per_batch:.1f}/batch ({per_1k:.1f}/1k rows)"[:width]
        )
        lines.append("")

        if self.stage_hist:
            lines.append(
                f"{'stage':<10} {'p50':>9} {'p95':>9} {'p99':>9} "
                f"{'total':>9}  share"
            )
            run_total = sum(self.stage_totals.values()) or 1.0
            ordered = sorted(
                self.stage_totals.items(), key=lambda item: -item[1]
            )
            for stage, total in ordered:
                hist = self.stage_hist[stage]
                share = 100.0 * total / run_total
                bar = "#" * max(1, int(round(share / 4)))
                lines.append(
                    f"{stage:<10} "
                    f"{1e3 * hist.quantile(0.50):>8.1f}m "
                    f"{1e3 * hist.quantile(0.95):>8.1f}m "
                    f"{1e3 * hist.quantile(0.99):>8.1f}m "
                    f"{total:>8.2f}s  {share:>4.1f}% {bar}"[:width]
                )
            lines.append("")

        if self.shard_busy:
            wall = self.wall_seconds or 1.0
            parts = []
            for shard in sorted(self.shard_busy, key=int):
                fraction = self.shard_busy[shard] / wall
                parts.append(f"s{shard}={100.0 * fraction:.0f}%")
            lines.append(("shard busy: " + " ".join(parts))[:width])
            lines.append("")

        if self.drift_events:
            lines.append(f"drift events: {len(self.drift_events)}")
            for event in self.drift_events[-3:]:
                lines.append(
                    f"  batch={event.get('batch', '?')} "
                    f"miss_rate={event.get('miss_rate', '?')}"[:width]
                )
            lines.append("")

        lines.append(f"rows={self.rows_seen}  [q quits]")
        return "\n".join(lines)


def _poll_quit(timeout: float) -> bool:
    """True when the user pressed ``q`` within ``timeout`` seconds.
    Falls back to a plain sleep when stdin is not a tty (piped runs,
    CI) or on platforms without selectable stdin."""
    try:
        if not sys.stdin.isatty():
            time.sleep(timeout)
            return False
        import select

        ready, _, _ = select.select([sys.stdin], [], [], timeout)
        if ready:
            return sys.stdin.readline().strip().lower().startswith("q")
    except (OSError, ValueError, ImportError):
        time.sleep(timeout)
    return False


def run_top(
    path: PathLike,
    interval: float = 1.0,
    once: bool = False,
    out=None,
    max_refreshes: Optional[int] = None,
) -> int:
    """The ``repro top`` loop: tail, fold, repaint.

    ``once`` renders a single plain frame (no ANSI) and returns — the
    scriptable form.  ``max_refreshes`` bounds the loop for tests.
    """
    out = out if out is not None else sys.stdout
    reader = TailReader(path)
    model = TopModel()
    if once:
        model.consume_all(reader.poll())
        out.write(model.frame() + "\n")
        return 0
    refreshes = 0
    try:
        while True:
            model.consume_all(reader.poll())
            out.write(_REFRESH + model.frame() + "\n")
            out.flush()
            refreshes += 1
            if max_refreshes is not None and refreshes >= max_refreshes:
                return 0
            if _poll_quit(interval):
                return 0
    except KeyboardInterrupt:
        return 0
