"""``repro.obs`` — stdlib-only metrics, tracing, and sinks.

The observability layer the rest of the system reports into:

* :mod:`~repro.obs.metrics` — counters / gauges / histograms with
  deterministic p50/p95/p99 estimation, behind a
  :class:`MetricsRegistry` (or the no-op :data:`NULL_REGISTRY`);
* :mod:`~repro.obs.trace` — nested timed spans;
* :mod:`~repro.obs.sinks` — JSON-lines file sink (torn-tail tolerant,
  like the decision log), in-memory sink for tests, and a
  Prometheus-style text writer for the future serve tier;
* :mod:`~repro.obs.summary` — reader / schema validator / summarizer
  / trace-tree renderer behind ``repro stats --metrics``;
* :mod:`~repro.obs.profiler` — sampling profiler (collapsed stacks,
  span-attributed) behind ``repro stream --profile``;
* :mod:`~repro.obs.baseline` — BENCH history regression gate behind
  ``repro bench check``;
* :mod:`~repro.obs.top` — the live terminal monitor behind
  ``repro top``.

Everything hangs off one :class:`Obs` facade::

    obs = Obs(sink=JsonlSink("run.jsonl"), trace=True)
    with obs.span("stream.batch", batch=3) as span:
        ...
    obs.metrics.counter("stream.merges").inc(5)
    obs.flush_snapshot()
    obs.close()

The hot-path default is :data:`NULL_OBS`: spans still time (stage
seconds stay populated in reports), but no metric state is kept and
nothing is written — the disabled cost is one ``enabled`` check per
hook, asserted < 5% end-to-end by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

from .metrics import (  # noqa: F401 (public re-exports)
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    metric_key,
)
from .sinks import JsonlSink, MemorySink, prometheus_text  # noqa: F401
from .trace import NULL_TRACER, NullTracer, Span, Tracer  # noqa: F401

__all__ = [
    "Obs",
    "NULL_OBS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "metric_key",
    "Tracer",
    "NullTracer",
    "Span",
    "JsonlSink",
    "MemorySink",
    "prometheus_text",
]


class Obs:
    """One observability context: a registry, a tracer, and a sink.

    ``enabled`` is the single flag hot paths check before doing any
    per-batch bookkeeping; it is True for every real ``Obs`` and False
    only on :data:`NULL_OBS`.
    """

    enabled = True

    def __init__(
        self,
        sink=None,
        trace: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else MemorySink()
        self.tracer = Tracer(
            registry=self.metrics, emit=self.sink.emit, trace=trace
        )

    def span(self, name: str, **tags: object) -> Span:
        """A timed (and, when tracing, recorded) region of work."""
        return self.tracer.span(name, **tags)

    def emit(self, row: Dict[str, object]) -> None:
        """Write one raw row (``{"type": ...}``) to the sink."""
        self.sink.emit(row)

    def event(self, name: str, **fields: object) -> None:
        """Record a discrete occurrence (drift trigger, relearn, ...)
        as an ``event`` row."""
        row: Dict[str, object] = {"type": "event", "event": name}
        row.update(fields)
        self.sink.emit(row)

    def flush_snapshot(self, deterministic_only: bool = False) -> None:
        """Append a full registry dump as a ``snapshot`` row — the
        authoritative totals ``repro stats`` prefers over per-batch
        rows."""
        self.sink.emit(
            {
                "type": "snapshot",
                "deterministic": deterministic_only,
                "metrics": self.metrics.snapshot(
                    deterministic_only=deterministic_only
                ),
            }
        )

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Obs":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class _NullObs:
    """The disabled context: timing spans, no recording, no sink."""

    enabled = False
    metrics = NULL_REGISTRY
    tracer = NULL_TRACER
    sink = None

    def span(self, name: str, **tags: object) -> Span:
        return Span(name, tags, tracer=None)

    def emit(self, row: Dict[str, object]) -> None:
        pass

    def event(self, name: str, **fields: object) -> None:
        pass

    def flush_snapshot(self, deterministic_only: bool = False) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullObs":
        return self

    def __exit__(self, *_exc) -> None:
        pass


NULL_OBS = _NullObs()
