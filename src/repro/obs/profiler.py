"""Sampling profiler (``repro stream --profile out.jsonl``).

A background daemon thread samples the main thread's Python stack via
``sys._current_frames()`` on a fixed interval (default 5 ms — ~200
samples/s, far below the cost of tracing every call) and aggregates
the samples as **collapsed stacks**: ``frame;frame;frame`` from
outermost to innermost, one count per identical stack.  That is the
input format of every flamegraph renderer (``flamegraph.pl``,
speedscope, inferno) — :meth:`SamplingProfiler.collapsed_lines` is
directly pastable into any of them.

Each sample is also attributed to the **active span** of the tracer it
was built with (:meth:`~repro.obs.trace.Tracer.current_name` — read
cross-thread, which is safe because the stack is only ever appended
and popped, and a racy read merely mis-attributes one 5 ms sample), so
the profile answers not just *"which function burns time"* but
*"inside which pipeline stage"* — the hot loop of ``stream.learn`` and
the hot loop of ``stream.resolve`` stay separate rows even when they
share helper functions.

Output rows (JSON-lines via :meth:`write`)::

    {"type": "meta", "command": "profile", "interval": 0.005,
     "samples": 1234, "seconds": 6.17}
    {"type": "profile", "stack": "mod:f;mod:g", "span": "stream.learn",
     "count": 42}

Stdlib-only, like the rest of ``repro.obs``; sampling overhead is a
single frame walk per tick, independent of how fast the profiled code
runs.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]


def _frame_label(frame) -> str:
    """One collapsed-stack frame: ``file-basename:function``."""
    code = frame.f_code
    filename = code.co_filename
    slash = filename.rfind("/")
    backslash = filename.rfind("\\")
    cut = max(slash, backslash)
    return f"{filename[cut + 1:]}:{code.co_name}"


class SamplingProfiler:
    """Samples the target thread's stack into collapsed-stack counts.

    Use as a context manager around the region to profile::

        profiler = SamplingProfiler(interval=0.005, tracer=obs.tracer)
        with profiler:
            run_the_stream()
        profiler.write("profile.jsonl")

    ``tracer`` is optional; when given, each sample carries the name of
    the span active at sample time (``None`` between spans).  Only the
    thread that *starts* the profiler is sampled — the stream hot path
    is single-threaded in the parent, and shard workers are separate
    processes whose time is already attributed by their ``shard.*``
    spans.
    """

    def __init__(
        self,
        interval: float = 0.005,
        tracer=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = interval
        self.tracer = tracer
        #: aggregated samples: (collapsed stack, span name) -> count
        self.counts: Dict[Tuple[str, Optional[str]], int] = {}
        self.samples = 0
        self.seconds = 0.0
        self._target_id: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_id = threading.get_ident()
        self._stop.clear()
        self._started = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        self.seconds += time.perf_counter() - self._started

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- the sampler thread ------------------------------------------------

    def _run(self) -> None:
        target = self._target_id
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            frame = frames.get(target)
            if frame is None:  # target thread exited
                return
            labels: List[str] = []
            while frame is not None:
                labels.append(_frame_label(frame))
                frame = frame.f_back
            labels.reverse()  # outermost first, flamegraph convention
            span: Optional[str] = None
            if self.tracer is not None:
                try:
                    span = self.tracer.current_name()
                except Exception:  # cross-thread race: drop attribution
                    span = None
            key = (";".join(labels), span)
            self.counts[key] = self.counts.get(key, 0) + 1
            self.samples += 1

    # -- output ------------------------------------------------------------

    def rows(self) -> List[Dict[str, object]]:
        """Aggregated ``profile`` rows, heaviest stacks first."""
        ordered = sorted(
            self.counts.items(), key=lambda item: (-item[1], item[0])
        )
        out: List[Dict[str, object]] = []
        for (stack, span), count in ordered:
            row: Dict[str, object] = {
                "type": "profile",
                "stack": stack,
                "span": span,
                "count": count,
            }
            out.append(row)
        return out

    def collapsed_lines(self, by_span: bool = False) -> List[str]:
        """``"stack count"`` lines for flamegraph tools.  With
        ``by_span`` the active span becomes the root frame, so the
        flamegraph groups by pipeline stage."""
        merged: Dict[str, int] = {}
        for (stack, span), count in self.counts.items():
            if by_span:
                stack = f"{span or '(no span)'};{stack}"
            merged[stack] = merged.get(stack, 0) + count
        return [
            f"{stack} {count}"
            for stack, count in sorted(
                merged.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def write(self, path: PathLike) -> None:
        """Write a meta row plus all profile rows as JSON-lines."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            meta = {
                "type": "meta",
                "command": "profile",
                "interval": self.interval,
                "samples": self.samples,
                "seconds": round(self.seconds, 6),
            }
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            for row in self.rows():
                handle.write(
                    json.dumps(row, sort_keys=True, ensure_ascii=False)
                    + "\n"
                )
