"""BENCH regression gates (``repro bench check`` / ``bench baseline``).

``benchmarks/conftest.py`` appends a provenance-stamped JSON-lines row
to ``benchmarks/results/BENCH_<name>.json`` for every bench run — per
test timings plus each bench's ``record_result`` headline numbers
(speedups, overheads, throughputs).  Until now nothing *read* that
history, so a 2x perf regression shipped silently as one more row.
This module closes the loop:

* :func:`load_history` — torn-tolerant reader over a results
  directory, series-keyed: one series per ``(bench, test)`` wall-clock
  timing and one per ``(bench, headline field)``;
* :func:`build_baseline` — the committed reference: per-series median
  (robust to one noisy run) over the history, with the metric's
  direction (``lower`` is better for seconds/overheads, ``higher`` for
  speedups/throughputs) inferred from the field name;
* :func:`check` — compare each series' *latest* value against the
  baseline with a multiplicative tolerance; a ``lower`` metric
  regresses when ``latest > baseline * tolerance``, a ``higher``
  metric when ``latest < baseline / tolerance``.

``repro bench check`` exits nonzero on any regression, which is what
makes the CI perf-smoke job self-enforcing: the benches append fresh
rows, then the gate compares them against ``benchmarks/baseline.json``
committed from known-good history.

The tolerance is multiplicative and deliberately generous by default
(:data:`DEFAULT_TOLERANCE` = 1.5): shared CI runners are noisy, and
the gate's job is catching *step-function* regressions (an accidental
O(n^2), a dropped cache), not 5% jitter.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

PathLike = Union[str, Path]

Row = Dict[str, object]

#: default multiplicative tolerance: a lower-is-better series fails at
#: > 1.5x its baseline, a higher-is-better series at < 1/1.5 of it.
DEFAULT_TOLERANCE = 1.5

#: provenance / bookkeeping fields that are never perf series.
_NON_METRIC_FIELDS = {
    "bench",
    "test",
    "outcome",
    "git",
    "python",
    "cpus",
    "scale",
    "timestamp",
    "rows",
}

#: headline-field name fragments that mean *higher* is better; every
#: other numeric field (seconds, overheads, byte counts) gates as
#: lower-is-better, the conservative default for a perf gate.
_HIGHER_IS_BETTER = ("speedup", "throughput", "ratio", "per_second")


def direction_of(field: str) -> str:
    """``"higher"`` or ``"lower"`` — which way the metric improves."""
    lowered = field.lower()
    if any(marker in lowered for marker in _HIGHER_IS_BETTER):
        return "higher"
    return "lower"


def _iter_rows(path: Path) -> Iterator[Row]:
    """Rows of one BENCH file; skips torn/corrupt lines (the file is
    append-per-run across many machines — one bad line must not take
    the whole history gate down)."""
    try:
        data = path.read_text(encoding="utf-8")
    except OSError:
        return
    for line in data.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            yield row


def _series_of(bench: str, row: Row) -> List[Tuple[str, float]]:
    """The ``(series key, value)`` points contributed by one row.

    Auto test rows (``test`` + ``seconds``) contribute their wall
    clock only when the test passed — a failed run's timing measures
    the failure, not the code.  Headline rows contribute every numeric
    field that is not provenance.
    """
    points: List[Tuple[str, float]] = []
    if "test" in row:
        if row.get("outcome") == "passed" and isinstance(
            row.get("seconds"), (int, float)
        ):
            points.append((f"{bench}::{row['test']}", float(row["seconds"])))
        return points
    for field, value in row.items():
        if field in _NON_METRIC_FIELDS:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        points.append((f"{bench}:{field}", float(value)))
    return points


def load_history(results_dir: PathLike) -> Dict[str, List[float]]:
    """All series in a results directory, points in append order."""
    series: Dict[str, List[float]] = {}
    root = Path(results_dir)
    for path in sorted(root.glob("BENCH_*.json")):
        bench = path.stem[len("BENCH_"):]
        for row in _iter_rows(path):
            for key, value in _series_of(bench, row):
                series.setdefault(key, []).append(value)
    return series


def build_baseline(
    results_dir: PathLike,
    min_points: int = 1,
    max_spread: float = 4.0,
) -> Dict[str, object]:
    """The committed reference: per-series median and direction.

    Series whose own history already varies by more than
    ``max_spread`` (max/min) are excluded and listed under
    ``"skipped"``: a multiplicative gate on a series that swings 10x
    between identical-code runs fires on noise, never on regressions.
    Series with non-positive values are excluded for the same reason —
    a multiplicative tolerance has no meaning at or below zero.
    """
    series = load_history(results_dir)
    metrics: Dict[str, Dict[str, object]] = {}
    skipped: Dict[str, str] = {}
    for key, values in sorted(series.items()):
        if len(values) < min_points:
            continue
        if min(values) <= 0:
            skipped[key] = "non-positive values"
            continue
        spread = max(values) / min(values)
        if len(values) >= 2 and spread > max_spread:
            skipped[key] = (
                f"unstable history ({spread:.1f}x spread "
                f"> {max_spread:g}x)"
            )
            continue
        field = key.rsplit(":", 1)[-1] if "::" not in key else "seconds"
        metrics[key] = {
            "baseline": round(statistics.median(values), 9),
            "direction": direction_of(field),
            "points": len(values),
        }
    return {
        "version": 1,
        "max_spread": max_spread,
        "metrics": metrics,
        "skipped": skipped,
    }


def save_baseline(baseline: Dict[str, object], path: PathLike) -> None:
    Path(path).write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: PathLike) -> Dict[str, object]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(f"{path}: not a baseline file")
    return data


class CheckResult:
    """Outcome of one series' comparison."""

    __slots__ = ("series", "baseline", "latest", "direction", "limit", "ok")

    def __init__(self, series, baseline, latest, direction, limit, ok):
        self.series = series
        self.baseline = baseline
        self.latest = latest
        self.direction = direction
        self.limit = limit
        self.ok = ok

    def describe(self) -> str:
        verdict = "ok" if self.ok else "REGRESSION"
        op = "<=" if self.direction == "lower" else ">="
        return (
            f"{verdict:<10} {self.series}: latest={self.latest:.6g} "
            f"{op} limit={self.limit:.6g} "
            f"(baseline={self.baseline:.6g}, {self.direction} is better)"
        )


def check(
    results_dir: PathLike,
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[CheckResult], List[str]]:
    """Gate the latest point of every baselined series.

    Returns ``(results, missing)`` where ``missing`` names baselined
    series with no point in the history at all — reported but not
    failed, because benches legitimately run as subsets (CI smoke runs
    three of five files).
    """
    if tolerance <= 1.0:
        raise ValueError("tolerance must be > 1.0 (multiplicative)")
    history = load_history(results_dir)
    metrics: Dict[str, Dict[str, object]] = baseline.get("metrics", {})
    results: List[CheckResult] = []
    missing: List[str] = []
    for series, entry in sorted(metrics.items()):
        points = history.get(series)
        if not points:
            missing.append(series)
            continue
        latest = points[-1]
        reference = float(entry["baseline"])
        direction = str(entry.get("direction", "lower"))
        if direction == "higher":
            limit = reference / tolerance
            ok = latest >= limit
        else:
            limit = reference * tolerance
            ok = latest <= limit
        results.append(
            CheckResult(series, reference, latest, direction, limit, ok)
        )
    return results, missing
