"""Reading, validating, and summarizing recorded metrics files.

``repro stream --metrics out.jsonl`` writes one JSON object per line;
this module is the consumer side: :func:`iter_rows` replays a file
with the decision-log crash discipline (a torn *final* line is
skipped; corruption anywhere else raises), :func:`validate_rows`
checks rows against the documented schema (docs/observability.md —
the CI perf-smoke job runs this via ``repro stats --metrics --check``),
and :func:`summarize` / :func:`format_summary` fold a recorded run
into the Fig. 9-style per-stage runtime breakdown plus oracle
questions per column and apply-tier hit ratios.

Row types (the stable schema)::

    {"type": "meta",     "command": str, ...}          # run header
    {"type": "batch",    "batch": int, ...}            # BatchReport.stats()
    {"type": "span",     "span": str, "seconds": float, "depth": int,
                         "parent": str|null, "seq": int,
                         "trace": str, "id": int,
                         "parent_id": int|null, ...}
    {"type": "event",    "event": str, ...}            # e.g. drift
    {"type": "snapshot", "deterministic": bool,
                         "metrics": {key: value}}      # registry dump

Span rows carry the distributed-trace identity (``trace`` = run trace
id, ``id`` = per-trace span id, ``parent_id`` = the enclosing span's
id — also for spans recorded inside shard *workers* and re-attached
by the parent), so :func:`build_span_forest` reassembles the exact
cross-process span tree and :func:`format_trace_tree` renders it with
per-node count / total / self time (``repro stats --trace-tree``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

PathLike = Union[str, Path]

Row = Dict[str, object]

ROW_TYPES = ("meta", "batch", "span", "event", "snapshot")

#: required fields (beyond ``type``) per row type, with accepted types.
_REQUIRED = {
    "meta": {"command": str},
    "batch": {"batch": int, "records": int, "seconds": (int, float)},
    "span": {
        "span": str,
        "seconds": (int, float),
        "depth": int,
        "seq": int,
    },
    "event": {"event": str},
    "snapshot": {"deterministic": bool, "metrics": dict},
}

def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a snapshot key back into ``(name, labels)``.

    The exact inverse of :func:`repro.obs.metrics.metric_key`: plain
    label values parse as-is, and values that contained structural
    characters (commas, equals signs, braces, quotes, backslashes)
    arrive double-quoted with ``\\"``/``\\\\`` escapes and are
    unescaped here — so any label value round-trips byte-for-byte.
    """
    brace = key.find("{")
    if brace < 0 or not key.endswith("}"):
        return key, {}
    name = key[:brace]
    body = key[brace + 1 : -1]
    labels: Dict[str, str] = {}
    index = 0
    while index < len(body):
        eq = body.find("=", index)
        if eq < 0:  # not our encoding; treat the remainder as opaque
            break
        label = body[index:eq]
        index = eq + 1
        if index < len(body) and body[index] == '"':
            chars: List[str] = []
            index += 1
            while index < len(body):
                char = body[index]
                if char == "\\" and index + 1 < len(body):
                    chars.append(body[index + 1])
                    index += 2
                    continue
                if char == '"':
                    index += 1
                    break
                chars.append(char)
                index += 1
            labels[label] = "".join(chars)
        else:
            comma = body.find(",", index)
            end = comma if comma >= 0 else len(body)
            labels[label] = body[index:end]
            index = end
        if index < len(body) and body[index] == ",":
            index += 1
    return name, labels


def iter_rows(path: PathLike) -> Iterator[Row]:
    """Replay a metrics file, tolerating a crash-torn final line.

    The append-per-row + flush write discipline of
    :class:`~repro.obs.sinks.JsonlSink` guarantees every line but the
    last was complete when written, so a malformed *final* line is a
    recognized crash signature and silently skipped; a malformed line
    anywhere else means the file is not ours and raises ``ValueError``
    rather than half-loading.
    """
    data = Path(path).read_bytes()
    raw_lines = data.split(b"\n")
    for index, raw in enumerate(raw_lines):
        if raw == b"" and index == len(raw_lines) - 1:
            break  # the empty tail after a final newline
        # Only an *unterminated* final line can be a torn append; a
        # newline-terminated line was complete when flushed.
        last = index == len(raw_lines) - 1
        try:
            row = json.loads(raw.decode("utf-8"))
            if not isinstance(row, dict):
                raise ValueError("row is not an object")
        except (ValueError, UnicodeDecodeError) as exc:
            if last:
                return  # torn tail from a kill mid-write: drop it
            raise ValueError(
                f"{path}:{index + 1}: corrupt metrics row ({exc})"
            ) from exc
        yield row


def validate_rows(rows) -> List[str]:
    """Schema-check rows; returns a list of violation messages (empty
    when the file conforms to docs/observability.md)."""
    problems: List[str] = []
    for number, row in enumerate(rows, start=1):
        kind = row.get("type")
        if kind not in ROW_TYPES:
            problems.append(
                f"row {number}: unknown type {kind!r} "
                f"(expected one of {ROW_TYPES})"
            )
            continue
        for field, types in _REQUIRED[kind].items():
            if field not in row:
                problems.append(
                    f"row {number} ({kind}): missing field {field!r}"
                )
            elif not isinstance(row[field], types) or isinstance(
                row[field], bool
            ) != (types is bool):
                problems.append(
                    f"row {number} ({kind}): field {field!r} has "
                    f"type {type(row[field]).__name__}"
                )
        if kind == "span":
            # Trace-identity fields are optional (older recordings
            # lack them) but must be well-typed when present.
            for field, types in (
                ("trace", str),
                ("id", int),
                ("parent_id", int),
            ):
                value = row.get(field)
                if value is not None and (
                    not isinstance(value, types) or isinstance(value, bool)
                ):
                    problems.append(
                        f"row {number} (span): field {field!r} has "
                        f"type {type(value).__name__}"
                    )
    return problems


# -- the merged span forest (distributed trace view) -----------------------

#: tags that identify a span line in aggregated views (everything else
#: — comparison counts, pair counts, batch numbers — is per-call data).
_IDENTITY_TAGS = ("column", "shard")


def build_span_forest(rows) -> List[Dict[str, object]]:
    """Reassemble span rows into the run's span forest.

    Returns a list of root nodes, each ``{"name", "seconds", "tags",
    "seq", "children": [...]}`` with children in emission (seq) order.
    Rows carrying trace identity (``trace``/``id``/``parent_id``) are
    linked exactly — including worker-recorded ``shard.*`` spans the
    parent re-attached, which is what makes the forest *merged* across
    processes.  Rows from older recordings (no ids) fall back to the
    exit-order + depth reconstruction: spans are emitted children
    first, so a span at depth ``d`` adopts every pending span at depth
    ``d + 1``.
    """
    nodes: List[Dict[str, object]] = []
    by_id: Dict[Tuple[object, object], Dict[str, object]] = {}
    records: List[Row] = []
    for row in rows:
        if row.get("type") != "span":
            continue
        records.append(row)
        node: Dict[str, object] = {
            "name": str(row.get("span")),
            "seconds": float(row.get("seconds", 0.0)),
            "tags": dict(row.get("tags") or {}),
            "seq": int(row.get("seq", len(records))),
            "children": [],
        }
        nodes.append(node)
        if row.get("id") is not None:
            by_id[(row.get("trace"), row["id"])] = node

    roots: List[Dict[str, object]] = []
    pending_by_depth: Dict[int, List[Dict[str, object]]] = {}
    for row, node in zip(records, nodes):
        if row.get("id") is not None:
            parent = by_id.get((row.get("trace"), row.get("parent_id")))
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
            continue
        depth = int(row.get("depth", 0))
        node["children"].extend(pending_by_depth.pop(depth + 1, []))
        if depth == 0:
            roots.append(node)
        else:
            pending_by_depth.setdefault(depth, []).append(node)
    # Torn recordings can leave children whose parent never exited.
    for depth in sorted(pending_by_depth):
        roots.extend(pending_by_depth[depth])
    for node in nodes:
        node["children"].sort(key=lambda child: child["seq"])
    roots.sort(key=lambda root: root["seq"])
    return roots


def _span_label(node: Dict[str, object]) -> str:
    tags = node.get("tags") or {}
    extra = [
        f"{tag}={tags[tag]}" for tag in _IDENTITY_TAGS if tag in tags
    ]
    name = str(node["name"])
    return name + (f"[{', '.join(extra)}]" if extra else "")


def format_trace_tree(rows) -> str:
    """Render the merged span forest with per-node self/total time.

    Nodes are aggregated by their path of labels (span name plus
    identity tags — the per-column golden stages and the per-shard
    worker spans stay separate lines), so a three-batch run renders as
    one tree with ``n=3`` per stage.  ``self`` is the node's total
    minus its children's totals: the time spent in that stage itself,
    the column Fig. 9 cares about.
    """
    forest = build_span_forest(rows)
    if not forest:
        return "no span rows (record the run with --trace)"

    def fold(
        node: Dict[str, object], bucket: Dict[str, Dict[str, object]]
    ) -> None:
        label = _span_label(node)
        agg = bucket.get(label)
        if agg is None:
            agg = bucket[label] = {
                "count": 0,
                "total": 0.0,
                "child_seconds": 0.0,
                "children": {},
            }
        agg["count"] += 1
        agg["total"] += float(node["seconds"])
        for child in node["children"]:
            agg["child_seconds"] += float(child["seconds"])
            fold(child, agg["children"])

    top: Dict[str, Dict[str, object]] = {}
    for root in forest:
        fold(root, top)

    lines = ["trace tree (n / total / self):"]

    def render(bucket: Dict[str, Dict[str, object]], prefix: str) -> None:
        items = sorted(
            bucket.items(), key=lambda item: (-item[1]["total"], item[0])
        )
        for index, (label, agg) in enumerate(items):
            last = index == len(items) - 1
            branch = "`- " if last else "|- "
            self_seconds = max(
                0.0, float(agg["total"]) - float(agg["child_seconds"])
            )
            lines.append(
                f"{prefix}{branch}{label}  n={agg['count']} "
                f"total={float(agg['total']):.3f}s "
                f"self={self_seconds:.3f}s"
            )
            render(
                agg["children"], prefix + ("   " if last else "|  ")
            )

    render(top, "")
    return "\n".join(lines)


def forest_shape(rows, include_shards: bool = False):
    """The timing-free shape of the span forest, for determinism tests.

    Each node reduces to ``(name, identity tags, sorted child
    shapes)``; the result is the sorted list of root shapes.  Two runs
    that did the same work in the same nesting — whatever the clock
    said — compare equal.  ``shard.*`` subtrees are excluded by
    default: like the registry's volatile instruments, execution
    topology (which shard did what, whether a pool exists at all)
    legitimately differs across ``--shards`` values while the logical
    stage structure must not.  Pass ``include_shards=True`` to keep
    them (with their shard index as identity).
    """

    def shape(node: Dict[str, object]):
        name = str(node["name"])
        if not include_shards and name.startswith("shard."):
            return None
        tags = node.get("tags") or {}
        identity = tuple(
            (tag, str(tags[tag]))
            for tag in _IDENTITY_TAGS
            if tag in tags
        )
        children = tuple(
            sorted(
                child_shape
                for child_shape in (
                    shape(child) for child in node["children"]
                )
                if child_shape is not None
            )
        )
        return (name, identity, children)

    return sorted(
        root_shape
        for root_shape in (
            shape(root) for root in build_span_forest(rows)
        )
        if root_shape is not None
    )


def summarize(rows) -> Dict[str, object]:
    """Fold a recorded run into the headline operational numbers.

    Returns a dict with:

    * ``batches`` / ``records`` / ``total_seconds`` — run totals;
    * ``stages`` — per-stage total seconds (the Fig. 9 view), from the
      per-batch ``stage_seconds`` maps;
    * ``questions_by_column`` — oracle spend per column, preferring the
      final deterministic snapshot's ``stream.questions{column=}``
      counters, falling back to batch rows;
    * ``apply`` — tier hit counts and ratios from the snapshot's
      ``apply.*`` counters;
    * ``drift_events`` — recorded drift/relearn events;
    * ``spans`` — per-span-name (count, total seconds) when tracing
      was on.
    """
    batches = 0
    records = 0
    total_seconds = 0.0
    questions_total = 0
    stages: Dict[str, float] = {}
    questions_by_column: Dict[str, int] = {}
    spans: Dict[str, Dict[str, float]] = {}
    drift_events: List[Row] = []
    snapshot: Dict[str, object] = {}
    meta: Optional[Row] = None

    for row in rows:
        kind = row.get("type")
        if kind == "meta" and meta is None:
            meta = row
        elif kind == "batch":
            batches += 1
            records += int(row.get("records", 0))
            total_seconds += float(row.get("seconds", 0.0))
            questions_total += int(row.get("questions_asked", 0))
            for stage, seconds in (row.get("stage_seconds") or {}).items():
                stages[stage] = stages.get(stage, 0.0) + float(seconds)
            for column, asked in (
                row.get("questions_by_column") or {}
            ).items():
                questions_by_column[column] = (
                    questions_by_column.get(column, 0) + int(asked)
                )
        elif kind == "span":
            name = str(row.get("span"))
            entry = spans.setdefault(name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += float(row.get("seconds", 0.0))
        elif kind == "event" and row.get("event") == "drift":
            drift_events.append(row)
        elif kind == "snapshot":
            snapshot = row.get("metrics") or {}  # last snapshot wins

    # Snapshot counters are authoritative when present: they survive a
    # resumed run's full history, where batch rows only cover this file.
    snap_questions: Dict[str, int] = {}
    apply_counters: Dict[str, int] = {}
    for key, value in snapshot.items():
        name, labels = parse_metric_key(key)
        if name == "stream.questions" and "column" in labels:
            snap_questions[labels["column"]] = int(value)
        elif name.startswith("apply.") and isinstance(value, (int, float)):
            field = name[len("apply."):]
            apply_counters[field] = apply_counters.get(field, 0) + int(value)
    if snap_questions:
        questions_by_column = snap_questions

    rows_applied = apply_counters.get("rows", 0)
    tiers = ("exact_hits", "program_hits", "token_hits", "misses")
    apply_summary: Dict[str, object] = dict(apply_counters)
    if rows_applied:
        apply_summary["hit_ratios"] = {
            tier: round(apply_counters.get(tier, 0) / rows_applied, 6)
            for tier in tiers
        }

    return {
        "meta": meta,
        "batches": batches,
        "records": records,
        "total_seconds": round(total_seconds, 6),
        "questions_asked": questions_total,
        "stages": {
            stage: round(seconds, 6)
            for stage, seconds in sorted(stages.items())
        },
        "questions_by_column": dict(sorted(questions_by_column.items())),
        "apply": apply_summary,
        "drift_events": drift_events,
        "spans": {
            name: {
                "count": int(entry["count"]),
                "seconds": round(entry["seconds"], 6),
            }
            for name, entry in sorted(spans.items())
        },
    }


def format_summary(summary: Dict[str, object]) -> str:
    """Render :func:`summarize` output for the terminal (`repro stats
    --metrics`)."""
    lines: List[str] = []
    meta = summary.get("meta") or {}
    if meta:
        lines.append(
            "run: " + str(meta.get("command", "?"))
            + (f" ({meta.get('dataset')})" if meta.get("dataset") else "")
        )
    lines.append(
        f"batches={summary['batches']} records={summary['records']} "
        f"questions={summary['questions_asked']} "
        f"total={summary['total_seconds']:.3f}s"
    )

    stages = summary.get("stages") or {}
    if stages:
        lines.append("")
        lines.append("per-stage runtime (Fig. 9 view):")
        total = sum(stages.values()) or 1.0
        width = max(len(s) for s in stages)
        for stage, seconds in sorted(
            stages.items(), key=lambda item: -item[1]
        ):
            share = 100.0 * seconds / total
            bar = "#" * max(1, int(round(share / 2.5)))
            lines.append(
                f"  {stage:<{width}}  {seconds:>9.3f}s "
                f"{share:>5.1f}%  {bar}"
            )

    questions = summary.get("questions_by_column") or {}
    if questions:
        lines.append("")
        lines.append("oracle questions per column:")
        for column, asked in questions.items():
            lines.append(f"  {column}: {asked}")

    apply_summary = summary.get("apply") or {}
    ratios = apply_summary.get("hit_ratios") if apply_summary else None
    if ratios:
        lines.append("")
        lines.append(
            f"apply tiers over {apply_summary.get('rows', 0)} rows:"
        )
        for tier, ratio in ratios.items():
            count = apply_summary.get(tier, 0)
            lines.append(f"  {tier}: {count} ({100.0 * ratio:.1f}%)")
        cache_hits = apply_summary.get("cache_hits")
        if cache_hits:
            lines.append(f"  lru cache_hits: {cache_hits}")
        distinct = apply_summary.get("distinct_values")
        if distinct:
            rows = apply_summary.get("rows", 0) or 1
            broadcast = apply_summary.get("broadcast_rows", 0)
            lines.append(
                f"  columnar: {distinct} distinct values interned, "
                f"{broadcast} rows broadcast "
                f"({100.0 * broadcast / rows:.1f}%)"
            )
        sidecar_loads = apply_summary.get("sidecar_loads", 0)
        sidecar_misses = apply_summary.get("sidecar_misses", 0)
        if sidecar_loads or sidecar_misses:
            lines.append(
                f"  sidecar: {sidecar_loads} precompiled loads, "
                f"{sidecar_misses} fallback recompiles"
            )

    drift_events = summary.get("drift_events") or []
    if drift_events:
        lines.append("")
        lines.append(f"drift events: {len(drift_events)}")
        for event in drift_events:
            lines.append(
                f"  batch={event.get('batch', '?')} "
                f"miss_rate={event.get('miss_rate', '?')} "
                f"rows={event.get('rows', '?')}"
            )

    spans = summary.get("spans") or {}
    if spans:
        lines.append("")
        lines.append("spans:")
        for name, entry in spans.items():
            lines.append(
                f"  {name}: n={entry['count']} "
                f"total={entry['seconds']:.3f}s"
            )
    return "\n".join(lines)
