"""Span-based stage tracing (``repro.obs``).

A :class:`Span` is one timed region of the hot path —
``with obs.span("stream.batch", batch=3):`` — and spans nest: the
tracer maintains a stack, so each emitted row carries its parent and
depth and a recorded run reconstructs the full stage tree (batch >
stage > shard op) that ``repro stats`` folds into the Fig. 9-style
per-stage breakdown.

Tracing is also **cross-process**: every recording tracer owns a
``trace_id`` and gives each recorded span a per-trace ``span_id``.
:meth:`Tracer.current_context` exposes the active ``(trace id,
span id)`` pair, which the :class:`~repro.stream.shards.ShardPool`
ships to shard workers alongside each op; the worker times its real
work as *remote span records* that ride back with the reply, and
:meth:`Tracer.attach_remote` re-attaches them under the span that
issued the request — so a ``shard.match`` span recorded inside a
worker process lands in the recorded forest as a child of the parent
batch's ``stream.resolve`` span, with its shard index as a tag.

Three properties matter for the rest of the system:

* **spans always time** — ``Span.seconds`` is valid even under the
  null tracer, so consolidator stage timings (``BatchReport.
  stage_seconds``) come from the very same spans whether or not
  anyone is recording;
* **recording is opt-in twice** — span *rows* are only emitted to the
  sink when the tracer was built with ``trace=True``; the per-span
  duration histograms land in the registry whenever one is attached.
  With neither, a span is two ``perf_counter`` calls and an integer
  push/pop;
* **context is free when off** — span ids are only assigned (and
  trace context only ships to workers) when ``trace=True``, so the
  cross-process machinery adds nothing to an untraced run.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .metrics import NULL_REGISTRY

Emit = Callable[[Dict[str, object]], None]

#: The trace context shipped with cross-process requests: ``(trace id,
#: parent span id)``, or ``None`` when nobody is recording.
TraceContext = Optional[Tuple[str, int]]

#: One worker-recorded span, shipped back inside a reply: ``span`` /
#: ``seconds`` plus optional ``tags`` and ``parent`` (the relative
#: index of its parent record within the same list; ``None`` roots
#: attach under the span that issued the request).  Records are listed
#: in exit order — children before their parents — matching the order
#: a local tracer would have emitted them.
RemoteSpan = Dict[str, object]


class Span:
    """One timed region.  Use as a context manager; after exit,
    ``seconds`` holds the measured duration."""

    __slots__ = ("name", "tags", "tracer", "seconds", "span_id", "_start")

    def __init__(
        self,
        name: str,
        tags: Dict[str, object],
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.tags = tags
        self.tracer = tracer
        self.seconds = 0.0
        #: per-trace span id; assigned at entry by a recording tracer
        self.span_id: Optional[int] = None
        self._start = 0.0

    def __enter__(self) -> "Span":
        if self.tracer is not None:
            self.tracer._enter(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
        if self.tracer is not None:
            self.tracer._exit(self)


def _new_trace_id() -> str:
    """A fresh random 64-bit trace id (hex)."""
    return os.urandom(8).hex()


class Tracer:
    """Builds spans, tracks nesting, and fans span durations out to the
    registry (histograms) and — when ``trace=True`` — the sink (rows).
    """

    def __init__(
        self,
        registry=NULL_REGISTRY,
        emit: Optional[Emit] = None,
        trace: bool = False,
        trace_id: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self._emit = emit
        self.trace = trace and emit is not None
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self._stack: List[Span] = []
        self._sequence = 0
        self._span_ids = 0

    def span(self, name: str, **tags: object) -> Span:
        return Span(name, tags, tracer=self)

    # -- cross-process context ---------------------------------------------

    def current_context(self) -> TraceContext:
        """The ``(trace id, active span id)`` pair a cross-process
        request should carry, or ``None`` when rows are not being
        recorded (workers then skip span recording entirely)."""
        if not self.trace or not self._stack:
            return None
        span_id = self._stack[-1].span_id
        if span_id is None:  # pragma: no cover — trace spans always get ids
            return None
        return self.trace_id, span_id

    def current_name(self) -> Optional[str]:
        """Name of the innermost active span (``None`` outside spans).

        Safe to call from another thread (the sampling profiler reads
        it concurrently): worst case it sees a just-popped stack.
        """
        stack = self._stack
        try:
            return stack[-1].name if stack else None
        except IndexError:  # pragma: no cover — cross-thread pop race
            return None

    def attach_remote(self, spans: Sequence[RemoteSpan]) -> None:
        """Re-attach worker-recorded spans under the active span.

        ``spans`` is the reply's remote-span list (children before
        parents, relative ``parent`` indexes).  Each record becomes a
        real span row of this trace: fresh ids, the current sequence,
        and parentage rooted at the span that is active *now* — for the
        synchronous shard protocol that is exactly the span that issued
        the request, so a worker's ``shard.match`` lands under the
        parent batch's ``stream.resolve``.
        """
        if not self.trace or not spans:
            return
        parent_span = self._stack[-1] if self._stack else None
        base_depth = len(self._stack)
        ids: List[int] = []
        for _ in spans:
            self._span_ids += 1
            ids.append(self._span_ids)
        depths: Dict[int, int] = {}

        def depth_of(index: int) -> int:
            if index in depths:
                return depths[index]
            parent_index = spans[index].get("parent")
            if parent_index is None:
                depth = base_depth
            else:
                depth = depth_of(int(parent_index)) + 1
            depths[index] = depth
            return depth

        for index, record in enumerate(spans):
            name = str(record["span"])
            seconds = float(record["seconds"])
            if self.registry.enabled:
                self.registry.histogram(
                    "span.seconds", deterministic=False, span=name
                ).observe(seconds)
            parent_index = record.get("parent")
            if parent_index is None:
                parent_name = parent_span.name if parent_span else None
                parent_id = parent_span.span_id if parent_span else None
            else:
                parent_name = str(spans[int(parent_index)]["span"])
                parent_id = ids[int(parent_index)]
            self._sequence += 1
            row: Dict[str, object] = {
                "type": "span",
                "seq": self._sequence,
                "span": name,
                "parent": parent_name,
                "depth": depth_of(index),
                "seconds": round(seconds, 9),
                "trace": self.trace_id,
                "id": ids[index],
                "parent_id": parent_id,
            }
            tags = record.get("tags")
            if tags:
                row["tags"] = {key: tags[key] for key in sorted(tags)}
            self._emit(row)

    # -- span lifecycle (called by Span) -----------------------------------

    def _enter(self, span: Span) -> None:
        if self.trace:
            self._span_ids += 1
            span.span_id = self._span_ids
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        depth = len(self._stack) - 1
        parent = self._stack[depth - 1] if depth > 0 else None
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover — misnested exit; recover, don't wedge
            self._stack = [s for s in self._stack if s is not span]
        if self.registry.enabled:
            self.registry.histogram(
                "span.seconds",
                deterministic=False,
                span=span.name,
            ).observe(span.seconds)
        if self.trace:
            self._sequence += 1
            row: Dict[str, object] = {
                "type": "span",
                "seq": self._sequence,
                "span": span.name,
                "parent": parent.name if parent is not None else None,
                "depth": depth,
                "seconds": round(span.seconds, 9),
                "trace": self.trace_id,
                "id": span.span_id,
                "parent_id": parent.span_id if parent is not None else None,
            }
            if span.tags:
                row["tags"] = {
                    key: span.tags[key] for key in sorted(span.tags)
                }
            self._emit(row)


class NullTracer:
    """The disabled tracer: spans still time (callers read
    ``span.seconds``), but nothing is recorded anywhere."""

    trace = False
    trace_id: Optional[str] = None

    def span(self, name: str, **tags: object) -> Span:
        return Span(name, tags, tracer=None)

    def current_context(self) -> TraceContext:
        return None

    def current_name(self) -> Optional[str]:
        return None

    def attach_remote(self, spans: Sequence[RemoteSpan]) -> None:
        pass


NULL_TRACER = NullTracer()
