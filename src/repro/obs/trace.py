"""Span-based stage tracing (``repro.obs``).

A :class:`Span` is one timed region of the hot path —
``with obs.span("stream.batch", batch=3):`` — and spans nest: the
tracer maintains a stack, so each emitted row carries its parent and
depth and a recorded run reconstructs the full stage tree (batch >
stage > shard op) that ``repro stats`` folds into the Fig. 9-style
per-stage breakdown.

Two properties matter for the rest of the system:

* **spans always time** — ``Span.seconds`` is valid even under the
  null tracer, so consolidator stage timings (``BatchReport.
  stage_seconds``) come from the very same spans whether or not
  anyone is recording;
* **recording is opt-in twice** — span *rows* are only emitted to the
  sink when the tracer was built with ``trace=True``; the per-span
  duration histograms land in the registry whenever one is attached.
  With neither, a span is two ``perf_counter`` calls and an integer
  push/pop.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from .metrics import NULL_REGISTRY

Emit = Callable[[Dict[str, object]], None]


class Span:
    """One timed region.  Use as a context manager; after exit,
    ``seconds`` holds the measured duration."""

    __slots__ = ("name", "tags", "tracer", "seconds", "_start")

    def __init__(
        self,
        name: str,
        tags: Dict[str, object],
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.tags = tags
        self.tracer = tracer
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Span":
        if self.tracer is not None:
            self.tracer._enter(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
        if self.tracer is not None:
            self.tracer._exit(self)


class Tracer:
    """Builds spans, tracks nesting, and fans span durations out to the
    registry (histograms) and — when ``trace=True`` — the sink (rows).
    """

    def __init__(
        self,
        registry=NULL_REGISTRY,
        emit: Optional[Emit] = None,
        trace: bool = False,
    ) -> None:
        self.registry = registry
        self._emit = emit
        self.trace = trace and emit is not None
        self._stack: List[Span] = []
        self._sequence = 0

    def span(self, name: str, **tags: object) -> Span:
        return Span(name, tags, tracer=self)

    # -- span lifecycle (called by Span) -----------------------------------

    def _enter(self, span: Span) -> None:
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        depth = len(self._stack) - 1
        parent = self._stack[depth - 1].name if depth > 0 else None
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover — misnested exit; recover, don't wedge
            self._stack = [s for s in self._stack if s is not span]
        if self.registry.enabled:
            self.registry.histogram(
                "span.seconds",
                deterministic=False,
                span=span.name,
            ).observe(span.seconds)
        if self.trace:
            self._sequence += 1
            row: Dict[str, object] = {
                "type": "span",
                "seq": self._sequence,
                "span": span.name,
                "parent": parent,
                "depth": depth,
                "seconds": round(span.seconds, 9),
            }
            if span.tags:
                row["tags"] = {
                    key: span.tags[key] for key in sorted(span.tags)
                }
            self._emit(row)


class NullTracer:
    """The disabled tracer: spans still time (callers read
    ``span.seconds``), but nothing is recorded anywhere."""

    trace = False

    def span(self, name: str, **tags: object) -> Span:
        return Span(name, tags, tracer=None)


NULL_TRACER = NullTracer()
