"""Record-batch sources for the streaming consolidator.

A batch is simply a list of :class:`~repro.data.table.Record`; the
consolidator does not care where batches come from.  Provided sources:

* :func:`batches_from_records` — slice any record iterable into
  fixed-size batches (the in-memory path);
* :func:`read_jsonl_records` / :func:`iter_jsonl_batches` — JSON-lines
  files, one record object per line, reusing the reserved
  ``__rid__`` / ``__source__`` keys of :mod:`repro.data.io` so files
  written by the batch tooling stream back unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..data.io import RID_COLUMN, SOURCE_COLUMN
from ..data.table import Record

PathLike = Union[str, Path]


def batches_from_records(
    records: Iterable[Record], batch_size: int
) -> Iterator[List[Record]]:
    """Slice an iterable of records into batches of ``batch_size``."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    batch: List[Record] = []
    for record in records:
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def read_jsonl_records(path: PathLike) -> List[Record]:
    """Load records from a JSON-lines file (one object per line).

    Reserved keys ``__rid__`` / ``__source__`` populate the record id
    and provenance; everything else becomes attribute values.  Blank
    lines are skipped so hand-edited files keep loading.
    """
    records: List[Record] = []
    with open(path, encoding="utf-8") as handle:
        for idx, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if not isinstance(row, dict):
                raise ValueError(
                    f"{path}:{idx + 1}: each line must be a JSON object"
                )
            rid = str(row.get(RID_COLUMN, "")) or f"r{idx}"
            source = str(row.get(SOURCE_COLUMN, ""))
            values = {
                str(k): str(v)
                for k, v in row.items()
                if k not in (RID_COLUMN, SOURCE_COLUMN)
            }
            records.append(Record(rid, values, source))
    return records


def iter_jsonl_batches(
    path: PathLike, batch_size: int
) -> Iterator[List[Record]]:
    """Stream a JSON-lines file as fixed-size record batches."""
    return batches_from_records(read_jsonl_records(path), batch_size)


def write_jsonl_records(records: Iterable[Record], path: PathLike) -> None:
    """Persist records as JSON-lines (inverse of
    :func:`read_jsonl_records`); ids and sources ride along in the
    reserved keys."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            row = {RID_COLUMN: record.rid, SOURCE_COLUMN: record.source}
            row.update(record.values)
            handle.write(json.dumps(row, ensure_ascii=False) + "\n")
