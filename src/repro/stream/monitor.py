"""Drift detection over the stream's unmatched-arrival rate.

The streaming fast path standardizes incoming values with the compiled
:class:`~repro.serve.engine.ApplyEngine`, and the decision cache
absorbs re-judged variation, before anything reaches the learner.
While the traffic looks like the data the model was learned from, few
records introduce candidate keys nobody has seen; when the upstream
distribution shifts (new sources, new formats), that *unmatched* share
climbs.  :class:`DriftMonitor` watches the share over a sliding window
of batches and signals when deeper relearning is warranted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from ..obs import NULL_OBS


@dataclass
class DriftReport:
    """One monitor evaluation."""

    rows: int
    misses: int
    miss_rate: float
    drifted: bool


class DriftMonitor:
    """Sliding-window unmatched-rate statistics with a trigger."""

    def __init__(
        self,
        window: int = 5,
        miss_rate_threshold: float = 0.5,
        min_rows: int = 25,
        obs=NULL_OBS,
    ) -> None:
        if not 0.0 <= miss_rate_threshold <= 1.0:
            raise ValueError("miss_rate_threshold must be within [0, 1]")
        self.window = max(1, int(window))
        self.miss_rate_threshold = miss_rate_threshold
        self.min_rows = max(0, int(min_rows))
        self._batches: Deque[Tuple[int, int]] = deque(maxlen=self.window)
        self.triggered = 0
        #: observability context; a consolidator binds its own here so
        #: relearn triggers flow through the shared metrics stream.
        self.obs = obs if obs is not None else NULL_OBS

    # -- feeding -----------------------------------------------------------

    def record(
        self, rows: int, misses: int, batch: Optional[int] = None
    ) -> DriftReport:
        """Fold one batch's (rows seen, engine misses) into the window.

        ``batch`` is optional context for the emitted drift event (the
        monitor itself has no notion of batch numbering).
        """
        rows = max(0, int(rows))
        misses = max(0, min(int(misses), rows))
        self._batches.append((rows, misses))
        report = DriftReport(
            self.rows, self.misses, self.miss_rate, self.should_relearn
        )
        if report.drifted:
            self.triggered += 1
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("drift.batches").inc()
            metrics.gauge("drift.miss_rate").set(
                round(report.miss_rate, 9)
            )
            if report.drifted:
                metrics.counter("drift.relearns").inc()
                event = {
                    "rows": report.rows,
                    "misses": report.misses,
                    "miss_rate": round(report.miss_rate, 9),
                    "window": len(self._batches),
                }
                if batch is not None:
                    event["batch"] = batch
                self.obs.event("drift", **event)
        return report

    def reset(self) -> None:
        """Forget the window (call after a relearn pass absorbed it)."""
        self._batches.clear()

    # -- state -------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Cells observed inside the current window."""
        return sum(rows for rows, _ in self._batches)

    @property
    def misses(self) -> int:
        """Cells the model failed to explain inside the window."""
        return sum(misses for _, misses in self._batches)

    @property
    def miss_rate(self) -> float:
        """Windowed unexplained fraction (0.0 on an empty window)."""
        rows = self.rows
        return self.misses / rows if rows else 0.0

    @property
    def should_relearn(self) -> bool:
        """True once the windowed miss rate clears the threshold (and
        enough rows were seen for the rate to mean anything)."""
        return (
            self.rows >= self.min_rows
            and self.miss_rate > self.miss_rate_threshold
        )
