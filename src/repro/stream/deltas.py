"""Golden-record delta logs: the changed-clusters-only publish channel.

A serving tier answering golden-record lookups must track the stream's
output, but re-reading the whole golden table per batch is O(live
clusters) while a batch only ever changes the clusters it touched —
which :class:`~repro.stream.golden.GoldenStreamConsolidator` already
knows (its incremental fusion recomputes exactly those).  This module
turns that knowledge into a durable channel:

* :class:`GoldenDeltaLog` — the producer side.  One JSON line per
  batch: a monotone ``seq``, the clusters whose golden values actually
  changed (``changed``: key -> column -> value), and the cluster keys
  a merge emptied (``removed``).  Writes are append + flush-per-row
  with torn-tail repair on open, the same crash discipline as the
  decision log and :class:`~repro.obs.sinks.JsonlSink`;
* :class:`GoldenDeltaReader` — the consumer side.  An offset-tracking
  tailer: each :meth:`~GoldenDeltaReader.poll` returns only the new
  *complete* rows since the last poll (a half-written final line is
  left for the next poll), and a log that shrank (archived by a
  ``--fresh`` restart and recreated) resets the reader so consumers
  rebuild instead of serving a mix of two histories.

``repro serve --follow`` tails this log to keep its in-memory golden
table current and to push per-batch deltas to subscribed connections —
subscribers receive O(changed clusters) per batch, never a whole-table
re-read.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, Path]

Row = Dict[str, object]

#: ``type`` field of every delta row (reserved for future row kinds).
DELTA_ROW_TYPE = "golden_delta"


class GoldenDeltaLog:
    """Append-only JSON-lines writer of per-batch golden deltas.

    Opening an existing log resumes its sequence (the last complete
    row's ``seq``) after repairing a torn tail, so a resumed stream
    keeps the consumer-visible numbering monotone.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.seq = 0
        self._repair_and_resume()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _repair_and_resume(self) -> None:
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data:
            return
        if not data.endswith(b"\n"):
            # Torn tail from a crash mid-append: a fragment glued onto
            # the next append would be unreadable forever, so truncate
            # it away (an intact final row merely lost its newline and
            # is terminated instead).
            cut = data.rfind(b"\n") + 1
            fragment = data[cut:]
            try:
                json.loads(fragment.decode("utf-8"))
                with open(self.path, "ab") as handle:
                    handle.write(b"\n")
                data += b"\n"
            except (ValueError, UnicodeDecodeError):
                with open(self.path, "r+b") as handle:
                    handle.truncate(cut)
                data = data[:cut]
        for line in data.splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict) and isinstance(row.get("seq"), int):
                self.seq = max(self.seq, row["seq"])

    def append(
        self,
        changed: Dict[str, Dict[str, Optional[str]]],
        removed: List[str],
        batch: Optional[int] = None,
        bundle_version: Optional[int] = None,
    ) -> Optional[Row]:
        """Write one batch's delta; empty deltas are skipped (a batch
        that changed nothing publishes nothing).  Returns the row."""
        if not changed and not removed:
            return None
        self.seq += 1
        row: Row = {
            "type": DELTA_ROW_TYPE,
            "seq": self.seq,
            "batch": batch,
            "bundle_version": bundle_version,
            "changed": changed,
            "removed": sorted(removed),
        }
        self._handle.write(
            json.dumps(row, sort_keys=True, ensure_ascii=False) + "\n"
        )
        self._handle.flush()
        return row

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "GoldenDeltaLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class GoldenDeltaReader:
    """Tails a :class:`GoldenDeltaLog` file, yielding complete new rows.

    The reader is pull-based and cheap to poll: it remembers the byte
    offset of the last complete line consumed and reads only the
    suffix.  Three edge cases are handled explicitly:

    * a **missing file** (the stream has not published yet) polls as
      empty rather than erroring;
    * a **torn tail** (the writer is mid-append, or crashed there) is
      deferred — the partial line stays unconsumed until a later poll
      sees its terminating newline;
    * a **shrunken file** (archived by ``--fresh`` and recreated)
      resets the reader: ``poll`` returns ``reset=True`` rows-from-
      zero so the consumer rebuilds its table instead of mixing two
      histories.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.offset = 0
        self.seq = 0
        self.reset = False

    def poll(self) -> List[Row]:
        """New complete delta rows since the last poll (may be [])."""
        self.reset = False
        try:
            size = self.path.stat().st_size
        except OSError:
            if self.offset:
                self._do_reset()
            return []
        if size < self.offset:
            self._do_reset()
        if size == self.offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            data = handle.read()
        cut = data.rfind(b"\n") + 1
        if cut == 0:
            return []  # only a partial line so far
        rows: List[Row] = []
        for line in data[:cut].splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue  # a torn mid-file line (writer crash artifact)
            if not isinstance(row, dict):
                continue
            seq = row.get("seq")
            if isinstance(seq, int) and seq <= self.seq:
                continue  # replayed history after a writer resume
            if isinstance(seq, int):
                self.seq = seq
            rows.append(row)
        self.offset += cut
        return rows

    def _do_reset(self) -> None:
        self.offset = 0
        self.seq = 0
        self.reset = True
