"""The streaming consolidation orchestrator (``repro stream``).

One :meth:`StreamConsolidator.process_batch` call runs the full
incremental lifecycle for a record batch:

1. **serve fast path** — the current published model standardizes the
   batch's values before they touch anything else; variation the model
   already explains never reaches the resolver as dirt, let alone the
   oracle;
2. **incremental resolution** — the batch is folded into the blocking
   index / union-find cluster state; only pairs touching new records
   are compared;
3. **delta candidates** — the new (and merge-moved) cells are indexed
   into the persistent replacement store, growing existing groups in
   place;
4. **decision-cache replay** — previously confirmed replacements are
   re-applied to the new provenance and previously rejected ones stay
   silenced, both without spending oracle budget;
5. **budgeted learning** — only genuinely novel candidates are grouped
   and presented to the oracle;
6. **drift check** — the unmatched-rate monitor can trigger a deeper
   relearn pass when the model stops explaining the traffic;
7. **publish + hot reload** — new confirmations are rebuilt into the
   cumulative model, published as the next registry version, and every
   subscribed engine reloads in place.

The result is the property the benchmark asserts: per-batch cost scales
with the batch and the *surviving* candidate/decision state (live keys
the oracle has judged or not yet seen), never with a full re-cluster /
re-generate / re-review of everything seen so far.

Two scale/durability levers sit on top (``--shards``, the decision
log):

* **sharding** — with ``shards=N`` the consolidator owns a
  :class:`~repro.stream.shards.ShardPool` of N persistent worker
  processes; similarity matching, candidate-pair alignment, and —
  dominant by far — the grouping feed's graph building and pivot
  searching fan out across them.  Every parallel stage is a pure
  computation merged in canonical order by this (single) parent
  process, so a sharded stream publishes **byte-identical models** and
  asks **exactly the same oracle questions** as a single-process one;
* **durability** — oracle verdicts append to a JSON-lines decision log
  next to the published model (see
  :class:`~repro.stream.decisions.DecisionCache`), and a consolidator
  pointed at a registry that already holds its model *resumes*: the
  engine warm-starts from the latest version, republished models
  extend the old group sequence, and re-arriving variation is answered
  from the replayed verdicts — a restarted stream asks zero repeat
  questions.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..config import DEFAULT_CONFIG, Config
from ..core.grouping import Group
from ..obs import NULL_OBS
from ..core.terms import DEFAULT_VOCABULARY, TermVocabulary
from ..data.table import CellRef, ClusterTable, Record
from ..pipeline.oracle import REVERSE, Decision, GroundTruthOracle, Oracle
from ..pipeline.standardize import (
    AppliedReplacement,
    StandardizationLog,
    StepRecord,
)
from ..resolution.blocking import BlockKeyFn
from ..resolution.matcher import SimilarityFn, hybrid_similarity
from ..serve.engine import ApplyEngine
from ..serve.model import TransformationModel, build_model
from ..serve.registry import ModelRegistry, slugify
from .decisions import DecisionCache, archive_log
from .monitor import DriftMonitor
from .publisher import ModelPublisher
from .resolver import IncrementalResolver
from .scheduler import QUESTION_ORDERS
from .shards import ShardPool
from .standardizer import IncrementalStandardizer

#: Builds the reviewing oracle once the consolidator's state exists.
OracleFactory = Callable[["StreamConsolidator"], Oracle]

PathLike = Union[str, Path]


@dataclass
class BatchReport:
    """Everything one batch did, for observability and assertions."""

    index: int
    records: int
    #: cells rewritten by the serve fast path before resolution
    explained_cells: int = 0
    #: cells whose variation created candidate keys nothing had seen
    #: before (the drift monitor's unmatched signal)
    unmatched_cells: int = 0
    merges: int = 0
    new_clusters: int = 0
    pairs_compared: int = 0
    #: resident values shipped to shard workers (0 without a pool)
    values_shipped: int = 0
    #: serialized bytes shipped to shard workers across the batch's
    #: data-plane ops (resolve scripts + alignment fan-out)
    bytes_shipped: int = 0
    #: cached-approved replacements re-applied without a question
    reused_replacements: int = 0
    reused_cells: int = 0
    #: live candidates silenced by a cached rejection
    rejected_skips: int = 0
    #: verdicts settled transitively from approved rewrites (yield
    #: scheduling only), recorded in the log with source "inferred"
    inferred_verdicts: int = 0
    questions_asked: int = 0
    groups_approved: int = 0
    cells_changed: int = 0
    model_version: Optional[int] = None
    drift_triggered: bool = False
    seconds: float = 0.0
    #: wall-clock per lifecycle stage (engine, resolve, derive, replay,
    #: learn, oracle, drift, publish); ``oracle`` is the review time
    #: *inside* learn/drift, split out because in production it is
    #: human latency, not compute
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        version = (
            f"v{self.model_version}" if self.model_version else "unchanged"
        )
        return (
            f"batch {self.index}: {self.records} records, "
            f"{self.explained_cells} engine-explained, "
            f"{self.merges} merges, "
            f"{self.questions_asked} questions "
            f"(+{self.reused_replacements} reused, "
            f"{self.rejected_skips} silenced), "
            f"{self.cells_changed} cells changed, model {version}"
            + (", DRIFT" if self.drift_triggered else "")
        )

    def stats(self) -> Dict[str, object]:
        """The batch's counters as a JSON-friendly dict (one row of
        ``repro stream --stats`` output)."""
        return {
            "batch": self.index,
            "records": self.records,
            "candidate_pairs": self.pairs_compared,
            "values_shipped": self.values_shipped,
            "bytes_shipped": self.bytes_shipped,
            "explained_cells": self.explained_cells,
            "unmatched_cells": self.unmatched_cells,
            "merges": self.merges,
            "questions_asked": self.questions_asked,
            "reused_replacements": self.reused_replacements,
            "inferred_verdicts": self.inferred_verdicts,
            "cells_changed": self.cells_changed,
            "model_version": self.model_version,
            "seconds": round(self.seconds, 6),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_seconds.items()
            },
        }


class _TimedOracle:
    """Per-batch oracle wrapper accumulating ``review`` wall-clock.

    Oracle time is split out of the learn stage because in production
    it is *human latency*, not compute — Fig. 9-style breakdowns are
    misleading when review time hides inside learning.  Everything but
    ``review`` delegates to the wrapped oracle.
    """

    def __init__(self, inner: Oracle) -> None:
        self._inner = inner
        self.seconds = 0.0
        self.reviews = 0

    def review(self, group: Group) -> Decision:
        started = time.perf_counter()
        try:
            return self._inner.review(group)
        finally:
            self.seconds += time.perf_counter() - started
            self.reviews += 1

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


@contextmanager
def _timed_stage(obs, stage_seconds: Dict[str, float], name: str, **tags):
    """Time one lifecycle stage as a ``stream.<name>`` span and fold
    its duration into the report's ``stage_seconds`` (accumulating:
    the golden consolidator re-enters stages once per column, tagging
    each pass with ``column=...`` so a trace keeps them apart)."""
    with obs.span("stream." + name, **tags) as span:
        yield span
    stage_seconds[name] = stage_seconds.get(name, 0.0) + span.seconds


def _sync_pool_metrics(obs, pool: Optional[ShardPool]) -> None:
    """Mirror a pool's parent-side aggregates into the registry.

    All gauges (set to the cumulative totals, so the sync is idempotent
    per batch) and all *volatile*: IPC volume and shard compute time
    legitimately differ across ``--shards`` values, and excluding them
    from the deterministic snapshot is what keeps that snapshot
    byte-identical at any shard count.
    """
    if pool is None or not obs.enabled:
        return
    metrics = obs.metrics
    metrics.gauge("shards.values_shipped", deterministic=False).set(
        pool.shipped_values
    )
    metrics.gauge(
        "shards.candidate_ids_shipped", deterministic=False
    ).set(pool.shipped_candidate_ids)
    metrics.gauge("shards.bytes_shipped", deterministic=False).set(
        pool.shipped_bytes
    )
    for op in sorted(pool.op_requests):
        metrics.gauge("shards.requests", deterministic=False, op=op).set(
            pool.op_requests[op]
        )
        metrics.gauge(
            "shards.op_seconds", deterministic=False, op=op
        ).set(round(pool.op_seconds.get(op, 0.0), 9))
    for shard, seconds in enumerate(pool.shard_seconds):
        metrics.gauge(
            "shards.busy_seconds", deterministic=False, shard=str(shard)
        ).set(round(seconds, 9))


class _CellCanonical:
    """Cell -> canonical-string view over rid-keyed ground truth.

    The cumulative table's cells move and grow; ground truth for a
    stream is naturally keyed by record id.  This adapter resolves the
    cell to its record at lookup time so
    :class:`~repro.pipeline.oracle.GroundTruthOracle` works unchanged.
    """

    def __init__(
        self, resolver: IncrementalResolver, by_rid: Dict[str, str]
    ) -> None:
        self._resolver = resolver
        self._by_rid = by_rid

    def get(self, cell: CellRef, default: Optional[str] = None):
        rid = self._resolver.rid_of_cell(cell)
        if rid is None:
            return default
        return self._by_rid.get(rid, default)


def ground_truth_oracle_factory(
    canonical_by_rid: Dict[str, str], seed: int = 0, error_rate: float = 0.0
) -> OracleFactory:
    """An :data:`OracleFactory` simulating the expert from rid-keyed
    ground truth (the streaming analogue of the one-shot harness)."""

    def factory(consolidator: "StreamConsolidator") -> Oracle:
        return GroundTruthOracle(
            _CellCanonical(consolidator.resolver, canonical_by_rid),
            consolidator.store,
            error_rate=error_rate,
            seed=seed,
        )

    return factory


def _log_from_model(model: TransformationModel) -> StandardizationLog:
    """Reconstruct a cumulative log from a published model (resume).

    Published models are append-only: each version's group sequence
    extends the last.  Rehydrating the confirmed groups as approved
    steps lets a restarted consolidator's next publish *extend* the
    prior sequence — consumers keep their incremental
    :meth:`~repro.serve.engine.ApplyEngine.reload` path — instead of
    starting a fresh, shorter model.  Rejected steps are not persisted
    in the group sequence (only in provenance), so they are not
    rehydrated; that only means a resumed stream's provenance decision
    list restarts, never that a question is re-asked (the decision log
    covers rejections).
    """
    log = StandardizationLog()
    for confirmed in model.groups:
        decision = Decision(True, confirmed.direction)
        members = tuple(
            member.replacement.reversed()
            if confirmed.direction == REVERSE
            else member.replacement
            for member in confirmed.members
        )
        applied = [
            AppliedReplacement(
                member.replacement,
                member.whole,
                member.token,
                member.cells_changed,
            )
            for member in confirmed.members
        ]
        log.steps.append(
            StepRecord(
                len(log.steps),
                Group(confirmed.program, members, confirmed.structure),
                decision,
                sum(member.cells_changed for member in confirmed.members),
                applied,
            )
        )
    return log


class StreamConsolidator:
    """Maintains consolidation state over a stream of record batches.

    Parameters
    ----------
    column:
        The column being standardized.
    oracle_factory:
        Builds the reviewing oracle once the consolidator's internal
        state exists (the oracle usually needs the store for
        provenance-aware judging).
    key_attribute / attribute, similarity_threshold, similarity:
        Resolution mode — exactly one of ``key_attribute`` (exact-key
        clustering) or ``attribute`` (blocked similarity matching).
    block_keys / max_block_size:
        Similarity-mode blocking: the block-key function (default
        token blocking; see
        :func:`~repro.resolution.blocking.make_block_keys` for the
        MinHash-LSH modes behind ``--blocking lsh``) and the oversized
        -block guard.
    columns:
        Attribute universe of the cumulative table; inferred from the
        first batch when omitted.
    budget_per_batch:
        Oracle questions allowed per batch (novel groups only).
    registry / model_name:
        Publish model versions into this
        :class:`~repro.serve.registry.ModelRegistry` under this name.
        With a registry the decision log defaults to
        ``<registry>/<name>/decisions.jsonl`` and an existing model
        resumes (see ``resume``).
    use_engine / engine_use_programs:
        Serve fast path: standardize arrivals with the live compiled
        engine before resolution.
    monitor / relearn_budget:
        Optional :class:`~repro.stream.monitor.DriftMonitor` and the
        extra budget a triggered relearn may spend.
    shards:
        Partition count for the learner: blocking index, candidate
        alignment, and the grouping feed shard across this many
        persistent worker processes (``shard_processes=False`` keeps
        the same partitioned code path in-process).  Sharding never
        changes published bytes or question counts.
    decision_log:
        Verdict-log path override; ``False``-y ``persist_decisions``
        disables persistence entirely.
    block_retention:
        Similarity mode: per-block member cap (rotation) so block
        lists stop growing with stream length.
    resume:
        When the registry already holds ``model_name``, warm-start
        from its latest version (engine + cumulative log + publisher
        version) instead of starting over.
    question_order:
        ``"discovery"`` (default) spends the budget in feed order;
        ``"yield"`` ranks pending groups by expected
        cells-fixed-per-question and infers transitively-proven
        verdicts without a question (see
        :mod:`repro.stream.scheduler`).  Both orders are byte-identical
        across ``--shards`` values.
    """

    def __init__(
        self,
        column: str,
        oracle_factory: OracleFactory,
        key_attribute: Optional[str] = None,
        attribute: Optional[str] = None,
        similarity_threshold: float = 0.8,
        similarity: SimilarityFn = hybrid_similarity,
        block_keys: Optional[BlockKeyFn] = None,
        max_block_size: int = 50,
        columns: Optional[Sequence[str]] = None,
        budget_per_batch: int = 50,
        config: Config = DEFAULT_CONFIG,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        registry: Optional[ModelRegistry] = None,
        model_name: Optional[str] = None,
        use_engine: bool = True,
        engine_use_programs: bool = True,
        monitor: Optional[DriftMonitor] = None,
        relearn_budget: Optional[int] = None,
        shards: int = 1,
        shard_processes: bool = True,
        decision_log: Optional[PathLike] = None,
        persist_decisions: bool = True,
        block_retention: Optional[int] = None,
        resume: bool = True,
        obs=None,
        question_order: str = "discovery",
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if question_order not in QUESTION_ORDERS:
            raise ValueError(
                f"question_order must be one of {QUESTION_ORDERS}"
            )
        #: observability context (metrics registry + tracer + sink);
        #: defaults to the no-op NULL_OBS, under which the stage spans
        #: still time (stage_seconds stays populated) but nothing is
        #: recorded anywhere.
        self.obs = obs if obs is not None else NULL_OBS
        self.column = column
        self.oracle_factory = oracle_factory
        self.budget_per_batch = budget_per_batch
        self.config = config
        self.vocabulary = vocabulary
        self.model_name = model_name or column
        self.use_engine = use_engine
        self.engine_use_programs = engine_use_programs
        self.monitor = monitor
        self.relearn_budget = (
            relearn_budget
            if relearn_budget is not None
            else 4 * budget_per_batch
        )
        self.shards = shards
        self.shard_processes = shard_processes
        self.block_retention = block_retention
        self.resume = resume
        #: "discovery" preserves the historical feed order; "yield"
        #: ranks questions by expected cells fixed and settles
        #: transitively-proven candidates without asking (see
        #: :mod:`repro.stream.scheduler`).
        self.question_order = question_order
        self._columns = tuple(columns) if columns is not None else None
        self._key_attribute = key_attribute
        self._attribute = attribute
        self._similarity_threshold = similarity_threshold
        self._similarity = similarity
        self._block_keys = block_keys
        self._max_block_size = max_block_size

        self.registry = registry
        if persist_decisions and decision_log is None and registry is not None:
            decision_log = (
                registry.root / slugify(self.model_name) / "decisions.jsonl"
            )
        self.decision_log = (
            Path(decision_log)
            if (persist_decisions and decision_log is not None)
            else None
        )

        self.publisher = ModelPublisher(registry, self.model_name)
        self.engine: Optional[ApplyEngine] = None
        self.resolver: Optional[IncrementalResolver] = None
        self.standardizer: Optional[IncrementalStandardizer] = None
        self.oracle: Optional[Oracle] = None
        self.pool: Optional[ShardPool] = None
        self.resumed_from: Optional[int] = None
        self.reports: List[BatchReport] = []

    # -- state accessors ---------------------------------------------------

    @property
    def table(self) -> ClusterTable:
        """The cumulative cluster table (after >= 1 batch)."""
        self._require_ready()
        return self.resolver.table

    @property
    def store(self):
        """The single shared replacement store (after >= 1 batch)."""
        self._require_ready()
        return self.standardizer.store

    @property
    def model_version(self) -> int:
        """Version of the most recently published model (0 = none)."""
        return self.publisher.version

    def build_model(self) -> TransformationModel:
        """The cumulative model: everything confirmed so far."""
        self._require_ready()
        # Deliberately no shard count here: the execution topology is
        # not part of the learned knowledge, and the byte-identical
        # guarantee across --shards values depends on its absence.
        provenance = {
            "source": "StreamConsolidator",
            "batches": len(self.reports),
            "records": self.resolver.num_records,
            "questions_asked": self.standardizer.questions_asked,
        }
        if self.resumed_from is not None:
            provenance["resumed_from_version"] = self.resumed_from
        return build_model(
            self.standardizer.log,
            self.column,
            name=self.model_name,
            config=self.config,
            vocabulary=self.vocabulary,
            provenance=provenance,
        )

    def _require_ready(self) -> None:
        if self.resolver is None:
            raise RuntimeError("no batch processed yet")

    # -- lazy wiring -------------------------------------------------------

    def _ensure_ready(self, records: Sequence[Record]) -> None:
        if self.resolver is not None:
            return
        columns = self._columns
        if columns is None:
            seen: List[str] = []
            for record in records:
                for name in record.values:
                    if name not in seen:
                        seen.append(name)
            columns = tuple(seen)
        resolver_kwargs = {}
        if self._block_keys is not None:
            resolver_kwargs["block_keys"] = self._block_keys
        self.resolver = IncrementalResolver(
            columns,
            key_attribute=self._key_attribute,
            attribute=self._attribute,
            threshold=self._similarity_threshold,
            similarity=self._similarity,
            max_block_size=self._max_block_size,
            shards=self.shards,
            block_retention=self.block_retention,
            **resolver_kwargs,
        )
        if not self.resume:
            self._archive_decision_log()
        self.standardizer = IncrementalStandardizer(
            self.resolver.table,
            self.column,
            self.config,
            self.vocabulary,
            decisions=DecisionCache(self.decision_log),
        )
        if self.shards > 1:
            self.pool = ShardPool(
                self.shards,
                self.config,
                self.vocabulary,
                similarity=(
                    self._similarity if self._attribute is not None else None
                ),
                processes=self.shard_processes,
                obs=self.obs,
            )
        self._maybe_resume()
        self.oracle = self.oracle_factory(self)
        if self.monitor is not None and not self.monitor.obs.enabled:
            # Route the monitor's drift triggers through this stream's
            # metrics/event stream (an explicitly attached obs wins).
            self.monitor.obs = self.obs

    def _archive_decision_log(self) -> None:
        """Move an existing verdict log aside for a ``resume=False``
        run (see :func:`repro.stream.decisions.archive_log` for the
        first-free ``*.pre-fresh-<k>`` discipline)."""
        archive_log(self.decision_log)

    def _maybe_resume(self) -> None:
        """Warm-start from the registry's latest published model.

        Resuming rehydrates the prior model's group sequence so the
        next publish *extends* it — which is only sound when the prior
        verdicts are in the decision cache: without them the re-judged
        variation appends to the rehydrated sequence and every group
        comes out twice.  So a consolidator with no durable verdicts
        (``--no-decision-log``, or a deleted log next to a non-empty
        model) starts over instead — new versions still publish under
        the next registry number, nothing is overwritten.
        """
        if not self.resume or self.registry is None:
            return
        versions = self.registry.versions(self.model_name)
        if not versions:
            return
        model = self.registry.load(self.model_name)
        if model.groups and len(self.standardizer.decisions) == 0:
            return
        self.resumed_from = versions[-1]
        self.publisher.version = versions[-1]
        self.standardizer.log = _log_from_model(model)
        if self.use_engine and self.engine is None:
            self.engine = ApplyEngine(
                model,
                use_programs=self.engine_use_programs,
                obs=self.obs,
            )
            self.publisher.subscribe(self.engine)

    # -- the lifecycle -----------------------------------------------------

    def process_batch(self, records: Sequence[Record]) -> BatchReport:
        """Fold one record batch into the consolidation state."""
        with self.obs.span(
            "stream.batch", batch=len(self.reports)
        ) as batch_span:
            report = self._process_batch(records)
        report.seconds = batch_span.seconds
        self._record_batch(report)
        return report

    def _process_batch(self, records: Sequence[Record]) -> BatchReport:
        # The table owns its records: copy so standardization never
        # mutates the caller's objects (batches stay replayable), and
        # normalize the consolidated column to "" when absent (JSON-
        # lines sources accept records with arbitrary keys).
        records = [
            Record(
                r.rid,
                {**{self.column: ""}, **r.values},
                r.source,
            )
            for r in records
        ]
        self._ensure_ready(records)
        report = BatchReport(index=len(self.reports), records=len(records))
        stage = report.stage_seconds

        # 1. serve fast path: standardize arrivals with the live model.
        with _timed_stage(self.obs, stage, "engine"):
            if self.engine is not None and records:
                values = [r.values.get(self.column, "") for r in records]
                outputs = self.engine.apply_values(values)
                for record, value, out in zip(records, values, outputs):
                    if out != value:
                        record.values[self.column] = out
                        report.explained_cells += 1

        # 2. incremental resolution (new-record pairs only).
        pool_bytes_before = (
            self.pool.shipped_bytes if self.pool is not None else 0
        )
        with _timed_stage(self.obs, stage, "resolve"):
            resolution = self.resolver.add_batch(records, pool=self.pool)
        report.merges = resolution.merges
        report.new_clusters = resolution.new_clusters
        report.pairs_compared = resolution.pairs_compared
        report.values_shipped = resolution.values_shipped

        # 3. delta candidate generation (merge moves first).  Records
        # can be appended *and* merge-moved within one batch, so moves
        # are only re-homing for pre-existing (already indexed) cells,
        # and appended cells are indexed at their *current* position.
        with _timed_stage(self.obs, stage, "derive"):
            appended_rids = {rid for rid, _, _ in resolution.appended}
            first_old = {}  # pre-batch position per moved existing rid
            for rid, oc, orow, _nc, _nrow in resolution.moved:
                if rid not in appended_rids:
                    first_old.setdefault(rid, (oc, orow))
            moves = [
                (
                    CellRef(oc, orow, self.column),
                    CellRef(*self.resolver.position(rid), self.column),
                )
                for rid, (oc, orow) in first_old.items()
            ]
            if moves:
                self.standardizer.move_cells(moves)
            new_cells = []
            for rid, _, _ in resolution.appended:
                cluster, row = self.resolver.position(rid)
                new_cells.append(CellRef(cluster, row, self.column))
            _indexed, unexplained = self.standardizer.ingest(
                new_cells, pool=self.pool
            )
        report.unmatched_cells = unexplained

        # 4. decision-cache replay: judged variation is free.
        with _timed_stage(self.obs, stage, "replay"):
            approved, rejected_count, undecided = (
                self.standardizer.partition_live()
            )
            reused, reused_cells = self.standardizer.reuse_confirmed(
                approved
            )
            report.reused_replacements = reused
            report.reused_cells = reused_cells
            report.rejected_skips = rejected_count
            if reused_cells:
                # Applying cached verdicts changed the store; refresh
                # the novel set (otherwise the step-4 partition is
                # still valid).
                undecided = self.standardizer.undecided()
            inferred_cells = 0
            if self.question_order == "yield":
                # Transitive inference: candidates the approved chain
                # already proves are settled (and applied) for free,
                # before any budget is spent.
                inferred, inferred_cells = (
                    self.standardizer.infer_transitive(undecided)
                )
                report.inferred_verdicts = inferred
                if inferred:
                    undecided = self.standardizer.undecided()

        # 5. budgeted learning over the novel remainder.  The oracle is
        # wrapped so its review wall-clock is separable from learning.
        oracle = _TimedOracle(self.oracle)
        yield_ranked = self.question_order == "yield"
        with _timed_stage(self.obs, stage, "learn"):
            steps = self.standardizer.learn(
                oracle,
                self.budget_per_batch,
                novel=undecided,
                pool=self.pool,
                yield_ranked=yield_ranked,
            )

        # 6. drift check: relearn deeper when the stream stops being
        # explained.  The signal (candidate-key novelty) is independent
        # of the engine, so monitoring works in --no-engine mode too.
        with _timed_stage(self.obs, stage, "drift"):
            if self.monitor is not None:
                drift = self.monitor.record(
                    len(records),
                    report.unmatched_cells,
                    batch=report.index,
                )
                if drift.drifted:
                    report.drift_triggered = True
                    steps = steps + self.standardizer.learn(
                        oracle,
                        self.relearn_budget,
                        pool=self.pool,
                        yield_ranked=yield_ranked,
                    )
                    self.monitor.reset()
        stage["oracle"] = oracle.seconds

        report.questions_asked = len(steps)
        report.groups_approved = sum(
            1 for s in steps if s.decision.approved
        )
        report.cells_changed = reused_cells + inferred_cells + sum(
            s.cells_changed for s in steps
        )

        # 7. publish new confirmations; engines hot-reload in place.
        with _timed_stage(self.obs, stage, "publish"):
            if report.groups_approved:
                model = self.build_model()
                version, _path = self.publisher.publish(model)
                report.model_version = version
                if self.engine is None and self.use_engine:
                    self.engine = ApplyEngine(
                        model,
                        use_programs=self.engine_use_programs,
                        obs=self.obs,
                    )
                    self.publisher.subscribe(self.engine)

        if self.pool is not None:
            # Data-plane bytes for the whole batch (resolve scripts
            # plus the alignment fan-out in step 3/5).
            report.bytes_shipped = (
                self.pool.shipped_bytes - pool_bytes_before
            )
        return report

    def _record_batch(self, report: BatchReport) -> None:
        """Append the report; with an enabled obs context, mirror its
        counters into the registry (stable key schema documented in
        docs/observability.md) and emit the batch row."""
        self.reports.append(report)
        obs = self.obs
        if not obs.enabled:
            return
        metrics = obs.metrics
        # Deterministic counters: identical at any --shards value.
        metrics.counter("stream.batches").inc()
        metrics.counter("stream.records").inc(report.records)
        metrics.counter("stream.explained_cells").inc(
            report.explained_cells
        )
        metrics.counter("stream.unmatched_cells").inc(
            report.unmatched_cells
        )
        metrics.counter("stream.merges").inc(report.merges)
        metrics.counter("stream.new_clusters").inc(report.new_clusters)
        metrics.counter("stream.candidate_pairs").inc(
            report.pairs_compared
        )
        metrics.counter("stream.reused_replacements").inc(
            report.reused_replacements
        )
        metrics.counter("stream.reused_cells").inc(report.reused_cells)
        metrics.counter("stream.rejected_skips").inc(
            report.rejected_skips
        )
        metrics.counter("oracle.inferred_verdicts").inc(
            report.inferred_verdicts
        )
        metrics.counter("oracle.questions_saved").inc(
            report.reused_replacements
            + report.rejected_skips
            + report.inferred_verdicts
        )
        metrics.counter("stream.questions", column=self.column).inc(
            report.questions_asked
        )
        metrics.counter("stream.groups_approved").inc(
            report.groups_approved
        )
        metrics.counter("stream.cells_changed").inc(report.cells_changed)
        if report.model_version is not None:
            metrics.counter("stream.publishes").inc()
        # Volatile: wall-clock and IPC volume vary run to run.
        metrics.counter("stream.values_shipped", deterministic=False).inc(
            report.values_shipped
        )
        metrics.counter("stream.bytes_shipped", deterministic=False).inc(
            report.bytes_shipped
        )
        metrics.histogram(
            "stream.batch_seconds", deterministic=False
        ).observe(report.seconds)
        for stage, seconds in report.stage_seconds.items():
            metrics.counter(
                "stream.stage_seconds", deterministic=False, stage=stage
            ).inc(round(seconds, 9))
        _sync_pool_metrics(obs, self.pool)
        obs.emit({"type": "batch", **report.stats()})

    def run(self, batches) -> List[BatchReport]:
        """Process every batch of an iterable; returns the reports."""
        return [self.process_batch(batch) for batch in batches]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the shard pool's worker processes (idempotent)."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    def __enter__(self) -> "StreamConsolidator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- roll-ups ----------------------------------------------------------

    @property
    def questions_asked(self) -> int:
        """Total oracle questions spent across all batches."""
        return sum(r.questions_asked for r in self.reports)

    @property
    def questions_saved(self) -> int:
        """Oracle work the incremental state avoided: cached-approved
        replacements re-applied, cached rejections silenced, and
        verdicts settled by transitive inference."""
        return sum(
            r.reused_replacements + r.rejected_skips + r.inferred_verdicts
            for r in self.reports
        )

    @property
    def inferred_verdicts(self) -> int:
        """Verdicts settled transitively, never asked (yield mode)."""
        return sum(r.inferred_verdicts for r in self.reports)
