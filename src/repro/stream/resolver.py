"""Incremental entity resolution: blocking index + union-find, in place.

The batch resolver (:mod:`repro.resolution.matcher`) compares all
within-block pairs and rebuilds its clustering from scratch — fine for
one table, quadratic waste for a stream.  :class:`IncrementalResolver`
keeps the blocking index and a :class:`~repro.resolution.unionfind.UnionFind`
alive across batches and only forms pairs that touch *new* records.

The resolver also maintains the cumulative
:class:`~repro.data.table.ClusterTable` the standardization layer works
on, with two hard invariants that keep downstream
:class:`~repro.data.table.CellRef` provenance stable:

* records are only ever **appended** to a cluster (a record's row index
  never changes while it stays in its cluster);
* when a new record bridges two existing clusters, the smaller
  cluster's records are appended to the larger one and the losing slot
  is left *empty* (never deleted), so no other cluster's index shifts.

Every move is reported in the :class:`BatchResolution` so candidate
stores can purge the moved cells' old positions and re-index the new
ones — the only non-append work a merge costs.

Two matching modes mirror the paper's setup:

* **key mode** (``key_attribute``): records cluster by exact key
  equality (ISBN / ISSN / EIN style) — merges never happen;
* **similarity mode** (``attribute`` + threshold): token blocking and a
  similarity function, transitively closed through the union-find.

Similarity mode scales out two ways.  The block index is a
:class:`~repro.resolution.blocking.BlockIndex`: **partitioned** by
stable block-key hash into ``shards`` slices — a block (and so every
pair it can generate) lives wholly in one slice, which is what lets a
batch's comparisons fan out across the shard workers of a
:class:`~repro.stream.shards.ShardPool` — and optionally **bounded**
(``block_retention``), rotating the oldest member out of a full block
so per-arrival cost stops growing with stream length.  Parallel
matching changes *which process* evaluates a comparison, never which
comparisons are evaluated: candidate lists are assembled (and ordered,
and deduplicated) by the parent exactly as the inline path would, so
the resolved clusters are identical at any shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..data.table import CellRef, ClusterTable, Record
from ..resolution.blocking import BlockIndex, BlockKeyFn, token_keys
from ..resolution.matcher import SimilarityFn, hybrid_similarity
from ..resolution.unionfind import UnionFind

Position = Tuple[int, int]  # (cluster slot, row)


@dataclass
class BatchResolution:
    """What one batch did to the cluster state."""

    #: (rid, cluster, row) of every record appended this batch
    appended: List[Tuple[str, int, int]] = field(default_factory=list)
    #: (rid, old cluster, old row, new cluster, new row) per merge move
    moved: List[Tuple[str, int, int, int, int]] = field(default_factory=list)
    #: number of cluster-merge events caused by bridging records
    merges: int = 0
    #: number of new clusters opened
    new_clusters: int = 0
    #: similarity comparisons actually evaluated (the incremental cost)
    pairs_compared: int = 0


class IncrementalResolver:
    """Maintains clusters of a growing record collection batch by batch.

    Parameters
    ----------
    columns:
        Attribute names of the cumulative table.
    key_attribute / attribute:
        Exactly one must be given: ``key_attribute`` selects exact-key
        clustering, ``attribute`` selects blocked similarity matching.
    threshold, similarity, block_keys, max_block_size:
        Similarity-mode matching knobs (ignored in key mode).
    shards:
        Number of hash partitions of the blocking index; aligns with
        the consolidator's ``--shards`` so per-partition match work can
        be dispatched to the matching shard worker.
    block_retention:
        With a value, each block keeps only its newest ``retention``
        members (rotation); ``None`` keeps the historical unbounded
        behaviour.
    """

    def __init__(
        self,
        columns: Sequence[str],
        key_attribute: Optional[str] = None,
        attribute: Optional[str] = None,
        threshold: float = 0.8,
        similarity: SimilarityFn = hybrid_similarity,
        block_keys: BlockKeyFn = token_keys,
        max_block_size: int = 50,
        shards: int = 1,
        block_retention: Optional[int] = None,
    ) -> None:
        if (key_attribute is None) == (attribute is None):
            raise ValueError(
                "pass exactly one of key_attribute (exact-key mode) or "
                "attribute (similarity mode)"
            )
        self.table = ClusterTable(columns)
        self.key_attribute = key_attribute
        self.attribute = attribute
        self.threshold = threshold
        self.similarity = similarity
        self.block_keys = block_keys
        self.max_block_size = max_block_size

        self.uf = UnionFind()
        self._position: Dict[str, Position] = {}
        self._rid_at: Dict[Position, str] = {}
        #: similarity mode: hash-partitioned block key -> rids
        self._blocks = BlockIndex(shards, block_retention)
        #: key mode: key value -> cluster slot
        self._key_slot: Dict[str, int] = {}
        self._values: Dict[str, str] = {}

    # -- lookups -----------------------------------------------------------

    def position(self, rid: str) -> Position:
        """Current ``(cluster slot, row)`` of a record."""
        return self._position[rid]

    def rid_at(self, cluster: int, row: int) -> Optional[str]:
        """Record id at a table position, or ``None``."""
        return self._rid_at.get((cluster, row))

    def rid_of_cell(self, cell: CellRef) -> Optional[str]:
        """Record id owning a cell, or ``None``."""
        return self._rid_at.get((cell.cluster, cell.row))

    @property
    def num_records(self) -> int:
        return len(self._position)

    def cluster_keys(self) -> List[str]:
        """Keys of non-empty clusters, table order."""
        return [c.key for c in self.table.clusters if c.records]

    # -- ingestion ---------------------------------------------------------

    def add_batch(
        self, records: Sequence[Record], pool=None
    ) -> BatchResolution:
        """Fold one batch of records into the cluster state.

        Only pairs touching the batch's records are formed; earlier
        records of the same batch count as existing for later ones, so
        intra-batch duplicates resolve too.  With a
        :class:`~repro.stream.shards.ShardPool` (similarity mode only)
        the batch's comparisons are evaluated by the shard workers —
        same candidates, same order, same clusters, less wall-clock.
        """
        result = BatchResolution()
        matched_by_rid: Optional[Dict[str, List[str]]] = None
        if pool is not None and self.attribute is not None and records:
            matched_by_rid = self._match_batch(records, pool, result)
        for record in records:
            matched = (
                matched_by_rid.get(record.rid)
                if matched_by_rid is not None
                else None
            )
            self._add_record(record, result, matched)
        return result

    def _add_record(
        self,
        record: Record,
        result: BatchResolution,
        matched: Optional[List[str]] = None,
    ) -> None:
        rid = record.rid
        if rid in self._position:
            raise ValueError(f"duplicate record id in stream: {rid!r}")
        self.uf.add(rid)
        if self.key_attribute is not None:
            slot = self._place_by_key(record, result)
        else:
            slot = self._place_by_similarity(record, result, matched)
        row = len(self.table.clusters[slot].records)
        self.table.clusters[slot].records.append(record)
        self._position[rid] = (slot, row)
        self._rid_at[(slot, row)] = rid
        result.appended.append((rid, slot, row))

    # -- key mode ----------------------------------------------------------

    def _place_by_key(self, record: Record, result: BatchResolution) -> int:
        key = record.values.get(self.key_attribute or "", "")
        if not key:
            # Keyless records become singleton clusters, like
            # resolution.matcher.cluster_by_key.
            result.new_clusters += 1
            return self.table.add_cluster(f"__single_{record.rid}", [])
        slot = self._key_slot.get(key)
        if slot is None:
            slot = self.table.add_cluster(key, [])
            self._key_slot[key] = slot
            result.new_clusters += 1
        else:
            anchor = self.rid_at(slot, 0)
            if anchor is not None:
                self.uf.union(record.rid, anchor)
        return slot

    # -- similarity mode ---------------------------------------------------

    def _place_by_similarity(
        self,
        record: Record,
        result: BatchResolution,
        matched: Optional[List[str]] = None,
    ) -> int:
        value = record.values.get(self.attribute or "", "")
        if matched is None:
            matched = self._match_existing(value, result)
        matched = [m for m in matched if m in self._position]
        slots = sorted({self._position[m][0] for m in matched})
        for m in matched:
            self.uf.union(record.rid, m)
        if not slots:
            result.new_clusters += 1
            slot = self.table.add_cluster(record.rid, [])
        elif len(slots) == 1:
            slot = slots[0]
        else:
            slot = self._merge_slots(slots, result)
        self._index_blocks(record.rid, value)
        return slot

    def _candidates(
        self,
        value: str,
        blocks: Optional[Callable[[Hashable], Sequence[str]]] = None,
    ) -> List[Tuple[str, int]]:
        """Deduplicated comparison candidates for a new value.

        Returns ``(rid, owning shard)`` pairs in block-visit order —
        the exact comparison set the inline path evaluates, which is
        why dispatching them to shard workers cannot change the
        result.  ``blocks`` overrides where members are read from:
        batch-parallel matching passes its simulated per-batch block
        state (earlier batch records indexed, rotation applied) so the
        candidate set mirrors the sequential interleave exactly.
        """
        members_of = blocks if blocks is not None else self._blocks.members
        seen: Set[str] = set()
        candidates: List[Tuple[str, int]] = []
        for key in self.block_keys(value):
            members = members_of(key)
            if len(members) > self.max_block_size:
                # Stop-word block: same guard as batch blocking.
                continue
            shard = self._blocks.shard_of(key)
            for other in members:
                if other in seen:
                    continue
                seen.add(other)
                candidates.append((other, shard))
        return candidates

    def _match_existing(
        self, value: str, result: BatchResolution
    ) -> List[str]:
        """Existing rids whose value matches the new one (blocked)."""
        matched: List[str] = []
        for other, _shard in self._candidates(value):
            result.pairs_compared += 1
            if self.similarity(value, self._values[other]) >= self.threshold:
                matched.append(other)
        return matched

    def _match_batch(
        self, records: Sequence[Record], pool, result: BatchResolution
    ) -> Dict[str, List[str]]:
        """Evaluate one batch's comparisons on the shard workers.

        The parent assembles every record's candidate list against a
        *simulated* block state — pre-batch blocks plus the batch's own
        appends with the same rotation :meth:`_index_blocks` will apply
        — so later records see earlier ones (and rotation evictions)
        exactly as the sequential interleave would.  Each comparison is
        routed to the shard owning its contributing block key and the
        matched lists reassembled in candidate order from the returned
        flags.
        """
        simulated: Dict[Hashable, List[str]] = {}
        retention = self._blocks.retention

        def simulated_block(key: Hashable) -> List[str]:
            block = simulated.get(key)
            if block is None:
                block = simulated[key] = list(self._blocks.members(key))
            return block

        batch_values: Dict[str, str] = {}
        candidate_lists: List[Tuple[str, List[Tuple[str, int]]]] = []
        tasks_by_shard: List[List] = [[] for _ in range(pool.shards)]
        for task_id, record in enumerate(records):
            value = record.values.get(self.attribute or "", "")
            candidates = self._candidates(value, simulated_block)
            candidate_lists.append((record.rid, candidates))
            by_shard: Dict[int, List[str]] = {}
            for other, shard in candidates:
                other_value = self._values.get(
                    other, batch_values.get(other, "")
                )
                by_shard.setdefault(shard, []).append(other_value)
            for shard, values in by_shard.items():
                tasks_by_shard[shard].append((task_id, value, values))
            batch_values[record.rid] = value
            for key in self.block_keys(value):
                block = simulated_block(key)
                block.append(record.rid)
                if retention is not None and len(block) > retention:
                    del block[: len(block) - retention]
        flags_by_task = pool.match(self.threshold, tasks_by_shard)
        matched_by_rid: Dict[str, List[str]] = {}
        for task_id, (rid, candidates) in enumerate(candidate_lists):
            result.pairs_compared += len(candidates)
            flags = iter(flags_by_task.get(task_id, ()))
            # Flags concatenate in ascending shard order (broadcast
            # reply order); within a shard, in the order the
            # candidates were bucketed.  Mirror both here.
            by_shard: Dict[int, List[str]] = {}
            for other, shard in candidates:
                by_shard.setdefault(shard, []).append(other)
            matched_set: Set[str] = set()
            for shard in sorted(by_shard):
                for other in by_shard[shard]:
                    if next(flags, False):
                        matched_set.add(other)
            matched_by_rid[rid] = [
                other for other, _ in candidates if other in matched_set
            ]
        return matched_by_rid

    def _index_blocks(self, rid: str, value: str) -> None:
        self._values[rid] = value
        for key in self.block_keys(value):
            for gone in self._blocks.add(key, rid):
                # Rotated out of its last block: off the comparison
                # frontier, so its value is no longer needed.
                self._values.pop(gone, None)

    def _merge_slots(self, slots: List[int], result: BatchResolution) -> int:
        """Merge bridged clusters into the most populous slot.

        Losing slots are emptied (records appended to the survivor) but
        kept in the table so every other cluster's index is untouched.
        """
        survivor = max(slots, key=lambda s: (len(self.table.clusters[s]), -s))
        for slot in slots:
            if slot == survivor:
                continue
            cluster = self.table.clusters[slot]
            for record in cluster.records:
                old = self._position[record.rid]
                new_row = len(self.table.clusters[survivor].records)
                self.table.clusters[survivor].records.append(record)
                self._position[record.rid] = (survivor, new_row)
                self._rid_at.pop(old, None)
                self._rid_at[(survivor, new_row)] = record.rid
                result.moved.append(
                    (record.rid, old[0], old[1], survivor, new_row)
                )
            cluster.records = []
            result.merges += 1
        return survivor

    # -- maintenance -------------------------------------------------------

    def compact_blocks(self, retention: Optional[int] = None) -> int:
        """Trim every block to its newest ``retention`` members now.

        Returns how many records left the comparison frontier entirely
        (their values are released too).  Clusters are untouched — the
        union-find already closed over everything the dropped members
        matched.
        """
        gone = self._blocks.compact(retention)
        for rid in gone:
            self._values.pop(rid, None)
        return len(gone)

    @property
    def blocks_rotated_out(self) -> int:
        """Total block-membership evictions so far (observability)."""
        return self._blocks.rotated_out
