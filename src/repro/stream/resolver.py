"""Incremental entity resolution: blocking index + union-find, in place.

The batch resolver (:mod:`repro.resolution.matcher`) compares all
within-block pairs and rebuilds its clustering from scratch — fine for
one table, quadratic waste for a stream.  :class:`IncrementalResolver`
keeps the blocking index and a :class:`~repro.resolution.unionfind.UnionFind`
alive across batches and only forms pairs that touch *new* records.

The resolver also maintains the cumulative
:class:`~repro.data.table.ClusterTable` the standardization layer works
on, with two hard invariants that keep downstream
:class:`~repro.data.table.CellRef` provenance stable:

* records are only ever **appended** to a cluster (a record's row index
  never changes while it stays in its cluster);
* when a new record bridges two existing clusters, the smaller
  cluster's records are appended to the larger one and the losing slot
  is left *empty* (never deleted), so no other cluster's index shifts.

Every move is reported in the :class:`BatchResolution` so candidate
stores can purge the moved cells' old positions and re-index the new
ones — the only non-append work a merge costs.

Two matching modes mirror the paper's setup:

* **key mode** (``key_attribute``): records cluster by exact key
  equality (ISBN / ISSN / EIN style) — merges never happen;
* **similarity mode** (``attribute`` + threshold): token blocking and a
  similarity function, transitively closed through the union-find.

Similarity mode scales out two ways.  The block index is a
:class:`~repro.resolution.blocking.BlockIndex`: **partitioned** by
stable block-key hash into ``shards`` slices — a block (and so every
pair it can generate) lives wholly in one slice, which is what lets a
batch's comparisons fan out across the shard workers of a
:class:`~repro.stream.shards.ShardPool` — and optionally **bounded**
(``block_retention``), rotating the oldest member out of a full block
so per-arrival cost stops growing with stream length.  Parallel
matching changes *which process* evaluates a comparison, never which
comparisons are evaluated: candidate lists are assembled (and ordered,
and deduplicated) by the parent exactly as the inline path would, so
the resolved clusters are identical at any shard count.

Shard workers keep the blocking state **resident**: each worker holds
a live replica of the member values of the block keys it owns,
maintained by index/evict deltas that accompany each batch (plus a
one-time warm-up when a pool first sees an index that already grew).
A member's value crosses the process boundary once per owning shard,
when the member first enters one of that shard's blocks; from then on
match traffic carries candidate *record ids* only.  Per-batch IPC is
therefore O(new values), not O(candidate values) — the difference the
``values_shipped`` / ``bytes_shipped`` counters in
:class:`BatchResolution` make observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..data.table import CellRef, ClusterTable, Record
from ..resolution.blocking import BlockIndex, BlockKeyFn, token_keys
from ..resolution.matcher import (
    PairDecisionMemo,
    SimilarityFn,
    hybrid_similarity,
)
from ..resolution.unionfind import UnionFind

Position = Tuple[int, int]  # (cluster slot, row)

#: Resident-replica deltas buffered across *unpooled* batches are
#: bounded: past this many, the resolver stops tracking and instead
#: re-warms the replicas (reset + full replay) at the next pooled
#: batch — so a stream that went unpooled for good cannot grow the
#: buffer with its length.
MAX_BUFFERED_DELTAS = 65536


@dataclass
class BatchResolution:
    """What one batch did to the cluster state."""

    #: (rid, cluster, row) of every record appended this batch
    appended: List[Tuple[str, int, int]] = field(default_factory=list)
    #: (rid, old cluster, old row, new cluster, new row) per merge move
    moved: List[Tuple[str, int, int, int, int]] = field(default_factory=list)
    #: number of cluster-merge events caused by bridging records
    merges: int = 0
    #: number of new clusters opened
    new_clusters: int = 0
    #: similarity comparisons actually evaluated (the incremental cost)
    pairs_compared: int = 0
    #: resident values shipped to shard workers this batch (new values
    #: plus any warm-up / buffered deltas; 0 without a pool)
    values_shipped: int = 0
    #: serialized bytes shipped to shard workers this batch
    bytes_shipped: int = 0


class IncrementalResolver:
    """Maintains clusters of a growing record collection batch by batch.

    Parameters
    ----------
    columns:
        Attribute names of the cumulative table.
    key_attribute / attribute:
        Exactly one must be given: ``key_attribute`` selects exact-key
        clustering, ``attribute`` selects blocked similarity matching.
    threshold, similarity, block_keys, max_block_size:
        Similarity-mode matching knobs (ignored in key mode).
    shards:
        Number of hash partitions of the blocking index; aligns with
        the consolidator's ``--shards`` so per-partition match work can
        be dispatched to the matching shard worker.
    block_retention:
        With a value, each block keeps only its newest ``retention``
        members (rotation); ``None`` keeps the historical unbounded
        behaviour.
    """

    def __init__(
        self,
        columns: Sequence[str],
        key_attribute: Optional[str] = None,
        attribute: Optional[str] = None,
        threshold: float = 0.8,
        similarity: SimilarityFn = hybrid_similarity,
        block_keys: BlockKeyFn = token_keys,
        max_block_size: int = 50,
        shards: int = 1,
        block_retention: Optional[int] = None,
    ) -> None:
        if (key_attribute is None) == (attribute is None):
            raise ValueError(
                "pass exactly one of key_attribute (exact-key mode) or "
                "attribute (similarity mode)"
            )
        self.table = ClusterTable(columns)
        self.key_attribute = key_attribute
        self.attribute = attribute
        self.threshold = threshold
        self.similarity = similarity
        self.block_keys = block_keys
        self.max_block_size = max_block_size

        self.uf = UnionFind()
        self._position: Dict[str, Position] = {}
        self._rid_at: Dict[Position, str] = {}
        #: similarity mode: hash-partitioned block key -> rids
        self._blocks = BlockIndex(shards, block_retention)
        #: key mode: key value -> cluster slot
        self._key_slot: Dict[str, int] = {}
        self._values: Dict[str, str] = {}
        #: memoized inline threshold kernel (early-exit similarity)
        self._decide: Optional[PairDecisionMemo] = None
        # -- shard-resident replica bookkeeping (pool-backed batches) --
        #: True once a pool's workers were warm-started with the index
        self._resident_synced = False
        #: (rid, shard) -> live block references the shard's replica
        #: holds; a shard re-needs the value when its count re-enters 0
        self._shard_refs: Dict[Tuple[str, int], int] = {}
        #: deltas from index mutations that happened *without* a pool
        #: (inline batches, compaction) since the last pooled batch
        self._resident_deltas: List[Tuple[int, Tuple]] = []
        #: True while _add_record replays mutations the pooled match
        #: already shipped (suppresses double-emission)
        self._deltas_in_flight = False

    # -- lookups -----------------------------------------------------------

    def position(self, rid: str) -> Position:
        """Current ``(cluster slot, row)`` of a record."""
        return self._position[rid]

    def rid_at(self, cluster: int, row: int) -> Optional[str]:
        """Record id at a table position, or ``None``."""
        return self._rid_at.get((cluster, row))

    def rid_of_cell(self, cell: CellRef) -> Optional[str]:
        """Record id owning a cell, or ``None``."""
        return self._rid_at.get((cell.cluster, cell.row))

    @property
    def num_records(self) -> int:
        return len(self._position)

    def cluster_keys(self) -> List[str]:
        """Keys of non-empty clusters, table order."""
        return [c.key for c in self.table.clusters if c.records]

    # -- ingestion ---------------------------------------------------------

    def add_batch(
        self, records: Sequence[Record], pool=None
    ) -> BatchResolution:
        """Fold one batch of records into the cluster state.

        Only pairs touching the batch's records are formed; earlier
        records of the same batch count as existing for later ones, so
        intra-batch duplicates resolve too.  With a
        :class:`~repro.stream.shards.ShardPool` (similarity mode only)
        the batch's comparisons are evaluated by the shard workers
        against their resident value replicas — same candidates, same
        order, same clusters, less wall-clock and O(new values) IPC.
        """
        result = BatchResolution()
        matched_by_rid: Optional[Dict[str, List[str]]] = None
        if pool is not None and self.attribute is not None and records:
            matched_by_rid = self._match_batch(records, pool, result)
            # The pooled match already shipped this batch's index /
            # evict deltas; the authoritative replay below must not
            # re-buffer them.
            self._deltas_in_flight = True
        try:
            for record in records:
                matched = (
                    matched_by_rid.get(record.rid)
                    if matched_by_rid is not None
                    else None
                )
                self._add_record(record, result, matched)
        finally:
            self._deltas_in_flight = False
        return result

    def _add_record(
        self,
        record: Record,
        result: BatchResolution,
        matched: Optional[List[str]] = None,
    ) -> None:
        rid = record.rid
        if rid in self._position:
            raise ValueError(f"duplicate record id in stream: {rid!r}")
        self.uf.add(rid)
        if self.key_attribute is not None:
            slot = self._place_by_key(record, result)
        else:
            slot = self._place_by_similarity(record, result, matched)
        row = len(self.table.clusters[slot].records)
        self.table.clusters[slot].records.append(record)
        self._position[rid] = (slot, row)
        self._rid_at[(slot, row)] = rid
        result.appended.append((rid, slot, row))

    # -- key mode ----------------------------------------------------------

    def _place_by_key(self, record: Record, result: BatchResolution) -> int:
        key = record.values.get(self.key_attribute or "", "")
        if not key:
            # Keyless records become singleton clusters, like
            # resolution.matcher.cluster_by_key.
            result.new_clusters += 1
            return self.table.add_cluster(f"__single_{record.rid}", [])
        slot = self._key_slot.get(key)
        if slot is None:
            slot = self.table.add_cluster(key, [])
            self._key_slot[key] = slot
            result.new_clusters += 1
        else:
            anchor = self.rid_at(slot, 0)
            if anchor is not None:
                self.uf.union(record.rid, anchor)
        return slot

    # -- similarity mode ---------------------------------------------------

    def _place_by_similarity(
        self,
        record: Record,
        result: BatchResolution,
        matched: Optional[List[str]] = None,
    ) -> int:
        value = record.values.get(self.attribute or "", "")
        if matched is None:
            matched = self._match_existing(value, result)
        matched = [m for m in matched if m in self._position]
        slots = sorted({self._position[m][0] for m in matched})
        for m in matched:
            self.uf.union(record.rid, m)
        if not slots:
            result.new_clusters += 1
            slot = self.table.add_cluster(record.rid, [])
        elif len(slots) == 1:
            slot = slots[0]
        else:
            slot = self._merge_slots(slots, result)
        self._index_blocks(record.rid, value)
        return slot

    def _candidates(
        self,
        value: str,
        blocks: Optional[Callable[[Hashable], Sequence[str]]] = None,
    ) -> List[Tuple[str, int]]:
        """Deduplicated comparison candidates for a new value.

        Returns ``(rid, owning shard)`` pairs in block-visit order —
        the exact comparison set the inline path evaluates, which is
        why dispatching them to shard workers cannot change the
        result.  ``blocks`` overrides where members are read from:
        batch-parallel matching passes its simulated per-batch block
        state (earlier batch records indexed, rotation applied) so the
        candidate set mirrors the sequential interleave exactly.
        """
        members_of = blocks if blocks is not None else self._blocks.members
        seen: Set[str] = set()
        candidates: List[Tuple[str, int]] = []
        for key in self.block_keys(value):
            members = members_of(key)
            if len(members) > self.max_block_size:
                # Stop-word block: same guard as batch blocking.
                continue
            shard = self._blocks.shard_of(key)
            for other in members:
                if other in seen:
                    continue
                seen.add(other)
                candidates.append((other, shard))
        return candidates

    def _match_existing(
        self, value: str, result: BatchResolution
    ) -> List[str]:
        """Existing rids whose value matches the new one (blocked)."""
        if self._decide is None:
            self._decide = PairDecisionMemo(self.similarity, self.threshold)
        matched: List[str] = []
        for other, _shard in self._candidates(value):
            result.pairs_compared += 1
            if self._decide(value, self._values[other]):
                matched.append(other)
        return matched

    # -- shard-resident replica deltas -------------------------------------

    def _note_index(
        self, rid: str, value: str, key: Hashable
    ) -> Tuple[int, Tuple]:
        """Account one new block reference on ``key``'s shard; the
        returned step carries the value only on the shard's first
        reference (the replica already holds it otherwise)."""
        shard = self._blocks.shard_of(key)
        ref = (rid, shard)
        count = self._shard_refs.get(ref, 0)
        self._shard_refs[ref] = count + 1
        return shard, ("i", rid, value if count == 0 else None)

    def _note_evict(self, rid: str, key: Hashable) -> Tuple[int, Tuple]:
        """Account one dropped block reference on ``key``'s shard."""
        shard = self._blocks.shard_of(key)
        ref = (rid, shard)
        count = self._shard_refs.get(ref, 0) - 1
        if count <= 0:
            self._shard_refs.pop(ref, None)
        else:
            self._shard_refs[ref] = count
        return shard, ("e", rid)

    def _warm_up_steps(self, steps: List[List[Tuple]]) -> None:
        """Replay the whole current index into the shard replicas.

        Runs the first time a pool-backed batch meets an index that
        grew before any pool was attached (tests, late sharding), and
        again if delta tracking was abandoned (buffer overflow during
        a long unpooled stretch).  A reset step precedes the replay so
        a worker holding a stale replica starts from empty; fresh
        workers ignore it.  The streaming consolidator attaches its
        pool from batch one, so this is normally a no-op over an empty
        index.
        """
        self._shard_refs.clear()
        for shard_steps in steps:
            shard_steps.append(("r",))
        for key, members in self._blocks.items():
            for rid in members:
                shard, step = self._note_index(rid, self._values[rid], key)
                steps[shard].append(step)
        self._resident_synced = True

    def _buffer_delta(self, delta: Tuple[int, Tuple]) -> None:
        """Queue a replica delta for the next pooled batch; on
        overflow, abandon tracking — the next pooled batch (if one
        ever comes) re-warms from scratch instead."""
        self._resident_deltas.append(delta)
        if len(self._resident_deltas) > MAX_BUFFERED_DELTAS:
            self._resident_deltas.clear()
            self._shard_refs.clear()
            self._resident_synced = False

    def _match_batch(
        self, records: Sequence[Record], pool, result: BatchResolution
    ) -> Dict[str, List[str]]:
        """Evaluate one batch's comparisons on the shard workers.

        The parent assembles every record's candidate list against a
        *simulated* block state — pre-batch blocks plus the batch's own
        appends with the same rotation :meth:`_index_blocks` will apply
        — so later records see earlier ones (and rotation evictions)
        exactly as the sequential interleave would.  What ships per
        shard is an ordered *script*: match steps carrying the new
        value and its candidate rids, interleaved with the index/evict
        deltas that keep the shard's resident value replica current.
        Candidate **values** never ship — each shard reads them from
        its replica — so per-batch IPC is O(new values + candidate
        ids) instead of O(candidate values).
        """
        if pool.shards != self._blocks.shards:
            raise ValueError(
                f"pool has {pool.shards} shards but the block index is "
                f"partitioned {self._blocks.shards} ways"
            )
        steps: List[List[Tuple]] = [[] for _ in range(pool.shards)]
        if not self._resident_synced:
            self._warm_up_steps(steps)
        if self._resident_deltas:
            # Mutations since the last pooled batch (inline batches,
            # compaction) replay first, in occurrence order.
            for shard, step in self._resident_deltas:
                steps[shard].append(step)
            self._resident_deltas.clear()

        simulated: Dict[Hashable, List[str]] = {}
        retention = self._blocks.retention

        def simulated_block(key: Hashable) -> List[str]:
            block = simulated.get(key)
            if block is None:
                block = simulated[key] = list(self._blocks.members(key))
            return block

        candidate_lists: List[Tuple[str, List[Tuple[str, int]]]] = []
        for task_id, record in enumerate(records):
            value = record.values.get(self.attribute or "", "")
            candidates = self._candidates(value, simulated_block)
            candidate_lists.append((record.rid, candidates))
            by_shard: Dict[int, List[str]] = {}
            for other, shard in candidates:
                by_shard.setdefault(shard, []).append(other)
            for shard in sorted(by_shard):
                steps[shard].append(
                    ("m", task_id, value, by_shard[shard])
                )
            for key in self.block_keys(value):
                block = simulated_block(key)
                block.append(record.rid)
                shard, step = self._note_index(record.rid, value, key)
                steps[shard].append(step)
                if retention is not None and len(block) > retention:
                    evicted = block[: len(block) - retention]
                    del block[: len(block) - retention]
                    for old in evicted:
                        shard, step = self._note_evict(old, key)
                        steps[shard].append(step)

        shipped_values = pool.shipped_values
        shipped_bytes = pool.shipped_bytes
        matched_by_task = pool.resolve(self.threshold, steps)
        result.values_shipped += pool.shipped_values - shipped_values
        result.bytes_shipped += pool.shipped_bytes - shipped_bytes

        matched_by_rid: Dict[str, List[str]] = {}
        for task_id, (rid, candidates) in enumerate(candidate_lists):
            result.pairs_compared += len(candidates)
            matched_set: Set[str] = set(matched_by_task.get(task_id, ()))
            matched_by_rid[rid] = [
                other for other, _ in candidates if other in matched_set
            ]
        return matched_by_rid

    def _index_blocks(self, rid: str, value: str) -> None:
        self._values[rid] = value
        for key in self.block_keys(value):
            # Re-checked per key: buffering can overflow mid-value and
            # flip the resolver back to untracked (re-warm later).
            if self._resident_synced and not self._deltas_in_flight:
                self._buffer_delta(self._note_index(rid, value, key))
                evicted: List[str] = []
                gone = self._blocks.add(key, rid, evicted_into=evicted)
                for old in evicted:
                    if not self._resident_synced:
                        break
                    self._buffer_delta(self._note_evict(old, key))
            else:
                gone = self._blocks.add(key, rid)
            for old in gone:
                # Rotated out of its last block: off the comparison
                # frontier, so its value is no longer needed.
                self._values.pop(old, None)

    def _merge_slots(self, slots: List[int], result: BatchResolution) -> int:
        """Merge bridged clusters into the most populous slot.

        Losing slots are emptied (records appended to the survivor) but
        kept in the table so every other cluster's index is untouched.
        """
        survivor = max(slots, key=lambda s: (len(self.table.clusters[s]), -s))
        for slot in slots:
            if slot == survivor:
                continue
            cluster = self.table.clusters[slot]
            for record in cluster.records:
                old = self._position[record.rid]
                new_row = len(self.table.clusters[survivor].records)
                self.table.clusters[survivor].records.append(record)
                self._position[record.rid] = (survivor, new_row)
                self._rid_at.pop(old, None)
                self._rid_at[(survivor, new_row)] = record.rid
                result.moved.append(
                    (record.rid, old[0], old[1], survivor, new_row)
                )
            cluster.records = []
            result.merges += 1
        return survivor

    # -- maintenance -------------------------------------------------------

    def compact_blocks(self, retention: Optional[int] = None) -> int:
        """Trim every block to its newest ``retention`` members now.

        Returns how many records left the comparison frontier entirely
        (their values are released too).  Clusters are untouched — the
        union-find already closed over everything the dropped members
        matched.  With shard replicas warm, the dropped memberships
        are buffered as evict deltas so the next pooled batch brings
        the workers to the compacted state before matching.
        """
        if self._resident_synced:
            evicted: List[Tuple[Hashable, str]] = []
            gone = self._blocks.compact(retention, evicted_into=evicted)
            for key, rid in evicted:
                if not self._resident_synced:
                    break  # buffer overflowed: re-warm covers the rest
                self._buffer_delta(self._note_evict(rid, key))
        else:
            gone = self._blocks.compact(retention)
        for rid in gone:
            self._values.pop(rid, None)
        return len(gone)

    @property
    def blocks_rotated_out(self) -> int:
        """Total block-membership evictions so far (observability)."""
        return self._blocks.rotated_out
