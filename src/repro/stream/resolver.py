"""Incremental entity resolution: blocking index + union-find, in place.

The batch resolver (:mod:`repro.resolution.matcher`) compares all
within-block pairs and rebuilds its clustering from scratch — fine for
one table, quadratic waste for a stream.  :class:`IncrementalResolver`
keeps the blocking index and a :class:`~repro.resolution.unionfind.UnionFind`
alive across batches and only forms pairs that touch *new* records.

The resolver also maintains the cumulative
:class:`~repro.data.table.ClusterTable` the standardization layer works
on, with two hard invariants that keep downstream
:class:`~repro.data.table.CellRef` provenance stable:

* records are only ever **appended** to a cluster (a record's row index
  never changes while it stays in its cluster);
* when a new record bridges two existing clusters, the smaller
  cluster's records are appended to the larger one and the losing slot
  is left *empty* (never deleted), so no other cluster's index shifts.

Every move is reported in the :class:`BatchResolution` so candidate
stores can purge the moved cells' old positions and re-index the new
ones — the only non-append work a merge costs.

Two matching modes mirror the paper's setup:

* **key mode** (``key_attribute``): records cluster by exact key
  equality (ISBN / ISSN / EIN style) — merges never happen;
* **similarity mode** (``attribute`` + threshold): token blocking and a
  similarity function, transitively closed through the union-find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..data.table import CellRef, ClusterTable, Record
from ..resolution.blocking import BlockKeyFn, token_keys
from ..resolution.matcher import SimilarityFn, hybrid_similarity
from ..resolution.unionfind import UnionFind

Position = Tuple[int, int]  # (cluster slot, row)


@dataclass
class BatchResolution:
    """What one batch did to the cluster state."""

    #: (rid, cluster, row) of every record appended this batch
    appended: List[Tuple[str, int, int]] = field(default_factory=list)
    #: (rid, old cluster, old row, new cluster, new row) per merge move
    moved: List[Tuple[str, int, int, int, int]] = field(default_factory=list)
    #: number of cluster-merge events caused by bridging records
    merges: int = 0
    #: number of new clusters opened
    new_clusters: int = 0
    #: similarity comparisons actually evaluated (the incremental cost)
    pairs_compared: int = 0


class IncrementalResolver:
    """Maintains clusters of a growing record collection batch by batch."""

    def __init__(
        self,
        columns: Sequence[str],
        key_attribute: Optional[str] = None,
        attribute: Optional[str] = None,
        threshold: float = 0.8,
        similarity: SimilarityFn = hybrid_similarity,
        block_keys: BlockKeyFn = token_keys,
        max_block_size: int = 50,
    ) -> None:
        if (key_attribute is None) == (attribute is None):
            raise ValueError(
                "pass exactly one of key_attribute (exact-key mode) or "
                "attribute (similarity mode)"
            )
        self.table = ClusterTable(columns)
        self.key_attribute = key_attribute
        self.attribute = attribute
        self.threshold = threshold
        self.similarity = similarity
        self.block_keys = block_keys
        self.max_block_size = max_block_size

        self.uf = UnionFind()
        self._position: Dict[str, Position] = {}
        self._rid_at: Dict[Position, str] = {}
        #: similarity mode: block key -> rids (append-only)
        self._blocks: Dict[Hashable, List[str]] = {}
        #: key mode: key value -> cluster slot
        self._key_slot: Dict[str, int] = {}
        self._values: Dict[str, str] = {}

    # -- lookups -----------------------------------------------------------

    def position(self, rid: str) -> Position:
        return self._position[rid]

    def rid_at(self, cluster: int, row: int) -> Optional[str]:
        return self._rid_at.get((cluster, row))

    def rid_of_cell(self, cell: CellRef) -> Optional[str]:
        return self._rid_at.get((cell.cluster, cell.row))

    @property
    def num_records(self) -> int:
        return len(self._position)

    def cluster_keys(self) -> List[str]:
        """Keys of non-empty clusters, table order."""
        return [c.key for c in self.table.clusters if c.records]

    # -- ingestion ---------------------------------------------------------

    def add_batch(self, records: Sequence[Record]) -> BatchResolution:
        """Fold one batch of records into the cluster state.

        Only pairs touching the batch's records are formed; earlier
        records of the same batch count as existing for later ones, so
        intra-batch duplicates resolve too.
        """
        result = BatchResolution()
        for record in records:
            self._add_record(record, result)
        return result

    def _add_record(self, record: Record, result: BatchResolution) -> None:
        rid = record.rid
        if rid in self._position:
            raise ValueError(f"duplicate record id in stream: {rid!r}")
        self.uf.add(rid)
        if self.key_attribute is not None:
            slot = self._place_by_key(record, result)
        else:
            slot = self._place_by_similarity(record, result)
        row = len(self.table.clusters[slot].records)
        self.table.clusters[slot].records.append(record)
        self._position[rid] = (slot, row)
        self._rid_at[(slot, row)] = rid
        result.appended.append((rid, slot, row))

    # -- key mode ----------------------------------------------------------

    def _place_by_key(self, record: Record, result: BatchResolution) -> int:
        key = record.values.get(self.key_attribute or "", "")
        if not key:
            # Keyless records become singleton clusters, like
            # resolution.matcher.cluster_by_key.
            result.new_clusters += 1
            return self.table.add_cluster(f"__single_{record.rid}", [])
        slot = self._key_slot.get(key)
        if slot is None:
            slot = self.table.add_cluster(key, [])
            self._key_slot[key] = slot
            result.new_clusters += 1
        else:
            anchor = self.rid_at(slot, 0)
            if anchor is not None:
                self.uf.union(record.rid, anchor)
        return slot

    # -- similarity mode ---------------------------------------------------

    def _place_by_similarity(
        self, record: Record, result: BatchResolution
    ) -> int:
        value = record.values.get(self.attribute or "", "")
        matched = self._match_existing(record.rid, value, result)
        slots = sorted({self._position[m][0] for m in matched})
        for m in matched:
            self.uf.union(record.rid, m)
        if not slots:
            result.new_clusters += 1
            slot = self.table.add_cluster(record.rid, [])
        elif len(slots) == 1:
            slot = slots[0]
        else:
            slot = self._merge_slots(slots, result)
        self._index_blocks(record.rid, value)
        return slot

    def _match_existing(
        self, rid: str, value: str, result: BatchResolution
    ) -> List[str]:
        """Existing rids whose value matches the new one (blocked)."""
        seen: Set[str] = set()
        matched: List[str] = []
        for key in self.block_keys(value):
            members = self._blocks.get(key, ())
            if len(members) > self.max_block_size:
                # Stop-word block: same guard as batch blocking.
                continue
            for other in members:
                if other in seen:
                    continue
                seen.add(other)
                result.pairs_compared += 1
                if self.similarity(value, self._values[other]) >= self.threshold:
                    matched.append(other)
        return matched

    def _index_blocks(self, rid: str, value: str) -> None:
        self._values[rid] = value
        for key in self.block_keys(value):
            self._blocks.setdefault(key, []).append(rid)

    def _merge_slots(self, slots: List[int], result: BatchResolution) -> int:
        """Merge bridged clusters into the most populous slot.

        Losing slots are emptied (records appended to the survivor) but
        kept in the table so every other cluster's index is untouched.
        """
        survivor = max(slots, key=lambda s: (len(self.table.clusters[s]), -s))
        for slot in slots:
            if slot == survivor:
                continue
            cluster = self.table.clusters[slot]
            for record in cluster.records:
                old = self._position[record.rid]
                new_row = len(self.table.clusters[survivor].records)
                self.table.clusters[survivor].records.append(record)
                self._position[record.rid] = (survivor, new_row)
                self._rid_at.pop(old, None)
                self._rid_at[(survivor, new_row)] = record.rid
                result.moved.append(
                    (record.rid, old[0], old[1], survivor, new_row)
                )
            cluster.records = []
            result.merges += 1
        return survivor
