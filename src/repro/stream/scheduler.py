"""Yield-ranked oracle scheduling (optimal spending of human budget).

The oracle is the system's scarcest resource, yet the default learner
spends it in pure *discovery order*: the grouping feed emits the next
largest group and the next question goes to whatever that happens to
be.  Following "Optimizing Human Involvement for Entity Matching and
Consolidation" (arXiv:1906.06574), this module ranks pending questions
by their **expected yield** — how many table cells one verdict is
expected to fix — and settles questions *without* asking whenever the
already-approved rewrites prove the answer transitively.

Three pieces, all parent-side pure functions of the candidate store and
the cluster table, which is what keeps ``--shards N`` byte-identical:

* :func:`group_yield` / :func:`member_yield` — the ranking score.  A
  member replacement's yield is its support (the number of provenance
  pairs it would rewrite, Section 5's "profit") weighted by the fanout
  of each supporting cluster (how many records a fixed cell serves).
  A group's yield is the sum over its members — expected
  cells-fixed-per-question, as an exact integer;
* :class:`YieldRankedFeed` — a :class:`~repro.pipeline.standardize.GroupFeed`
  wrapper holding a small look-ahead window of groups from the
  underlying deterministic feed (the single-process
  :class:`~repro.core.incremental.IncrementalGrouper` or the merged
  :class:`~repro.stream.shards.ShardedGroupFeed` — both emit the same
  stream) and presenting the highest-yield buffered group first.
  Scores are recomputed against the live store at every pop, ties break
  toward the underlying feed order, and §7.1 invalidation filters dead
  members out of the buffered groups — every step is deterministic, so
  a sharded learner under the scheduler asks exactly the questions an
  unsharded one asks;
* :func:`allocate_budget` — marginal-yield budget allocation across
  columns: instead of giving every column the same per-batch budget
  (round-robin), the golden consolidator pools one global budget and
  splits it proportionally to each column's total pending yield
  (largest-remainder apportionment, integer arithmetic only), visiting
  columns in descending-yield order so an early-exhausted column's
  leftover rolls into the next most promising one.

Transitive inference lives with the state it needs:
:meth:`~repro.stream.standardizer.IncrementalStandardizer.infer_transitive`
walks the chain of approved rewrites (:func:`transitive_direction`
here) and records the settled verdicts in the decision log with
``"source": "inferred"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..candidates.store import ReplacementStore
from ..core.grouping import Group
from ..core.replacement import Replacement
from ..data.table import ClusterTable
from ..pipeline.oracle import FORWARD, REVERSE

#: How many groups the yield ranker buffers from the underlying feed.
#: The window trades ranking quality against wasted feed work when the
#: budget runs out mid-window; 8 covers a typical per-batch budget's
#: near-term choices without popping the whole feed up front.
DEFAULT_LOOKAHEAD = 8

QUESTION_ORDERS = ("discovery", "yield")


def member_yield(
    store: ReplacementStore, table: ClusterTable, member: Replacement
) -> int:
    """Expected cells fixed by approving one member replacement.

    Each supporting provenance pair contributes the *fanout* of the
    cluster whose cell it would rewrite: fixing a cell in a cluster of
    ``n`` records serves all ``n`` records that consolidate into it
    (the golden record, every lookup, every future arrival matching
    against it).  Exact integer arithmetic over live store state — the
    same number on every shard topology.
    """
    clusters = table.clusters
    score = 0
    for lhs_cell, _rhs_cell in store.cell_pairs(member):
        score += len(clusters[lhs_cell.cluster].records)
    for lhs_cell, _rhs_cell in store.token_pairs(member):
        score += len(clusters[lhs_cell.cluster].records)
    return score


def group_yield(
    store: ReplacementStore, table: ClusterTable, group: Group
) -> int:
    """Expected cells fixed by approving a whole group: one question
    settles every member, so yields add."""
    return sum(
        member_yield(store, table, member)
        for member in group.replacements
    )


class YieldRankedFeed:
    """Reorders any deterministic group feed by expected yield.

    Implements the :class:`~repro.pipeline.standardize.GroupFeed`
    protocol.  A window of up to ``lookahead`` groups is buffered from
    the underlying feed in its native (largest-first, deterministic)
    order; :meth:`next_group` returns the buffered group with the
    highest :func:`group_yield` against the *current* store and table,
    breaking ties toward the earlier underlying position.  Group size
    and yield usually agree, but they diverge exactly when scheduling
    matters: a small group whose members sit in huge clusters out-fixes
    a large group of one-off values.

    Section 7.1 invalidation (:meth:`remove_replacements`) filters dead
    members out of the buffered groups too — a buffered group was
    already popped from the underlying feed, so nobody else will prune
    it — dropping groups that empty entirely.

    Determinism: the underlying feeds
    (:class:`~repro.core.incremental.IncrementalGrouper` and
    :class:`~repro.stream.shards.ShardedGroupFeed`) emit identical
    group streams at any shard count, the scores are pure integer
    functions of parent-side state, and ties resolve by buffer
    position — so the reordered stream is also identical at any shard
    count.
    """

    def __init__(
        self,
        inner,
        store: ReplacementStore,
        table: ClusterTable,
        lookahead: int = DEFAULT_LOOKAHEAD,
    ) -> None:
        self.inner = inner
        self.store = store
        self.table = table
        self.lookahead = max(1, lookahead)
        self._buffer: List[Group] = []
        self._drained = False

    def _fill(self) -> None:
        while not self._drained and len(self._buffer) < self.lookahead:
            group = self.inner.next_group()
            if group is None:
                self._drained = True
                return
            self._buffer.append(group)

    def _best_index(self) -> Optional[int]:
        self._fill()
        if not self._buffer:
            return None
        return max(
            range(len(self._buffer)),
            key=lambda i: (
                group_yield(self.store, self.table, self._buffer[i]),
                -i,
            ),
        )

    def peek(self) -> Optional[Tuple[int, Group]]:
        """The highest-yield buffered group and its score, unemitted
        (the golden allocator's probe)."""
        best = self._best_index()
        if best is None:
            return None
        group = self._buffer[best]
        return group_yield(self.store, self.table, group), group

    def next_group(self) -> Optional[Group]:
        best = self._best_index()
        if best is None:
            return None
        return self._buffer.pop(best)

    def remove_replacements(self, dead) -> None:
        dead_set = set(dead)
        if not dead_set:
            return
        kept: List[Group] = []
        for group in self._buffer:
            survivors = tuple(
                member
                for member in group.replacements
                if member not in dead_set
            )
            if not survivors:
                continue
            if len(survivors) == len(group.replacements):
                kept.append(group)
            else:
                kept.append(
                    Group(group.program, survivors, group.structure)
                )
        self._buffer = kept
        self.inner.remove_replacements(dead_set)


# -- transitive inference ---------------------------------------------------


def approved_rewrites(decisions) -> Dict[str, str]:
    """The chain of approved rewrites, in confirmation order.

    Resolves every approved verdict to its applied direction and keeps
    the *first* rewrite recorded per source value — the same
    first-wins, confirmation-order discipline the replay walk follows,
    so the chain describes rewrites exactly as they were (and will be)
    applied.
    """
    forward: Dict[str, str] = {}
    for replacement, decision in decisions.items():
        if not decision.approved:
            continue
        resolved = (
            replacement.reversed()
            if decision.direction == REVERSE
            else replacement
        )
        forward.setdefault(resolved.lhs, resolved.rhs)
    return forward


def _reaches(forward: Dict[str, str], source: str, target: str) -> bool:
    """Whether the rewrite chain carries ``source`` to ``target``.

    Bounded by the chain length: a consistent verdict history is
    acyclic, and a pathological one (hand-edited log) must degrade to
    a bounded walk, never an infinite loop.
    """
    current = source
    for _ in range(len(forward) + 1):
        current = forward.get(current)  # type: ignore[assignment]
        if current is None:
            return False
        if current == target:
            return True
    return False


def transitive_direction(
    forward: Dict[str, str], candidate: Replacement
) -> Optional[str]:
    """The direction the approved rewrites prove for ``candidate``.

    If approved rewrites carry ``lhs`` to ``rhs`` (e.g. A→B and B→C
    both approved, candidate A→C), the candidate is settled FORWARD
    without a question; if they carry ``rhs`` to ``lhs``, REVERSE.
    ``None`` when the chain proves nothing — the candidate stays a
    real question.
    """
    if _reaches(forward, candidate.lhs, candidate.rhs):
        return FORWARD
    if _reaches(forward, candidate.rhs, candidate.lhs):
        return REVERSE
    return None


# -- cross-column budget allocation ----------------------------------------


def allocate_budget(
    yields: Dict[str, int],
    total: int,
    columns: Sequence[str],
) -> List[Tuple[str, int]]:
    """Split one global budget across columns by marginal yield.

    Returns ``(column, share)`` pairs in **processing order**: columns
    descending by total pending yield (ties: original column order), so
    the caller can roll an early-exhausted column's unused share into
    the next most promising column.  Shares follow largest-remainder
    apportionment on the yields — integer arithmetic only, fully
    deterministic — with an even split when nothing is pending anywhere
    (every column then gets its chance at groups the cheap yield probe
    undervalued).
    """
    cols = list(columns)
    if not cols:
        return []
    if total <= 0:
        return [(column, 0) for column in cols]
    weights = [max(0, int(yields.get(column, 0))) for column in cols]
    order = sorted(
        range(len(cols)), key=lambda i: (-weights[i], i)
    )
    total_weight = sum(weights)
    if total_weight == 0:
        base, extra = divmod(total, len(cols))
        return [
            (cols[i], base + (1 if rank < extra else 0))
            for rank, i in enumerate(order)
        ]
    shares = {}
    remainders = []
    allocated = 0
    for rank, i in enumerate(order):
        quota = total * weights[i]
        share = quota // total_weight
        shares[i] = share
        allocated += share
        remainders.append((-(quota % total_weight), rank, i))
    remainders.sort()
    for _neg_rem, _rank, i in remainders[: total - allocated]:
        shares[i] += 1
    return [(cols[i], shares[i]) for i in order]
