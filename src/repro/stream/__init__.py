"""Incremental consolidation over record streams (``repro stream``).

The paper learns from a static clustered table and ``repro.serve``
makes the result persistent — this package closes the loop for data
that *keeps arriving*.  Each record batch is folded into long-lived
consolidation state instead of triggering a full re-cluster and
re-learn:

* :mod:`repro.stream.resolver` — an incremental blocking index plus
  union-find cluster maintenance; only pairs touching new records are
  ever compared, and the cumulative :class:`~repro.data.table.ClusterTable`
  grows in place with stable cell references;
* :mod:`repro.stream.standardizer` — delta candidate generation into a
  persistent :class:`~repro.candidates.store.ReplacementStore`, a
  decision cache that re-applies prior oracle verdicts for free, and
  budgeted learning over only the genuinely novel variation;
* :mod:`repro.stream.publisher` — confirmed knowledge republished as
  new model versions through :class:`~repro.serve.registry.ModelRegistry`
  with in-place :meth:`~repro.serve.engine.ApplyEngine.reload`;
* :mod:`repro.stream.monitor` — unmatched-rate drift detection that
  triggers deeper relearning when the serve model stops explaining the
  traffic;
* :mod:`repro.stream.consolidator` — the orchestrator gluing the above
  into one ``process_batch`` call;
* :mod:`repro.stream.batches` — batch sources (in-memory iterators and
  JSON-lines files);
* :mod:`repro.stream.shards` — the sharded learner: blocking index,
  candidate alignment, and the grouping feed partitioned across
  persistent worker processes, merged deterministically (byte-identical
  models, zero extra oracle questions); blocking state is
  shard-resident, so per-batch IPC ships only new values;
* :mod:`repro.stream.decisions` — the durable JSON-lines decision
  cache: a restarted stream keeps the zero-question guarantee for
  already-judged variation;
* :mod:`repro.stream.scheduler` — yield-ranked oracle scheduling
  (``--question-order yield``): questions ranked by expected
  cells-fixed-per-question, one global budget split across columns by
  marginal yield, and transitively-proven verdicts settled without a
  question;
* :mod:`repro.stream.decision_tools` — ``repro decisions``: compact,
  diff, and audit verdict logs offline;
* :mod:`repro.stream.golden` — multi-column streaming golden records:
  per-column standardizers over the one shared resolver, incremental
  (touched-clusters-only) truth discovery, and atomic per-column model
  bundles — Algorithm 1 end to end, folded over the stream.
"""

from .batches import (
    batches_from_records,
    iter_jsonl_batches,
    read_jsonl_records,
    write_jsonl_records,
)
from .consolidator import (
    BatchReport,
    StreamConsolidator,
    ground_truth_oracle_factory,
)
from .decision_tools import (
    LogEntry,
    audit_log,
    compact_log,
    diff_logs,
    read_log,
)
from .decisions import DecisionCache
from .deltas import GoldenDeltaLog, GoldenDeltaReader
from .golden import (
    GoldenBatchReport,
    GoldenStreamConsolidator,
    golden_ground_truth_oracle_factory,
)
from .monitor import DriftMonitor, DriftReport
from .publisher import BundlePublisher, ModelPublisher
from .resolver import BatchResolution, IncrementalResolver
from .scheduler import (
    QUESTION_ORDERS,
    YieldRankedFeed,
    allocate_budget,
    group_yield,
    member_yield,
    transitive_direction,
)
from .shards import ShardPool, ShardedGroupFeed, ShardStandardizer
from .standardizer import IncrementalStandardizer

__all__ = [
    "BatchReport",
    "BatchResolution",
    "BundlePublisher",
    "DecisionCache",
    "DriftMonitor",
    "DriftReport",
    "GoldenBatchReport",
    "GoldenDeltaLog",
    "GoldenDeltaReader",
    "GoldenStreamConsolidator",
    "IncrementalResolver",
    "IncrementalStandardizer",
    "LogEntry",
    "ModelPublisher",
    "QUESTION_ORDERS",
    "ShardPool",
    "ShardStandardizer",
    "ShardedGroupFeed",
    "StreamConsolidator",
    "YieldRankedFeed",
    "allocate_budget",
    "audit_log",
    "batches_from_records",
    "compact_log",
    "diff_logs",
    "golden_ground_truth_oracle_factory",
    "ground_truth_oracle_factory",
    "group_yield",
    "iter_jsonl_batches",
    "member_yield",
    "read_log",
    "transitive_direction",
    "write_jsonl_records",
]
