"""The durable oracle-verdict cache (decision-cache durability).

Every oracle verdict is the product of scarce human attention; losing
the cache on restart means a resumed stream re-asks questions it
already paid for, breaking the subsystem's central guarantee that
repeated variation never costs a second question.  :class:`DecisionCache`
keeps the member-replacement -> verdict mapping the
:class:`~repro.stream.standardizer.IncrementalStandardizer` consults,
and — when given a path — appends every *new* verdict to a JSON-lines
file next to the published model, one verdict object per line::

    {"lhs": "5 Main St", "rhs": "5 Main Street",
     "approved": true, "direction": "forward"}

Append-only JSON-lines is deliberate: a crash mid-write loses at most
the final line (which is detected and skipped on load), concurrent
readers never see a half-rewritten file, and the log doubles as a
human-auditable review history.  On construction the cache replays the
file, so a restarted consolidator answers every already-judged
variation from the cache — zero repeat oracle questions.

The cache is *first-wins* (matching the in-memory ``dict.setdefault``
semantics it replaces): once a member replacement has a verdict, later
verdicts for the same member are ignored, in memory and on disk.

Lookup is **orientation-aware**: a verdict on ``A -> B`` also answers
``B -> A``, with the direction flipped so both resolve to the *same*
rewrite.  The store derives a value pair in whichever orientation its
cells were indexed, so later batches can resurface a judged pair
reversed; without the flip that re-ask costs a second question and —
worse — when neither side is canonical the oracle's direction default
approves both orientations, planting an A⇄B rewrite cycle that the
replay fixed-point in
:meth:`~repro.stream.standardizer.IncrementalStandardizer.reuse_confirmed`
could never escape.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.replacement import Replacement
from ..pipeline.oracle import FORWARD, REVERSE, Decision

PathLike = Union[str, Path]


def archive_log(path: Optional[Path]) -> Optional[Path]:
    """Move an existing verdict log aside for a fresh (``resume=False``)
    run; returns the backup path (None if there was nothing to move).

    A fresh run must neither *replay* the old verdicts (it was asked to
    start over) nor *append* to the same file (first-wins replay would
    then favor the stale verdicts over the fresh run's on every later
    resume).  The old log is renamed — never deleted: it is paid-for
    human review history — to the first free ``<name>.pre-fresh-<k>``
    slot.  Shared by the single-column and golden consolidators so the
    archival discipline cannot diverge.
    """
    if path is None or not path.exists():
        return None
    k = 1
    while True:
        backup = path.with_name(f"{path.name}.pre-fresh-{k}")
        if not backup.exists():
            break
        k += 1
    path.rename(backup)
    return backup


class DecisionCache:
    """Member-replacement verdicts, optionally persisted as JSON-lines.

    Quacks like the plain dict it replaced (``get`` / ``items`` /
    ``__contains__`` / ``__len__``), plus :meth:`record` which both
    caches and durably appends a verdict.
    """

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._decisions: Dict[Replacement, Decision] = {}
        #: verdicts answered from the replayed log since construction
        self.replayed = 0
        if self.path is not None and self.path.exists():
            entries, repair = self._read(self.path)
            for replacement, decision in entries:
                # First wins in *either* orientation, exactly like
                # :meth:`record`: a log written before lookups were
                # orientation-aware can hold both A->B and B->A
                # (approved with conflicting resolved directions);
                # loading both would replant the rewrite cycle the
                # mirrored lookup exists to prevent.
                if (
                    replacement in self._decisions
                    or replacement.reversed() in self._decisions
                ):
                    continue
                self._decisions[replacement] = decision
            self.replayed = len(self._decisions)
            # Repair a crash-torn tail *now*: tolerating it on load but
            # leaving it in place would let the next append glue JSON
            # onto the fragment — that verdict would be unreadable, and
            # once another line followed, the malformed line would no
            # longer be last and every future load would refuse the
            # file as corrupt.
            if repair is not None:
                kind, offset = repair
                if kind == "truncate":
                    with open(self.path, "r+b") as handle:
                        handle.truncate(offset)
                else:  # "terminate": intact final verdict, newline ate
                    with open(self.path, "ab") as handle:
                        handle.write(b"\n")

    # -- dict face ---------------------------------------------------------

    def get(self, replacement: Replacement) -> Optional[Decision]:
        decision = self._decisions.get(replacement)
        if decision is not None:
            return decision
        mirrored = self._decisions.get(replacement.reversed())
        if mirrored is None:
            return None
        # The judged pair, re-derived in the opposite orientation: the
        # same verdict applies, with the direction flipped so the
        # resolved rewrite is identical to the recorded one.
        return Decision(
            mirrored.approved,
            REVERSE if mirrored.direction == FORWARD else FORWARD,
        )

    def items(self):
        return self._decisions.items()

    def __contains__(self, replacement: Replacement) -> bool:
        return (
            replacement in self._decisions
            or replacement.reversed() in self._decisions
        )

    def __len__(self) -> int:
        return len(self._decisions)

    # -- recording ---------------------------------------------------------

    def record(
        self,
        replacement: Replacement,
        decision: Decision,
        source: Optional[str] = None,
    ) -> bool:
        """Cache ``decision`` for ``replacement`` (first verdict wins).

        Returns True when the verdict was new; new verdicts are
        immediately appended (and flushed) to the backing file, so a
        crash directly after the oracle answered still keeps the
        answer.  ``source`` tags machine-settled verdicts in the log
        (e.g. ``"inferred"`` for transitively-proven rewrites from
        :mod:`repro.stream.scheduler`); verdicts without it were asked
        of a human.  Replay ignores the tag — an inferred verdict binds
        exactly like an asked one — but ``repro decisions audit``
        reports the split.
        """
        if (
            replacement in self._decisions
            or replacement.reversed() in self._decisions
        ):
            return False  # first verdict wins, in either orientation
        self._decisions[replacement] = decision
        if self.path is not None:
            row = {
                "lhs": replacement.lhs,
                "rhs": replacement.rhs,
                "approved": decision.approved,
                "direction": decision.direction,
            }
            if source is not None:
                row["source"] = source
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(row, ensure_ascii=False) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return True

    # -- replay ------------------------------------------------------------

    @staticmethod
    def _read(
        path: Path,
    ) -> Tuple[
        List[Tuple[Replacement, Decision]],
        Optional[Tuple[str, int]],
    ]:
        """Parse a verdict log, detecting a crash-torn tail.

        Only the *last* line may be incomplete (the append-only write
        discipline guarantees earlier lines were complete when written);
        corruption anywhere else means the file is not ours and is
        reported loudly rather than half-loaded.  Returns the parsed
        entries plus the repair the caller must apply before anything
        appends again: ``("truncate", intact_byte_length)`` for a
        malformed final line, ``("terminate", 0)`` for a final verdict
        whose newline the crash ate, ``None`` for a healthy file.
        """
        data = path.read_bytes()
        raw_lines = data.split(b"\n")
        terminated = data.endswith(b"\n")
        entries: List[Tuple[Replacement, Decision]] = []
        offset = 0
        for index, raw in enumerate(raw_lines):
            if index == len(raw_lines) - 1 and raw == b"":
                break  # the empty tail after a final newline
            last = index == len(raw_lines) - 1
            line = raw.decode("utf-8", errors="replace").strip()
            try:
                if not line:
                    raise ValueError("blank line")
                row = json.loads(line)
                lhs, rhs = str(row["lhs"]), str(row["rhs"])
                direction = str(row.get("direction", FORWARD))
                if direction not in (FORWARD, REVERSE):
                    raise ValueError(f"bad direction {direction!r}")
                decision = Decision(bool(row["approved"]), direction)
                replacement = Replacement(lhs, rhs)
            except (ValueError, KeyError, TypeError) as exc:
                if last:
                    # Torn tail from an interrupted append: drop it.
                    return entries, ("truncate", offset)
                raise ValueError(
                    f"{path}:{index + 1}: corrupt decision log entry "
                    f"({exc})"
                ) from exc
            entries.append((replacement, decision))
            if last and not terminated:
                return entries, ("terminate", 0)
            offset += len(raw) + 1
        return entries, None
