"""Multi-column streaming golden records (``repro stream --columns``).

The paper's Algorithm 1 is *per-column standardization, then truth
discovery* — :class:`~repro.pipeline.consolidate.GoldenRecordCreation`
runs it once over a static table.  :class:`GoldenStreamConsolidator`
is the same algorithm folded over a record stream:

* **one resolver, N standardizers** — a single
  :class:`~repro.stream.resolver.IncrementalResolver` (one blocking
  index, one union-find, one cumulative
  :class:`~repro.data.table.ClusterTable`) is shared by one
  :class:`~repro.stream.standardizer.IncrementalStandardizer` *per
  column* (Algorithm 1 line 2's column loop).  Records are clustered
  once per batch; every column then ingests the same appends and merge
  moves into its own replacement store and decision cache;
* **incremental fusion** — golden records are maintained per cluster,
  and a batch re-fuses **only the clusters it touched**: clusters that
  gained records, clusters involved in a merge (both the surviving and
  the emptied slot), and clusters whose cell values a confirmed or
  replayed replacement rewrote (the ``changed_into`` deltas the
  standardizers report).  Cluster-local fusion kernels (majority
  consensus) make this exact; global iterative methods (Accu,
  TruthFinder estimate source weights across clusters) re-fuse
  everything, trading the delta win for correctness — the
  ``clusters_refused`` counter in :class:`GoldenBatchReport` makes the
  difference observable either way;
* **atomic bundle publication** — each confirming batch publishes one
  :class:`~repro.serve.bundle.ModelBundle` (all columns, one artifact)
  through a :class:`~repro.stream.publisher.BundlePublisher`, so
  subscribed :class:`~repro.serve.bundle.BundleApplyEngine` consumers
  hot-reload every column together — never a half-upgraded column set;
* **sharding unchanged** — the per-column matching / alignment /
  grouping stages route through the *same*
  :class:`~repro.stream.shards.ShardPool` the single-column
  consolidator uses (the resolver's resident-replica ``resolve``
  scripts, the stateless ``derive`` kernel, and one grouping ``round``
  per column per batch), so ``--shards N`` publishes byte-identical
  bundles and asks identical questions at any shard count, under every
  blocking mode.

Durability mirrors the single-column path: per-column decision logs
(``decisions-<column>.jsonl``) next to the published bundle, and a
consolidator pointed at a registry that already holds its bundle
resumes — rehydrated per-column logs, replayed verdicts, zero repeat
questions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..config import DEFAULT_CONFIG, Config
from ..core.terms import DEFAULT_VOCABULARY, TermVocabulary
from ..obs import NULL_OBS
from ..data.table import CellRef, ClusterTable, Record
from ..fusion import majority
from ..pipeline.consolidate import GoldenRecord
from ..pipeline.golden import FusionFn
from ..pipeline.oracle import GroundTruthOracle, Oracle
from ..resolution.blocking import BlockKeyFn
from ..resolution.matcher import SimilarityFn, hybrid_similarity
from ..serve.bundle import (
    BundleApplyEngine,
    BundleRegistry,
    ModelBundle,
    build_bundle,
)
from ..serve.model import TransformationModel, build_model
from ..serve.registry import slugify
from .consolidator import (
    _CellCanonical,
    _log_from_model,
    _sync_pool_metrics,
    _timed_stage,
    _TimedOracle,
)
from .decisions import DecisionCache, archive_log
from .deltas import GoldenDeltaLog
from .publisher import BundlePublisher
from .resolver import IncrementalResolver
from .scheduler import QUESTION_ORDERS, allocate_budget, member_yield
from .shards import ShardPool
from .standardizer import IncrementalStandardizer

#: Builds the reviewing oracle for one column once the consolidator's
#: state exists (the oracle usually needs that column's store).
GoldenOracleFactory = Callable[["GoldenStreamConsolidator", str], Oracle]

#: A cluster-local fusion kernel: the cluster's current values in, the
#: golden value out.  Kernels make incremental (touched-clusters-only)
#: fusion exact, because a cluster's golden value then depends on that
#: cluster alone.
ClusterFusionFn = Callable[[Sequence[str]], Optional[str]]

PathLike = Union[str, Path]

#: Table-level fusion functions with a known-equivalent cluster-local
#: kernel.  ``majority.fuse`` is per-cluster by construction; Accu and
#: TruthFinder couple clusters through source accuracy/trust and have
#: no exact local kernel.
CLUSTER_KERNELS: Dict[FusionFn, ClusterFusionFn] = {
    majority.fuse: majority.majority_value,
}


def golden_ground_truth_oracle_factory(
    canonical_by_rid: Dict[str, Dict[str, str]],
    seed: int = 0,
    error_rate: float = 0.0,
) -> GoldenOracleFactory:
    """A :data:`GoldenOracleFactory` simulating the expert per column
    from ``column -> rid -> canonical`` ground truth (the multi-column
    analogue of
    :func:`~repro.stream.consolidator.ground_truth_oracle_factory`)."""

    def factory(
        consolidator: "GoldenStreamConsolidator", column: str
    ) -> Oracle:
        return GroundTruthOracle(
            _CellCanonical(
                consolidator.resolver, canonical_by_rid.get(column, {})
            ),
            consolidator.standardizers[column].store,
            error_rate=error_rate,
            seed=seed,
        )

    return factory


@dataclass
class GoldenBatchReport:
    """Everything one multi-column batch did (observability +
    assertions; the golden analogue of
    :class:`~repro.stream.consolidator.BatchReport`)."""

    index: int
    records: int
    merges: int = 0
    new_clusters: int = 0
    pairs_compared: int = 0
    values_shipped: int = 0
    bytes_shipped: int = 0
    #: cells rewritten by the serve fast path, all columns
    explained_cells: int = 0
    #: cells that minted unseen candidate keys, all columns
    unmatched_cells: int = 0
    #: oracle questions spent this batch, per column
    questions_by_column: Dict[str, int] = field(default_factory=dict)
    groups_approved: int = 0
    reused_replacements: int = 0
    rejected_skips: int = 0
    #: verdicts settled transitively (yield scheduling only), across
    #: every column, recorded in the logs with source "inferred"
    inferred_verdicts: int = 0
    cells_changed: int = 0
    #: clusters whose golden record was recomputed this batch (the
    #: incremental-fusion delta; equals the live cluster count when the
    #: fusion method is global)
    clusters_refused: int = 0
    #: live (non-empty) clusters after the batch, for delta context
    clusters_live: int = 0
    #: wall-clock spent inside the fusion refresh
    fusion_seconds: float = 0.0
    #: cluster key -> column -> golden value, for exactly the clusters
    #: whose golden record this batch actually changed — the payload of
    #: the golden delta log the serve tier tails (consumers apply
    #: ``golden_removed`` first, then these)
    golden_changed: Dict[str, Dict[str, Optional[str]]] = field(
        default_factory=dict
    )
    #: cluster keys whose golden record died (merge-emptied slots)
    golden_removed: List[str] = field(default_factory=list)
    bundle_version: Optional[int] = None
    seconds: float = 0.0
    #: wall-clock per lifecycle stage (engine, resolve, derive, replay,
    #: learn, oracle, fuse, publish); per-column stages accumulate
    #: across the column loop, and ``oracle`` is the review time inside
    #: learn (human latency in production, split out of compute)
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def questions_asked(self) -> int:
        """Total oracle questions across every column."""
        return sum(self.questions_by_column.values())

    def describe(self) -> str:
        version = (
            f"v{self.bundle_version}" if self.bundle_version else "unchanged"
        )
        per_column = ", ".join(
            f"{column}:{count}"
            for column, count in self.questions_by_column.items()
        )
        return (
            f"batch {self.index}: {self.records} records, "
            f"{self.merges} merges, "
            f"{self.questions_asked} questions ({per_column}), "
            f"{self.clusters_refused}/{self.clusters_live} clusters "
            f"re-fused, bundle {version}"
        )

    def stats(self) -> Dict[str, object]:
        """The batch's counters as a JSON-friendly dict (one row of
        ``repro stream --columns ... --stats`` output)."""
        return {
            "batch": self.index,
            "records": self.records,
            "merges": self.merges,
            "candidate_pairs": self.pairs_compared,
            "values_shipped": self.values_shipped,
            "bytes_shipped": self.bytes_shipped,
            "explained_cells": self.explained_cells,
            "unmatched_cells": self.unmatched_cells,
            "questions_asked": self.questions_asked,
            "questions_by_column": dict(self.questions_by_column),
            "reused_replacements": self.reused_replacements,
            "inferred_verdicts": self.inferred_verdicts,
            "cells_changed": self.cells_changed,
            "clusters_refused": self.clusters_refused,
            "clusters_live": self.clusters_live,
            "golden_changed": len(self.golden_changed),
            "golden_removed": len(self.golden_removed),
            "fusion_seconds": round(self.fusion_seconds, 6),
            "bundle_version": self.bundle_version,
            "seconds": round(self.seconds, 6),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_seconds.items()
            },
        }


class GoldenStreamConsolidator:
    """Streams Algorithm 1: N columns standardized incrementally over
    one shared resolver, golden records fused per batch.

    Parameters
    ----------
    columns:
        The columns being standardized (Algorithm 1 line 2's loop),
        also the fusion columns of every golden record.
    oracle_factory:
        Builds one reviewing oracle per column once the consolidator's
        state exists (see :func:`golden_ground_truth_oracle_factory`).
    key_attribute / attribute, similarity_threshold, similarity,
    block_keys, max_block_size, block_retention:
        Resolution mode and knobs, exactly as on
        :class:`~repro.stream.consolidator.StreamConsolidator` — the
        single shared resolver clusters whole records; in similarity
        mode ``attribute`` names the column arrivals match on.
    budget_per_batch:
        Oracle questions allowed per **column** per batch (the
        streaming analogue of ``GoldenRecordCreation``'s
        ``budget_per_column``).
    fusion / cluster_fusion:
        The truth-discovery method.  ``fusion`` is the table-level
        :data:`~repro.pipeline.golden.FusionFn` used for full
        re-fusion cross-checks; ``cluster_fusion`` is the per-cluster
        kernel incremental fusion uses.  When ``cluster_fusion`` is
        omitted it is looked up in :data:`CLUSTER_KERNELS`; fusion
        functions without a kernel (Accu, TruthFinder — they couple
        clusters through source weights) fall back to re-fusing every
        live cluster each batch, which is slower but exact.
    registry / bundle_name:
        Publish :class:`~repro.serve.bundle.ModelBundle` versions into
        this :class:`~repro.serve.bundle.BundleRegistry` under this
        name.  With a registry, per-column decision logs default to
        ``<registry>/<name>/decisions-<column>.jsonl`` and an existing
        bundle resumes (see ``resume``).
    use_engine / engine_use_programs:
        Serve fast path: standardize arrivals with the live
        :class:`~repro.serve.bundle.BundleApplyEngine` before
        resolution (all columns, one atomic reload per publish).
    shards / shard_processes:
        One :class:`~repro.stream.shards.ShardPool` shared by the
        resolver and every column's alignment / grouping stages.
        Sharding never changes published bytes or question counts.
    decision_log_dir / persist_decisions:
        Override the directory the per-column verdict logs live in;
        falsy ``persist_decisions`` keeps verdicts in memory only.
    resume:
        When the registry already holds ``bundle_name``, warm-start
        every column from its latest bundle (engine + cumulative logs
        + publisher version) instead of starting over.
    question_order:
        ``"discovery"`` (default) gives every column the same
        ``budget_per_batch`` and spends it in feed order.  ``"yield"``
        pools one global budget of ``budget_per_batch x columns`` per
        batch and splits it across columns by marginal yield
        (:func:`~repro.stream.scheduler.allocate_budget`), ranks each
        column's questions by expected cells fixed, rolls an
        early-exhausted column's leftover into the next most promising
        one, and infers transitively-proven verdicts without a
        question.  Both orders are byte-identical across ``--shards``
        values.
    """

    def __init__(
        self,
        columns: Sequence[str],
        oracle_factory: GoldenOracleFactory,
        key_attribute: Optional[str] = None,
        attribute: Optional[str] = None,
        similarity_threshold: float = 0.8,
        similarity: SimilarityFn = hybrid_similarity,
        block_keys: Optional[BlockKeyFn] = None,
        max_block_size: int = 50,
        budget_per_batch: int = 50,
        fusion: FusionFn = majority.fuse,
        cluster_fusion: Optional[ClusterFusionFn] = None,
        config: Config = DEFAULT_CONFIG,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        registry: Optional[BundleRegistry] = None,
        bundle_name: Optional[str] = None,
        use_engine: bool = True,
        engine_use_programs: bool = True,
        shards: int = 1,
        shard_processes: bool = True,
        decision_log_dir: Optional[PathLike] = None,
        persist_decisions: bool = True,
        block_retention: Optional[int] = None,
        resume: bool = True,
        golden_log: Optional[PathLike] = None,
        obs=None,
        question_order: str = "discovery",
    ) -> None:
        self.obs = obs if obs is not None else NULL_OBS
        if not columns:
            raise ValueError("at least one column is required")
        if len(set(columns)) != len(tuple(columns)):
            raise ValueError(f"duplicate columns: {list(columns)}")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if question_order not in QUESTION_ORDERS:
            raise ValueError(
                f"question_order must be one of {QUESTION_ORDERS}"
            )
        self.columns = tuple(columns)
        self.oracle_factory = oracle_factory
        self.budget_per_batch = budget_per_batch
        self.fusion = fusion
        self.cluster_fusion = (
            cluster_fusion
            if cluster_fusion is not None
            else CLUSTER_KERNELS.get(fusion)
        )
        self.config = config
        self.vocabulary = vocabulary
        self.bundle_name = bundle_name or "-".join(self.columns)
        self.use_engine = use_engine
        self.engine_use_programs = engine_use_programs
        self.shards = shards
        self.shard_processes = shard_processes
        self.block_retention = block_retention
        self.resume = resume
        self.question_order = question_order
        self._key_attribute = key_attribute
        self._attribute = attribute
        self._similarity_threshold = similarity_threshold
        self._similarity = similarity
        self._block_keys = block_keys
        self._max_block_size = max_block_size

        self.registry = registry
        if persist_decisions and decision_log_dir is None and (
            registry is not None
        ):
            decision_log_dir = registry.root / slugify(self.bundle_name)
        self.decision_log_dir = (
            Path(decision_log_dir)
            if (persist_decisions and decision_log_dir is not None)
            else None
        )
        # The golden delta log rides next to the published bundle by
        # default: `repro serve --follow` tails it for lookups and
        # changed-clusters-only pushes (see repro.stream.deltas).
        if golden_log is None and registry is not None:
            golden_log = (
                registry.root
                / slugify(self.bundle_name)
                / "golden-deltas.jsonl"
            )
        self.golden_log_path = (
            Path(golden_log) if golden_log is not None else None
        )
        self._delta_log: Optional[GoldenDeltaLog] = None

        self.publisher = BundlePublisher(registry, self.bundle_name)
        self.engine: Optional[BundleApplyEngine] = None
        self.resolver: Optional[IncrementalResolver] = None
        self.standardizers: Dict[str, IncrementalStandardizer] = {}
        self.oracles: Dict[str, Oracle] = {}
        self.pool: Optional[ShardPool] = None
        self.resumed_from: Optional[int] = None
        self.reports: List[GoldenBatchReport] = []
        #: cluster slot -> column -> current golden value (live slots)
        self._golden: Dict[int, Dict[str, Optional[str]]] = {}

    # -- state accessors ---------------------------------------------------

    @property
    def table(self) -> ClusterTable:
        """The cumulative cluster table (after >= 1 batch)."""
        self._require_ready()
        return self.resolver.table

    @property
    def bundle_version(self) -> int:
        """Version of the most recently published bundle (0 = none)."""
        return self.publisher.version

    def decision_log_path(self, column: str) -> Optional[Path]:
        """The column's durable verdict log, or ``None`` in-memory."""
        if self.decision_log_dir is None:
            return None
        return self.decision_log_dir / f"decisions-{slugify(column)}.jsonl"

    def _require_ready(self) -> None:
        if self.resolver is None:
            raise RuntimeError("no batch processed yet")

    # -- models ------------------------------------------------------------

    def build_column_model(self, column: str) -> TransformationModel:
        """The cumulative model of one column (everything confirmed)."""
        self._require_ready()
        standardizer = self.standardizers[column]
        provenance = {
            "source": "GoldenStreamConsolidator",
            "batches": len(self.reports),
            "records": self.resolver.num_records,
            "questions_asked": standardizer.questions_asked,
        }
        if self.resumed_from is not None:
            provenance["resumed_from_version"] = self.resumed_from
        return build_model(
            standardizer.log,
            column,
            name=f"{self.bundle_name}-{column}",
            config=self.config,
            vocabulary=self.vocabulary,
            provenance=provenance,
        )

    def build_bundle(self) -> ModelBundle:
        """The cumulative bundle: every column's confirmed knowledge."""
        self._require_ready()
        provenance = {
            "source": "GoldenStreamConsolidator",
            "batches": len(self.reports),
            "records": self.resolver.num_records,
            "questions_by_column": {
                column: self.standardizers[column].questions_asked
                for column in self.columns
            },
        }
        if self.resumed_from is not None:
            provenance["resumed_from_version"] = self.resumed_from
        return build_bundle(
            {
                column: self.build_column_model(column)
                for column in self.columns
            },
            self.bundle_name,
            provenance=provenance,
        )

    # -- golden records ----------------------------------------------------

    def golden_records(self) -> List[GoldenRecord]:
        """The incrementally maintained golden record per live cluster
        (table order; emptied merge-loser slots are skipped)."""
        self._require_ready()
        records: List[GoldenRecord] = []
        for ci, cluster in enumerate(self.resolver.table.clusters):
            if not cluster.records:
                continue
            values = self._golden.get(ci, {})
            records.append(
                GoldenRecord(
                    ci,
                    cluster.key,
                    {col: values.get(col) for col in self.columns},
                )
            )
        return records

    def golden_by_key(self) -> Dict[str, Dict[str, Optional[str]]]:
        """``cluster key -> column -> golden value`` for live clusters."""
        return {
            record.key: dict(record.values)
            for record in self.golden_records()
        }

    def full_refusion(self) -> Dict[int, Dict[str, Optional[str]]]:
        """Fuse every live cluster from scratch with the table-level
        fusion function — the cross-check incremental fusion must
        match (and the slow path global methods fall back to)."""
        self._require_ready()
        per_column = {
            column: self.fusion(self.resolver.table, column)
            for column in self.columns
        }
        return {
            ci: {
                column: per_column[column].get(ci)
                for column in self.columns
            }
            for ci, cluster in enumerate(self.resolver.table.clusters)
            if cluster.records
        }

    def _refuse_clusters(
        self, touched: Set[int], report: GoldenBatchReport
    ) -> None:
        """Refresh golden records for the batch's touched clusters.

        With a cluster-local kernel only ``touched`` is recomputed —
        each such cluster's golden value is a pure function of its own
        cells, so untouched clusters cannot have changed.  Without one
        (global fusion), everything live is re-fused.
        """
        start = time.perf_counter()
        table = self.resolver.table
        changed = report.golden_changed
        removed = report.golden_removed
        if self.cluster_fusion is None:
            previous = self._golden
            refreshed = self.full_refusion()
            for ci, values in refreshed.items():
                if previous.get(ci) != values:
                    changed[table.clusters[ci].key] = dict(values)
            for ci in previous:
                if ci not in refreshed:
                    removed.append(table.clusters[ci].key)
            self._golden = refreshed
            report.clusters_refused = len(refreshed)
        else:
            kernel = self.cluster_fusion
            refused = 0
            for ci in sorted(touched):
                cluster = table.clusters[ci]
                if not cluster.records:
                    # A merge emptied the slot; its golden record dies
                    # (no fusion work, so it does not count as re-fused).
                    if self._golden.pop(ci, None) is not None:
                        removed.append(cluster.key)
                    continue
                values = {
                    column: kernel(table.cluster_values(ci, column))
                    for column in self.columns
                }
                if self._golden.get(ci) != values:
                    changed[cluster.key] = dict(values)
                self._golden[ci] = values
                refused += 1
            report.clusters_refused = refused
        report.clusters_live = sum(
            1 for c in table.clusters if c.records
        )
        report.fusion_seconds = time.perf_counter() - start

    # -- lazy wiring -------------------------------------------------------

    def _ensure_ready(self, records: Sequence[Record]) -> None:
        if self.resolver is not None:
            return
        table_columns: List[str] = list(self.columns)
        for record in records:
            for name in record.values:
                if name not in table_columns:
                    table_columns.append(name)
        resolver_kwargs = {}
        if self._block_keys is not None:
            resolver_kwargs["block_keys"] = self._block_keys
        self.resolver = IncrementalResolver(
            tuple(table_columns),
            key_attribute=self._key_attribute,
            attribute=self._attribute,
            threshold=self._similarity_threshold,
            similarity=self._similarity,
            max_block_size=self._max_block_size,
            shards=self.shards,
            block_retention=self.block_retention,
            **resolver_kwargs,
        )
        if not self.resume:
            for column in self.columns:
                archive_log(self.decision_log_path(column))
            archive_log(self.golden_log_path)
        if self.golden_log_path is not None:
            self._delta_log = GoldenDeltaLog(self.golden_log_path)
        for column in self.columns:
            self.standardizers[column] = IncrementalStandardizer(
                self.resolver.table,
                column,
                self.config,
                self.vocabulary,
                decisions=DecisionCache(self.decision_log_path(column)),
            )
        if self.shards > 1:
            self.pool = ShardPool(
                self.shards,
                self.config,
                self.vocabulary,
                similarity=(
                    self._similarity if self._attribute is not None else None
                ),
                processes=self.shard_processes,
                obs=self.obs,
            )
        self._maybe_resume()
        for column in self.columns:
            self.oracles[column] = self.oracle_factory(self, column)

    def _maybe_resume(self) -> None:
        """Warm-start every column from the registry's latest bundle.

        The soundness rule is the single-column one, applied to the
        bundle as a unit: rehydrating a column's group sequence is only
        safe when that column's verdicts are in its decision cache
        (otherwise re-judged variation appends to the rehydrated
        sequence and groups come out twice).  A bundle where *any*
        non-empty column lacks its verdicts starts over as a whole —
        per-column partial resumes would publish a bundle mixing
        resumed and restarted histories.
        """
        if not self.resume or self.registry is None:
            return
        versions = self.registry.versions(self.bundle_name)
        if not versions:
            return
        bundle = self.registry.load(self.bundle_name)
        for column in self.columns:
            model = bundle.models.get(column)
            if (
                model is not None
                and model.groups
                and len(self.standardizers[column].decisions) == 0
            ):
                return
        self.resumed_from = versions[-1]
        self.publisher.version = versions[-1]
        for column in self.columns:
            model = bundle.models.get(column)
            if model is not None:
                self.standardizers[column].log = _log_from_model(model)
        if self.use_engine and self.engine is None:
            self.engine = BundleApplyEngine(
                bundle,
                use_programs=self.engine_use_programs,
                obs=self.obs,
            )
            self.publisher.subscribe(self.engine)

    # -- the lifecycle -----------------------------------------------------

    def process_batch(self, records: Sequence[Record]) -> GoldenBatchReport:
        """Fold one record batch into the golden consolidation state."""
        with self.obs.span(
            "stream.batch", batch=len(self.reports)
        ) as batch_span:
            report = self._process_batch(records)
        report.seconds = batch_span.seconds
        self._record_batch(report)
        return report

    def _process_batch(
        self, records: Sequence[Record]
    ) -> GoldenBatchReport:
        # Copy (standardization must not mutate the caller's batch) and
        # normalize every consolidated column to "" when absent.
        records = [
            Record(
                r.rid,
                {**{column: "" for column in self.columns}, **r.values},
                r.source,
            )
            for r in records
        ]
        self._ensure_ready(records)
        report = GoldenBatchReport(
            index=len(self.reports), records=len(records)
        )
        stage = report.stage_seconds

        # 1. serve fast path: the live bundle standardizes arrivals —
        # all columns, before any of them reaches the learner.
        with _timed_stage(self.obs, stage, "engine"):
            if self.engine is not None and records:
                for column in self.columns:
                    engine = self.engine.engine(column)
                    if engine is None:
                        continue
                    values = [r.values.get(column, "") for r in records]
                    outputs = engine.apply_values(values)
                    for record, value, out in zip(
                        records, values, outputs
                    ):
                        if out != value:
                            record.values[column] = out
                            report.explained_cells += 1

        # 2. incremental resolution, once for the whole record.
        pool_bytes_before = (
            self.pool.shipped_bytes if self.pool is not None else 0
        )
        with _timed_stage(self.obs, stage, "resolve"):
            resolution = self.resolver.add_batch(records, pool=self.pool)
        report.merges = resolution.merges
        report.new_clusters = resolution.new_clusters
        report.pairs_compared = resolution.pairs_compared
        report.values_shipped = resolution.values_shipped

        # The fusion delta starts from the membership changes: clusters
        # that gained records, plus both sides of every merge move.
        touched: Set[int] = {slot for _, slot, _ in resolution.appended}
        for _rid, old_cluster, _orow, new_cluster, _nrow in resolution.moved:
            touched.add(old_cluster)
            touched.add(new_cluster)

        # 3-5. the per-column standardization loop (Algorithm 1 line 2):
        # every column ingests the same appends/moves into its own
        # store, replays its own decision cache, and learns over its
        # own novel remainder — sharing the one resolver and pool.
        # Stage timings accumulate across columns; oracle review time
        # is split out per batch via the timed wrapper.
        appended_rids = {rid for rid, _, _ in resolution.appended}
        first_old: Dict[str, Tuple[int, int]] = {}
        for rid, oc, orow, _nc, _nrow in resolution.moved:
            if rid not in appended_rids:
                first_old.setdefault(rid, (oc, orow))
        changed_cells: List[CellRef] = []
        oracle_seconds = 0.0
        yield_mode = self.question_order == "yield"
        #: yield mode: column -> novel remainder, learned in pass 2
        pending: Dict[str, List] = {}
        for column in self.columns:
            standardizer = self.standardizers[column]
            with _timed_stage(self.obs, stage, "derive", column=column):
                moves = [
                    (
                        CellRef(oc, orow, column),
                        CellRef(*self.resolver.position(rid), column),
                    )
                    for rid, (oc, orow) in first_old.items()
                ]
                if moves:
                    standardizer.move_cells(moves)
                new_cells = []
                for rid, _, _ in resolution.appended:
                    cluster, row = self.resolver.position(rid)
                    new_cells.append(CellRef(cluster, row, column))
                _indexed, unexplained = standardizer.ingest(
                    new_cells, pool=self.pool
                )
            report.unmatched_cells += unexplained

            with _timed_stage(self.obs, stage, "replay", column=column):
                approved, rejected_count, undecided = (
                    standardizer.partition_live()
                )
                reused, reused_cells = standardizer.reuse_confirmed(
                    approved, changed_into=changed_cells
                )
                report.reused_replacements += reused
                report.rejected_skips += rejected_count
                report.cells_changed += reused_cells
                if reused_cells:
                    undecided = standardizer.undecided()
                if yield_mode:
                    inferred, inferred_cells = (
                        standardizer.infer_transitive(
                            undecided, changed_into=changed_cells
                        )
                    )
                    report.inferred_verdicts += inferred
                    report.cells_changed += inferred_cells
                    if inferred:
                        undecided = standardizer.undecided()

            if yield_mode:
                # Columns are learner-independent (per-column stores and
                # caches over the shared resolver), so the novel
                # remainder stays valid while other columns replay; the
                # pooled budget is split once all yields are known.
                pending[column] = undecided
                continue

            oracle = _TimedOracle(self.oracles[column])
            with _timed_stage(self.obs, stage, "learn", column=column):
                steps = standardizer.learn(
                    oracle,
                    self.budget_per_batch,
                    novel=undecided,
                    pool=self.pool,
                    changed_into=changed_cells,
                )
            oracle_seconds += oracle.seconds
            report.questions_by_column[column] = len(steps)
            report.groups_approved += sum(
                1 for s in steps if s.decision.approved
            )
            report.cells_changed += sum(s.cells_changed for s in steps)

        if yield_mode:
            # One pooled budget, split by marginal yield (largest-
            # remainder apportionment over each column's total pending
            # yield), spent in descending-yield order so an early-
            # exhausted column's leftover rolls into the next most
            # promising one.
            yields = {
                column: sum(
                    member_yield(
                        self.standardizers[column].store,
                        self.resolver.table,
                        member,
                    )
                    for member in pending[column]
                )
                for column in self.columns
            }
            total_budget = self.budget_per_batch * len(self.columns)
            carry = 0
            for column, share in allocate_budget(
                yields, total_budget, self.columns
            ):
                standardizer = self.standardizers[column]
                budget = share + carry
                oracle = _TimedOracle(self.oracles[column])
                with _timed_stage(self.obs, stage, "learn", column=column):
                    steps = standardizer.learn(
                        oracle,
                        budget,
                        novel=pending[column],
                        pool=self.pool,
                        changed_into=changed_cells,
                        yield_ranked=True,
                    )
                oracle_seconds += oracle.seconds
                carry = budget - len(steps)
                report.questions_by_column[column] = len(steps)
                report.groups_approved += sum(
                    1 for s in steps if s.decision.approved
                )
                report.cells_changed += sum(
                    s.cells_changed for s in steps
                )
        stage["oracle"] = oracle_seconds

        touched.update(cell.cluster for cell in changed_cells)

        # 6. incremental fusion over exactly the touched clusters.
        with _timed_stage(self.obs, stage, "fuse"):
            self._refuse_clusters(touched, report)

        # 7. publish one bundle; every column hot-reloads atomically.
        with _timed_stage(self.obs, stage, "publish"):
            if report.groups_approved:
                bundle = self.build_bundle()
                version, _path = self.publisher.publish(bundle)
                report.bundle_version = version
                if self.engine is None and self.use_engine:
                    self.engine = BundleApplyEngine(
                        bundle,
                        use_programs=self.engine_use_programs,
                        obs=self.obs,
                    )
                    self.publisher.subscribe(self.engine)

        # 8. append the batch's golden delta (changed clusters only) to
        # the durable log the serving tier tails.
        if self._delta_log is not None:
            self._delta_log.append(
                report.golden_changed,
                report.golden_removed,
                batch=report.index,
                bundle_version=report.bundle_version,
            )

        if self.pool is not None:
            report.bytes_shipped = (
                self.pool.shipped_bytes - pool_bytes_before
            )
        return report

    def _record_batch(self, report: GoldenBatchReport) -> None:
        """Append the report; with an enabled obs context, mirror its
        counters into the registry (same key schema as the single-
        column consolidator, plus the fusion counters) and emit the
        batch row."""
        self.reports.append(report)
        obs = self.obs
        if not obs.enabled:
            return
        metrics = obs.metrics
        metrics.counter("stream.batches").inc()
        metrics.counter("stream.records").inc(report.records)
        metrics.counter("stream.explained_cells").inc(
            report.explained_cells
        )
        metrics.counter("stream.unmatched_cells").inc(
            report.unmatched_cells
        )
        metrics.counter("stream.merges").inc(report.merges)
        metrics.counter("stream.new_clusters").inc(report.new_clusters)
        metrics.counter("stream.candidate_pairs").inc(
            report.pairs_compared
        )
        metrics.counter("stream.reused_replacements").inc(
            report.reused_replacements
        )
        metrics.counter("stream.rejected_skips").inc(
            report.rejected_skips
        )
        metrics.counter("oracle.inferred_verdicts").inc(
            report.inferred_verdicts
        )
        metrics.counter("oracle.questions_saved").inc(
            report.reused_replacements
            + report.rejected_skips
            + report.inferred_verdicts
        )
        for column, asked in report.questions_by_column.items():
            metrics.counter("stream.questions", column=column).inc(asked)
        metrics.counter("stream.groups_approved").inc(
            report.groups_approved
        )
        metrics.counter("stream.cells_changed").inc(report.cells_changed)
        metrics.counter("stream.clusters_refused").inc(
            report.clusters_refused
        )
        metrics.counter("stream.golden_changed").inc(
            len(report.golden_changed)
        )
        metrics.counter("stream.golden_removed").inc(
            len(report.golden_removed)
        )
        metrics.gauge("stream.clusters_live").set(report.clusters_live)
        if report.bundle_version is not None:
            metrics.counter("stream.publishes").inc()
        metrics.counter("stream.values_shipped", deterministic=False).inc(
            report.values_shipped
        )
        metrics.counter("stream.bytes_shipped", deterministic=False).inc(
            report.bytes_shipped
        )
        metrics.histogram(
            "stream.batch_seconds", deterministic=False
        ).observe(report.seconds)
        metrics.counter("stream.fusion_seconds", deterministic=False).inc(
            round(report.fusion_seconds, 9)
        )
        for stage, seconds in report.stage_seconds.items():
            metrics.counter(
                "stream.stage_seconds", deterministic=False, stage=stage
            ).inc(round(seconds, 9))
        _sync_pool_metrics(obs, self.pool)
        obs.emit({"type": "batch", **report.stats()})

    def run(self, batches) -> List[GoldenBatchReport]:
        """Process every batch of an iterable; returns the reports."""
        return [self.process_batch(batch) for batch in batches]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the shard pool's worker processes and flush the
        golden delta log (idempotent)."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self._delta_log is not None:
            self._delta_log.close()
            self._delta_log = None

    def __enter__(self) -> "GoldenStreamConsolidator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- roll-ups ----------------------------------------------------------

    @property
    def questions_asked(self) -> int:
        """Total oracle questions spent across batches and columns."""
        return sum(r.questions_asked for r in self.reports)

    @property
    def questions_saved(self) -> int:
        """Oracle work the incremental state avoided (cached approvals
        re-applied, cached rejections silenced, transitively inferred
        verdicts — all columns)."""
        return sum(
            r.reused_replacements + r.rejected_skips + r.inferred_verdicts
            for r in self.reports
        )

    @property
    def inferred_verdicts(self) -> int:
        """Verdicts settled transitively, never asked (yield mode)."""
        return sum(r.inferred_verdicts for r in self.reports)

    @property
    def clusters_refused(self) -> int:
        """Total golden-record recomputations across batches."""
        return sum(r.clusters_refused for r in self.reports)
