"""Sharded execution of the streaming learner (``repro stream --shards``).

The serve side has sharded for a while (`ApplyEngine.apply_values`
fans unique values across a process pool); this module gives the
*learner* the same treatment without giving up two properties the
whole subsystem is built on:

* **determinism** — the same batch sequence must publish byte-identical
  models at any shard count, and
* **oracle frugality** — sharding must not add a single question.

Both hold because every parallelized stage is a pure computation whose
results are merged in a canonical order by the single parent process:

1. **candidate delta derivation** — token-level alignment of a value
   pair (:func:`repro.candidates.store.derive_token_segments`) is a
   pure function of the two strings; pairs fan out across shard
   workers, the parent merges segments into the one
   :class:`~repro.candidates.store.ReplacementStore` in inline order;
2. **similarity matching** — a new record's blocked comparisons are a
   pure function of the candidate values.  Blocking state is
   **shard-resident**: each shard keeps a live replica of the member
   values of every block key it owns (stable block-key hash,
   :class:`~repro.resolution.blocking.BlockIndex`), maintained by
   index/evict deltas that ship each member value to a shard exactly
   once.  Per batch the parent ships only the batch's *new* values and
   the candidate record ids to compare — never the resident member
   values again — which drops the dominant per-batch IPC from
   O(candidate values) to O(new values);
3. **the grouping feed** — the expensive stage.  The incremental
   grouper is a lazy top-k merge over independent per-structure-bucket
   sources, so buckets are partitioned across shards by stable
   structure-key hash; each shard refines only its *local* winner
   (:meth:`~repro.core.incremental.IncrementalGrouper.peek_best`), all
   shards refine concurrently, and the parent pops the global winner —
   ``(size desc, structure key asc)``, exactly the single-process
   emission order.  The oracle, the decision cache, the replacement
   store, and publication stay in the parent; shard workers never see
   a question.

Worker processes are persistent for the consolidator's lifetime (state
ships once, batches ship deltas), mirroring the long-lived shards of a
production learner.  An in-process backend with the same message
protocol backs ``shards=1``, pickling-hostile configurations, and the
determinism tests.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from collections import Counter
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..candidates.store import TokenSegments, derive_token_segments
from ..config import DEFAULT_CONFIG, Config
from ..core.grouping import Group
from ..core.incremental import IncrementalGrouper
from ..core.replacement import Replacement
from ..core.structure import StructureKey, structure_key
from ..core.terms import DEFAULT_VOCABULARY, TermVocabulary
from ..obs import NULL_OBS
from ..obs.trace import RemoteSpan, TraceContext
from ..resolution.blocking import stable_hash
from ..resolution.matcher import PairDecisionMemo, SimilarityFn

#: Below this many alignment pairs a batch is handled inline: IPC
#: would cost more than the work.  (Match traffic is exempt — it also
#: maintains the shards' resident blocking state, so it always flows.)
MIN_PARALLEL_PAIRS = 64

#: One step of a shard's per-batch resolve script, executed in order:
#: ``("m", task id, new value, [candidate rids])`` — compare the new
#: value against the named resident members, reply with the matches;
#: ``("i", rid, value-or-None)`` — a new member entered a block this
#: shard owns (the value ships on the rid's first step per shard and
#: is ``None`` on repeats — one block reference each, refcounted);
#: ``("e", rid)`` — rotation/compaction dropped one of the rid's block
#: references here; the last reference releases the resident value;
#: ``("r",)`` — drop the whole replica (precedes a full re-warm-up
#: after the parent stopped tracking deltas, e.g. a long unpooled
#: stretch overflowed its delta buffer).
ResolveStep = Tuple[Any, ...]

#: Parent-side reply callback: ``observer(shard, op, seconds, spans)``
#: is invoked once per reply with the shard's compute time for that
#: request (shipped back alongside the result; queue wait excluded)
#: and — when the request carried trace context — the worker's
#: recorded span list (:data:`~repro.obs.trace.RemoteSpan`), which the
#: pool re-attaches under the parent's active span.
Observer = Callable[[int, str, float, Optional[List[RemoteSpan]]], None]


class ShardStandardizer:
    """The shard-local half of the streaming learner.

    One instance runs inside each shard (worker process or inline) and
    owns the shard's partition of the grouping feed, the stateless pure
    kernels (pair alignment, similarity comparison), and the shard's
    **resident blocking state**: a live ``rid -> value`` replica of
    every member of every block key the shard owns, kept current by the
    index/evict steps of each batch's resolve script.  Matching reads
    candidate values from this replica, so the parent never re-ships a
    member value after its first arrival.  It speaks a small
    ``(op, payload, ctx) -> reply`` protocol so the process and inline
    backends stay byte-for-byte equivalent (``ctx`` is the parent's
    trace context — ``(trace id, parent span id)`` — or ``None`` when
    nobody is recording; a live context makes the data-plane ops time
    themselves as ``shard.*`` remote-span records that ride back with
    the reply, see :func:`_serve_op`):

    ===========  ============================================  =========
    op           payload                                       reply
    ===========  ============================================  =========
    ``round``    ``(replacements, counts)``                    ``True``
    ``peek``     ``None``                                      ``None`` or ``(size, skey)``
    ``pop``      ``None``                                      :class:`~repro.core.grouping.Group`
    ``remove``   ``[Replacement, ...]``                        ``True``
    ``derive``   ``[(va, vb), ...]``                           ``[TokenSegments, ...]``
    ``resolve``  ``(threshold, [ResolveStep, ...])``           ``[(task id, [matched rid, ...]), ...]``
    ===========  ============================================  =========
    """

    def __init__(
        self,
        config: Config = DEFAULT_CONFIG,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        similarity: Optional[SimilarityFn] = None,
    ) -> None:
        self.config = config
        self.vocabulary = vocabulary
        self.similarity = similarity
        self.grouper: Optional[IncrementalGrouper] = None
        #: resident replica: rid -> value, for members of owned blocks
        self.values: Dict[str, str] = {}
        #: rid -> live block references on this shard (drop at zero)
        self.value_refs: Dict[str, int] = {}
        #: per-threshold memoized match kernels (early-exit + memo)
        self._deciders: Dict[float, PairDecisionMemo] = {}

    # -- protocol ----------------------------------------------------------

    def handle(self, op: str, payload: Any) -> Any:
        if op == "round":
            replacements, counts = payload
            self.grouper = IncrementalGrouper(
                replacements, self.vocabulary, self.config, counts
            )
            return True
        if op == "peek":
            assert self.grouper is not None, "peek before round"
            peeked = self.grouper.peek_best()
            if peeked is None:
                return None
            group, skey = peeked
            return group.size, skey
        if op == "pop":
            assert self.grouper is not None, "pop before round"
            peeked = self.grouper.peek_best()
            assert peeked is not None, "pop on an exhausted shard"
            return self.grouper.pop_best()
        if op == "remove":
            if self.grouper is not None:
                self.grouper.remove_replacements(payload)
            return True
        if op == "derive":
            return [
                derive_token_segments(va, vb, self.config)
                for va, vb in payload
            ]
        if op == "resolve":
            threshold, steps = payload
            return self._resolve(threshold, steps)[0]
        raise ValueError(f"unknown shard op: {op!r}")

    # -- resident blocked matching -----------------------------------------

    def _resolve(
        self,
        threshold: float,
        steps: Sequence[ResolveStep],
        record: bool = False,
    ) -> Tuple[List[Tuple[int, List[str]]], float, int]:
        """Execute one batch's resolve script against resident state.

        Step order is the parent's sequential interleave — a record's
        match step precedes its index step, which precedes the next
        record's match step — so intra-batch candidates and rotation
        evictions are seen exactly as a single process would see them.

        Returns ``(replies, match seconds, comparisons)``; the timing
        pair is only measured when ``record`` is set (tracing), so the
        untraced hot path pays no extra clock reads.
        """
        decide = self._deciders.get(threshold)
        if decide is None:
            assert self.similarity is not None, "resolve without similarity"
            decide = self._deciders[threshold] = PairDecisionMemo(
                self.similarity, threshold
            )
        values = self.values
        refs = self.value_refs
        replies: List[Tuple[int, List[str]]] = []
        match_seconds = 0.0
        comparisons = 0
        for step in steps:
            kind = step[0]
            if kind == "m":
                _, task_id, value, rids = step
                if record:
                    match_start = time.perf_counter()
                    comparisons += len(rids)
                matched = [
                    rid for rid in rids if decide(value, values[rid])
                ]
                if record:
                    match_seconds += time.perf_counter() - match_start
                replies.append((task_id, matched))
            elif kind == "i":
                _, rid, value = step
                if value is not None:
                    values[rid] = value
                refs[rid] = refs.get(rid, 0) + 1
            elif kind == "e":
                rid = step[1]
                remaining = refs.get(rid, 0) - 1
                if remaining <= 0:
                    refs.pop(rid, None)
                    values.pop(rid, None)
                else:
                    refs[rid] = remaining
            elif kind == "r":
                values.clear()
                refs.clear()
            else:
                raise ValueError(f"unknown resolve step: {kind!r}")
        return replies, match_seconds, comparisons


def _serve_op(
    server: ShardStandardizer,
    shard: int,
    op: str,
    payload: Any,
    ctx: TraceContext,
) -> Tuple[Any, float, Optional[List[RemoteSpan]]]:
    """Serve one op on a shard, timing it either way.

    When the request carries trace context and the op is one of the
    data-plane kernels, the shard's real work is recorded as remote
    span records: ``shard.resolve`` (whole script) with a
    ``shard.match`` child (the similarity comparisons alone), and
    ``shard.derive`` (pair alignment).  Records list children before
    parents — the order a local tracer would emit them — with
    ``parent`` as a relative index and ``None`` for the root that
    re-attaches under the parent's requesting span.  Both backends call
    this one function, so inline and process shards stay equivalent.
    """
    started = time.perf_counter()
    if ctx is not None and op == "resolve":
        threshold, steps = payload
        replies, match_seconds, comparisons = server._resolve(
            threshold, steps, record=True
        )
        seconds = time.perf_counter() - started
        if not steps:
            return replies, seconds, None
        spans: List[RemoteSpan] = []
        if comparisons:
            spans.append(
                {
                    "span": "shard.match",
                    "seconds": match_seconds,
                    "tags": {"shard": shard, "comparisons": comparisons},
                    "parent": 1,
                }
            )
        spans.append(
            {
                "span": "shard.resolve",
                "seconds": seconds,
                "tags": {"shard": shard, "steps": len(steps)},
                "parent": None,
            }
        )
        return replies, seconds, spans
    result = server.handle(op, payload)
    seconds = time.perf_counter() - started
    if ctx is not None and op == "derive" and payload:
        spans = [
            {
                "span": "shard.derive",
                "seconds": seconds,
                "tags": {"shard": shard, "pairs": len(payload)},
                "parent": None,
            }
        ]
        return result, seconds, spans
    return result, seconds, None


def _shard_main(
    shard, requests, responses, config, vocabulary, similarity
) -> None:
    """Worker-process entry point: serve one shard until ``None``.

    Every reply is ``(ok, value, seconds, spans)`` — the shard's
    compute time rides back with the result (queue wait excluded), so
    the parent can aggregate per-op / per-shard busy time without a
    second round trip, and ``spans`` carries the worker's remote span
    records when the request shipped trace context (else ``None``).
    """
    server = ShardStandardizer(config, vocabulary, similarity)
    while True:
        message = requests.get()
        if message is None:
            return
        op, payload, ctx = message
        started = time.perf_counter()
        try:
            result, seconds, spans = _serve_op(
                server, shard, op, payload, ctx
            )
            responses.put((True, result, seconds, spans))
        except BaseException as exc:  # ship the failure to the parent
            responses.put(
                (
                    False,
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - started,
                    None,
                )
            )


class _InlineBackend:
    """Same protocol, no processes — ``shards=1`` and fallbacks."""

    def __init__(
        self,
        shards: int,
        config: Config,
        vocabulary: TermVocabulary,
        similarity: Optional[SimilarityFn],
        observer: Optional[Observer] = None,
    ) -> None:
        self._servers = [
            ShardStandardizer(config, vocabulary, similarity)
            for _ in range(shards)
        ]
        self._observer = observer

    def request(
        self, shard: int, op: str, payload: Any, ctx: TraceContext = None
    ) -> Any:
        result, seconds, spans = _serve_op(
            self._servers[shard], shard, op, payload, ctx
        )
        if self._observer is not None:
            self._observer(shard, op, seconds, spans)
        return result

    def broadcast(
        self, op: str, payloads: Sequence[Any], ctx: TraceContext = None
    ) -> List[Any]:
        return [
            self.request(shard, op, payload, ctx)
            for shard, payload in enumerate(payloads)
        ]

    def close(self) -> None:
        self._servers = []


class _ProcessBackend:
    """One persistent worker process per shard, queue pair each."""

    def __init__(
        self,
        shards: int,
        config: Config,
        vocabulary: TermVocabulary,
        similarity: Optional[SimilarityFn],
        observer: Optional[Observer] = None,
    ) -> None:
        context = multiprocessing.get_context()
        self._observer = observer
        self._requests = []
        self._responses = []
        self._processes = []
        try:
            for shard in range(shards):
                requests = context.Queue()
                responses = context.Queue()
                process = context.Process(
                    target=_shard_main,
                    args=(
                        shard,
                        requests,
                        responses,
                        config,
                        vocabulary,
                        similarity,
                    ),
                    daemon=True,
                )
                process.start()
                self._requests.append(requests)
                self._responses.append(responses)
                self._processes.append(process)
        except BaseException:
            # Partial spawn (fd/process limit mid-loop): shut down the
            # workers that did start before the caller falls back to
            # the inline backend, or they would block on their queues
            # for the parent's whole lifetime.
            self.close()
            raise

    def _unwrap(
        self,
        shard: int,
        op: str,
        reply: Tuple[bool, Any, float, Optional[List[RemoteSpan]]],
    ) -> Any:
        ok, value, seconds, spans = reply
        if self._observer is not None:
            self._observer(shard, op, seconds, spans)
        if not ok:
            raise RuntimeError(f"shard worker failed: {value}")
        return value

    def request(
        self, shard: int, op: str, payload: Any, ctx: TraceContext = None
    ) -> Any:
        self._requests[shard].put((op, payload, ctx))
        return self._unwrap(shard, op, self._responses[shard].get())

    def broadcast(
        self, op: str, payloads: Sequence[Any], ctx: TraceContext = None
    ) -> List[Any]:
        # Send everything first so the shards compute concurrently —
        # this is where the wall-clock win comes from — then collect.
        for requests, payload in zip(self._requests, payloads):
            requests.put((op, payload, ctx))
        return [
            self._unwrap(shard, op, responses.get())
            for shard, responses in enumerate(self._responses)
        ]

    def close(self) -> None:
        for requests in self._requests:
            try:
                requests.put(None)
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
        self._processes = []
        self._requests = []
        self._responses = []


def _picklable(*objects: Any) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


class ShardPool:
    """Parent-side handle on N learner shards.

    ``processes=True`` backs the shards with persistent worker
    processes when the shipped state pickles (configs built from
    module-level functions always do); otherwise — closures as
    similarity functions, exotic configs — it degrades to the inline
    backend, which is merely slower, never different.
    """

    def __init__(
        self,
        shards: int,
        config: Config = DEFAULT_CONFIG,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        similarity: Optional[SimilarityFn] = None,
        processes: bool = True,
        obs=NULL_OBS,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.config = config
        #: observability facade — when its tracer records rows, the
        #: data-plane ops ship trace context to the workers and the
        #: returned ``shard.*`` spans re-attach under the parent's
        #: active span (:meth:`~repro.obs.trace.Tracer.attach_remote`).
        self.obs = obs
        #: per-op request counts / shard compute seconds, and per-shard
        #: busy seconds — aggregated parent-side from the timings each
        #: reply ships back, so the totals exist at any shard count and
        #: on both backends.  The stream layer mirrors them into the
        #: metrics registry (as *volatile* instruments: wall-clock and
        #: IPC volume legitimately differ across ``--shards`` values).
        self.op_requests: Dict[str, int] = {}
        self.op_seconds: Dict[str, float] = {}
        self.shard_seconds: List[float] = [0.0] * shards
        use_processes = (
            processes
            and shards > 1
            and _picklable(config, vocabulary, similarity)
        )
        backend_cls = _ProcessBackend if use_processes else _InlineBackend
        try:
            self._backend = backend_cls(
                shards, config, vocabulary, similarity, observer=self._observe
            )
        except OSError:
            # Process spawn refused (containers without /dev/shm etc.):
            # shards still work, just without the parallelism.
            self._backend = _InlineBackend(
                shards, config, vocabulary, similarity, observer=self._observe
            )
        self.uses_processes = isinstance(self._backend, _ProcessBackend)
        #: cumulative shipping counters for the data-plane ops (resolve
        #: + derive): resident values shipped, candidate rid references
        #: shipped, and serialized payload bytes.  The per-batch deltas
        #: back ``repro stream --stats`` and the IPC benchmarks.
        #: ``shipped_bytes`` counts only *actual* IPC — it stays 0 on
        #: the inline backend, where nothing is serialized (and where
        #: pickling purely for accounting would cost real time).
        self.shipped_values = 0
        self.shipped_candidate_ids = 0
        self.shipped_bytes = 0

    def _observe(
        self,
        shard: int,
        op: str,
        seconds: float,
        spans: Optional[List[RemoteSpan]] = None,
    ) -> None:
        """Fold one reply's shard compute time into the aggregates and
        re-attach any worker-recorded spans under the parent span that
        issued the request (replies are unwrapped synchronously, so the
        requesting span is still the active one)."""
        self.op_requests[op] = self.op_requests.get(op, 0) + 1
        self.op_seconds[op] = self.op_seconds.get(op, 0.0) + seconds
        self.shard_seconds[shard] += seconds
        if spans:
            self.obs.tracer.attach_remote(spans)

    def _trace_context(self) -> TraceContext:
        """The context to ship with a data-plane request — ``None``
        unless span rows are being recorded, so untraced runs ship
        exactly what they shipped before."""
        return self.obs.tracer.current_context()

    # -- the grouping feed -------------------------------------------------

    def group_feed(
        self,
        replacements: Sequence[Replacement],
        counts: Optional[Counter] = None,
    ) -> "ShardedGroupFeed":
        """A :class:`ShardedGroupFeed` over one learn round's novel
        candidates — a drop-in
        :class:`~repro.pipeline.standardize.GroupFeed`."""
        return ShardedGroupFeed(self, replacements, counts)

    # -- pure kernels ------------------------------------------------------

    def derive_segments(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], TokenSegments]:
        """Token-segment alignments for distinct value pairs, computed
        across the shards; small workloads stay inline."""
        pairs = list(dict.fromkeys(pairs))
        if not pairs:
            return {}
        if not self.uses_processes or len(pairs) < MIN_PARALLEL_PAIRS:
            segments = [
                derive_token_segments(va, vb, self.config)
                for va, vb in pairs
            ]
            return dict(zip(pairs, segments))
        chunks = [pairs[shard :: self.shards] for shard in range(self.shards)]
        for chunk in chunks:
            self.shipped_bytes += len(
                pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL)
            )
        replies = self._backend.broadcast(
            "derive", chunks, ctx=self._trace_context()
        )
        out: Dict[Tuple[str, str], TokenSegments] = {}
        for chunk, reply in zip(chunks, replies):
            out.update(zip(chunk, reply))
        return out

    def resolve(
        self,
        threshold: float,
        steps_by_shard: Sequence[Sequence[ResolveStep]],
    ) -> Dict[int, List[str]]:
        """Run one batch's resolve scripts on the shards.

        Every step list ships — index/evict steps maintain the shards'
        resident replicas, so they can never be skipped for being small
        — and the matched rids come back merged per task id in
        ascending shard order.  Only match consumers care about the
        order; the caller re-ranks against its own candidate order.
        Counters account what actually crossed the boundary: each
        resident value ships exactly once per owning shard, match steps
        ship candidate *ids* only.
        """
        merged: Dict[int, List[str]] = {}
        if not any(steps_by_shard):
            return merged
        payloads = []
        for steps in steps_by_shard:
            steps = list(steps)
            payloads.append((threshold, steps))
            if not steps:
                continue
            for step in steps:
                kind = step[0]
                if kind == "i":
                    if step[2] is not None:
                        self.shipped_values += 1
                elif kind == "m":
                    self.shipped_candidate_ids += len(step[3])
            if self.uses_processes:
                self.shipped_bytes += len(
                    pickle.dumps(
                        (threshold, steps), pickle.HIGHEST_PROTOCOL
                    )
                )
        replies = self._backend.broadcast(
            "resolve", payloads, ctx=self._trace_context()
        )
        for reply in replies:
            for task_id, matched in reply:
                merged.setdefault(task_id, []).extend(matched)
        return merged

    # -- plumbing ----------------------------------------------------------

    def request(self, shard: int, op: str, payload: Any) -> Any:
        return self._backend.request(shard, op, payload)

    def broadcast(self, op: str, payloads: Sequence[Any]) -> List[Any]:
        return self._backend.broadcast(op, payloads)

    def close(self) -> None:
        """Shut down worker processes; the pool is unusable after."""
        self._backend.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class ShardedGroupFeed:
    """The merged, shard-parallel grouping feed (GroupFeed protocol).

    Candidates are partitioned by stable structure-key hash — the
    learner-side analogue of the resolver's block-key partitioning: a
    structure bucket is the unit that can never be split without
    splitting groups (and spending extra oracle questions), exactly as
    a block is the unit that can never be split without losing matches.

    ``next_group`` broadcasts one ``peek`` (all shards refine their
    local winners concurrently), then pops only the global winner.  The
    winner is chosen by ``(size desc, structure key asc)``; since the
    single-process grouper breaks ties by source order and source order
    is the rank of the structure key in sorted order, the merged stream
    equals the single-process stream group for group.
    """

    def __init__(
        self,
        pool: ShardPool,
        replacements: Sequence[Replacement],
        counts: Optional[Counter] = None,
    ) -> None:
        self.pool = pool
        partitions = self._partition(replacements, pool.shards)
        self._exhausted = [not part for part in partitions]
        pool.broadcast(
            "round", [(part, counts) for part in partitions]
        )

    @staticmethod
    def _partition(
        replacements: Sequence[Replacement], shards: int
    ) -> List[List[Replacement]]:
        """Assign whole structure buckets to shards, balanced by size.

        A bucket is indivisible (splitting one would split groups and
        spend extra questions), but *which* shard owns it is free: any
        deterministic assignment yields the identical merged stream.
        So instead of hashing — which lets one hot bucket's shard
        dominate the round — buckets go largest-first to the currently
        lightest shard (ties: lower shard id), a deterministic greedy
        bin-packing that keeps the parallel peeks even.  Bucket order
        *within* a shard preserves first-appearance order, matching the
        single grouper's source construction.
        """
        order: List[StructureKey] = []
        buckets: Dict[StructureKey, List[Replacement]] = {}
        for replacement in dict.fromkeys(replacements):
            skey = structure_key(replacement)
            if skey not in buckets:
                buckets[skey] = []
                order.append(skey)
            buckets[skey].append(replacement)
        loads = [0] * shards
        owner: Dict[StructureKey, int] = {}
        by_size = sorted(
            order, key=lambda skey: (-len(buckets[skey]), skey)
        )
        for skey in by_size:
            shard = min(range(shards), key=lambda s: (loads[s], s))
            owner[skey] = shard
            loads[shard] += len(buckets[skey])
        partitions: List[List[Replacement]] = [[] for _ in range(shards)]
        for skey in order:
            partitions[owner[skey]].extend(buckets[skey])
        return partitions

    def next_group(self) -> Optional[Group]:
        """The globally next-largest group across all shards."""
        live = [s for s, done in enumerate(self._exhausted) if not done]
        if not live:
            return None
        replies = self.pool.broadcast(
            "peek", [None] * len(self._exhausted)
        )
        winner: Optional[int] = None
        winner_rank: Optional[Tuple[int, StructureKey]] = None
        for shard in live:
            reply = replies[shard]
            if reply is None:
                self._exhausted[shard] = True
                continue
            size, skey = reply
            rank = (-size, skey)
            if winner_rank is None or rank < winner_rank:
                winner, winner_rank = shard, rank
        if winner is None:
            return None
        return self.pool.request(winner, "pop", None)

    def remove_replacements(self, dead) -> None:
        """Propagate §7.1 invalidation to every shard's sources."""
        dead_list = list(dead)
        if not dead_list:
            return
        self.pool.broadcast(
            "remove", [dead_list] * len(self._exhausted)
        )
