"""Incremental standardization: learn only from novel variation.

The one-shot :class:`~repro.pipeline.standardize.Standardizer` generates
all candidates, groups them, and asks the oracle about every group —
every run pays the full human budget again.  The streaming
:class:`IncrementalStandardizer` keeps three things alive across
batches:

* the **candidate store** — new cells are delta-indexed with
  :meth:`~repro.candidates.store.ReplacementStore.add_cell`, so
  replacement groups grow in place instead of being regenerated;
* the **decision cache** — every oracle verdict is remembered per
  member replacement (in its learned orientation).  When later batches
  re-introduce already-judged variation, approved replacements are
  re-applied and rejected ones skipped *without asking again*: repeated
  variation costs zero new oracle questions.  Backed by a
  :class:`~repro.stream.decisions.DecisionCache`, the verdicts can be
  persisted as JSON-lines next to the model, extending the
  zero-question guarantee across restarts;
* the **cumulative log** — an append-only
  :class:`~repro.pipeline.standardize.StandardizationLog` of the novel
  confirmations, the exact shape :func:`repro.serve.model.build_model`
  consumes, so each publish extends the previous model version.

With a :class:`~repro.stream.shards.ShardPool`, the two compute-heavy
stages run on the shard workers: candidate delta *derivation* (value
pairs aligned in parallel, merged into the single store in inline
order) and the grouping *feed* (per-structure-bucket sources
partitioned across shards, winners max-merged).  Both are
order-preserving merges of pure computations, so a sharded learner
publishes byte-identical models and asks byte-identical questions —
see :mod:`repro.stream.shards`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..candidates.store import ReplacementStore, TokenSegments
from ..config import DEFAULT_CONFIG, Config
from ..core.incremental import IncrementalGrouper
from ..core.replacement import Replacement
from ..core.scoring import global_frequencies
from ..core.terms import DEFAULT_VOCABULARY, TermVocabulary
from ..data.table import CellRef, ClusterTable
from ..pipeline.oracle import Decision, Oracle, REVERSE
from ..pipeline.standardize import (
    StandardizationLog,
    StepRecord,
    apply_group_recorded,
)
from .decisions import DecisionCache, PathLike
from .scheduler import (
    DEFAULT_LOOKAHEAD,
    YieldRankedFeed,
    approved_rewrites,
    transitive_direction,
)


class IncrementalStandardizer:
    """Standardizes one column of a *growing* clustered table.

    Parameters
    ----------
    table, column:
        The cumulative cluster table (owned by the resolver) and the
        column being standardized.
    config, vocabulary:
        The learning knobs and term vocabulary, fixed for the
        standardizer's lifetime (they are part of the published model's
        identity).
    decisions:
        An existing :class:`~repro.stream.decisions.DecisionCache`, or
        a path to persist one at, or ``None`` for a fresh in-memory
        cache.  A cache loaded from a previous run answers already-
        judged variation without a question.
    """

    def __init__(
        self,
        table: ClusterTable,
        column: str,
        config: Config = DEFAULT_CONFIG,
        vocabulary: TermVocabulary = DEFAULT_VOCABULARY,
        decisions: Union[DecisionCache, PathLike, None] = None,
    ) -> None:
        self.table = table
        self.column = column
        self.config = config
        self.vocabulary = vocabulary
        #: starts empty; cells are delta-indexed as batches arrive
        self.store = ReplacementStore(table, column, config)
        #: learned-orientation member replacement -> oracle verdict
        if isinstance(decisions, DecisionCache):
            self.decisions = decisions
        else:
            self.decisions = DecisionCache(decisions)
        self.log = StandardizationLog()
        self.questions_asked = 0
        #: verdicts settled transitively from approved rewrites, never
        #: presented to the oracle (see :meth:`infer_transitive`)
        self.inferred_verdicts = 0

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self, cells: Iterable[CellRef], pool=None
    ) -> Tuple[int, int]:
        """Delta-index new cells into the candidate store.

        Returns ``(cells indexed, cells unexplained)`` — a cell is
        *unexplained* when indexing it created at least one candidate
        key nothing in the current state had seen before (the drift
        monitor's unmatched signal).

        With a :class:`~repro.stream.shards.ShardPool`, the alignment
        of the batch's distinct value pairs is computed by the shard
        workers first; the cells are then indexed inline in arrival
        order using the precomputed segments, so the resulting store is
        identical to the unsharded one.
        """
        cells = list(cells)
        segments: Optional[Dict[Tuple[str, str], TokenSegments]] = None
        if pool is not None and self.config.token_level_candidates:
            segments = pool.derive_segments(
                self.store.pending_pairs(cells)
            )
        indexed = unexplained = 0
        for cell in cells:
            indexed += 1
            if self.store.add_cell(cell, segments=segments) > 0:
                unexplained += 1
        return indexed, unexplained

    def move_cells(
        self, moves: Iterable[Tuple[CellRef, CellRef]]
    ) -> None:
        """Re-home cells displaced by a cluster merge.

        Old positions are purged first, then every cell is re-indexed at
        its new position — pairings among the moved cells themselves are
        derived exactly once because re-indexing is sequential.
        """
        moves = list(moves)
        for old, _new in moves:
            self.store.purge_cell(old)
        for _old, new in moves:
            self.store.add_cell(new)

    # -- decision-cache replay ---------------------------------------------

    def partition_live(
        self,
    ) -> Tuple[List[Replacement], int, List[Replacement]]:
        """One pass over the live candidates, split by cached verdict:
        ``(approved, rejected count, undecided)``."""
        approved: List[Replacement] = []
        rejected = 0
        undecided: List[Replacement] = []
        for replacement in self.store.replacements():
            decision = self.decisions.get(replacement)
            if decision is None:
                undecided.append(replacement)
            elif decision.approved:
                approved.append(replacement)
            else:
                rejected += 1
        return approved, rejected, undecided

    def reuse_confirmed(
        self,
        approved: Optional[List[Replacement]] = None,
        changed_into: Optional[List[CellRef]] = None,
    ) -> Tuple[int, int]:
        """Re-apply cached verdicts to the current candidate set.

        Returns ``(replacements reused, cells changed)``;
        ``changed_into`` (when given) collects the rewritten cell refs
        for delta consumers like the incremental golden-record fuser.
        Approved
        replacements are applied in their confirmed direction wherever
        the new provenance supports them; rejected ones are left alone
        (their cached verdict keeps them out of the question feed).
        Iterates to a fixed point: applying one cached replacement can
        re-derive provenance that another cached replacement covers.
        ``approved`` seeds the first round when the caller already
        partitioned the live set (saves one full scan when nothing is
        reusable).

        Application follows **confirmation order** — the decision
        cache's insertion order, which the durable JSON-lines log
        preserves across restarts.  That is the order the original run
        applied these replacements in, so a restarted stream replaying
        judged data walks its table through the same sequence of states
        and derives no new candidate keys: the zero-repeat-question
        guarantee depends on this, because two approved rewrites of the
        same value applied in opposite orders can converge to different
        strings and mint a question-worthy pair the first run never
        saw.
        """
        if approved is not None and not approved:
            return 0, 0  # nothing live is approved; the walk would no-op
        # Confirmation-order approved verdicts, snapshotted once: no
        # verdict is recorded during the walk, and rescanning the whole
        # (possibly replayed-from-disk) cache every round would cost
        # O(rounds x cache) on long-lived streams.
        approved_verdicts = [
            (replacement, decision)
            for replacement, decision in self.decisions.items()
            if decision.approved
        ]
        reused = 0
        changed = 0
        # Termination backstop: a legitimate cascade rewrites any cell
        # along an acyclic chain of rules, so it settles within one
        # round per approved verdict (+1 to observe the fixed point).
        # The cache's orientation-aware lookup prevents A<->B rewrite
        # cycles from ever being recorded, but a pathological verdict
        # history (hand-edited log, inconsistent oracle) must degrade
        # to a bounded walk, not an infinite loop.
        max_rounds = len(approved_verdicts) + 1
        for _round in range(max_rounds):
            progress = False
            for replacement, decision in approved_verdicts:
                # Liveness must be orientation-aware, like the cache
                # lookup that found the verdict: a pair re-derived in
                # the opposite orientation after a restart is the same
                # judged variation, and skipping it here would leave it
                # approved-but-never-reapplied (and, being decided, it
                # can never reach the question feed to recover).
                if (
                    replacement not in self.store
                    and replacement.reversed() not in self.store
                ):
                    continue  # no live provenance to rewrite
                resolved = (
                    replacement.reversed()
                    if decision.direction == REVERSE
                    else replacement
                )
                cells = self.store.apply_replacement(resolved)
                self.store.drain_dead()
                if cells:
                    reused += 1
                    changed += len(cells)
                    progress = True
                    if changed_into is not None:
                        changed_into.extend(cells)
            if not progress:
                break
        return reused, changed

    # -- transitive inference ----------------------------------------------

    def infer_transitive(
        self,
        undecided: Optional[List[Replacement]] = None,
        changed_into: Optional[List[CellRef]] = None,
    ) -> Tuple[int, int]:
        """Settle undecided candidates the approved rewrites already
        prove, without spending a question.

        When approved verdicts rewrite A→B and B→C, a derived A→C
        candidate asks nothing the oracle has not answered: the chain
        proves the equivalence and fixes the direction
        (:func:`~repro.stream.scheduler.transitive_direction`).  Each
        proven candidate is applied immediately and recorded in the
        decision log with ``"source": "inferred"``, so restarts replay
        it like any paid verdict and audits can tell machine-settled
        lines from human ones.  Returns ``(verdicts inferred, cells
        changed)``; ``undecided`` seeds the scan when the caller
        already partitioned the live set.
        """
        if undecided is None:
            undecided = self.undecided()
        if not undecided:
            return 0, 0
        forward = approved_rewrites(self.decisions)
        if not forward:
            return 0, 0
        inferred = 0
        changed = 0
        for candidate in undecided:
            if candidate in self.decisions:
                continue  # settled earlier in this very pass
            if (
                candidate not in self.store
                and candidate.reversed() not in self.store
            ):
                continue  # invalidated by an earlier application
            direction = transitive_direction(forward, candidate)
            if direction is None:
                continue
            decision = Decision(True, direction)
            resolved = (
                candidate.reversed()
                if direction == REVERSE
                else candidate
            )
            cells = self.store.apply_replacement(resolved)
            self.store.drain_dead()
            self.decisions.record(candidate, decision, source="inferred")
            # Extend the chain: a freshly settled rewrite can prove the
            # next candidate in the same scan (A→B asked, B→C inferred,
            # then A→C needs both).
            forward.setdefault(resolved.lhs, resolved.rhs)
            inferred += 1
            self.inferred_verdicts += 1
            if cells:
                changed += len(cells)
                if changed_into is not None:
                    changed_into.extend(cells)
        return inferred, changed

    # -- learning ----------------------------------------------------------

    def undecided(
        self,
        partition: Optional[
            Tuple[List[Replacement], int, List[Replacement]]
        ] = None,
    ) -> List[Replacement]:
        """Live candidates the oracle has never been asked about.
        Pass an existing :meth:`partition_live` result to avoid
        re-scanning the live set."""
        if partition is None:
            partition = self.partition_live()
        return partition[2]

    def skipped_rejected(
        self,
        partition: Optional[
            Tuple[List[Replacement], int, List[Replacement]]
        ] = None,
    ) -> int:
        """Live candidates silenced by a cached rejection (saved work).
        Pass an existing :meth:`partition_live` result to avoid
        re-scanning the live set."""
        if partition is None:
            partition = self.partition_live()
        return partition[1]

    def learn(
        self,
        oracle: Oracle,
        budget: int,
        novel: Optional[List[Replacement]] = None,
        pool=None,
        changed_into: Optional[List[CellRef]] = None,
        yield_ranked: bool = False,
        lookahead: int = DEFAULT_LOOKAHEAD,
    ) -> List[StepRecord]:
        """Present up to ``budget`` groups of *novel* candidates.

        Mirrors :meth:`repro.pipeline.standardize.Standardizer.run` —
        same grouping feed, same application and Section 7.1
        maintenance — but the feed only sees undecided candidates, and
        every verdict lands in the decision cache so no future batch
        asks about these members again.  ``novel`` supplies the
        undecided list when the caller already partitioned the live set
        (saves one full scan); it must reflect the *current* store
        state.

        With a :class:`~repro.stream.shards.ShardPool` the grouping
        feed is the shard-merged
        :class:`~repro.stream.shards.ShardedGroupFeed` — the questions
        (content and order), the verdict application, and the cumulative
        log are identical; only the graph building and pivot searching
        happen in parallel.  The oracle itself is never sharded: this
        method is the only place questions are spent either way.

        ``yield_ranked`` wraps whichever feed in a
        :class:`~repro.stream.scheduler.YieldRankedFeed`, spending the
        budget on the highest expected cells-fixed-per-question first
        instead of discovery order.  The wrapper is parent-side and
        pure, so sharded question streams stay byte-identical to
        unsharded ones under it.
        """
        if novel is None:
            novel = self.undecided()
        if not novel or budget <= 0:
            return []
        counts: Optional[Counter] = None
        if self.config.constant_match_terms > 0:
            counts = global_frequencies(self.table.column_values(self.column))
        if pool is not None and self.config.use_structure:
            feed = pool.group_feed(novel, counts)
        else:
            feed = IncrementalGrouper(
                novel, self.vocabulary, self.config, counts
            )
        if yield_ranked:
            feed = YieldRankedFeed(
                feed, self.store, self.table, lookahead=lookahead
            )
        steps: List[StepRecord] = []
        for _ in range(budget):
            group = feed.next_group()
            if group is None:
                break
            decision = oracle.review(group)
            self.questions_asked += 1
            changed = 0
            applied = []
            if decision.approved:
                changed, applied = apply_group_recorded(
                    self.store, group, decision, changed_into=changed_into
                )
                feed.remove_replacements(self.store.drain_dead())
            for member in group.replacements:
                self.decisions.record(member, decision)
            record = StepRecord(
                len(self.log.steps), group, decision, changed, applied
            )
            self.log.steps.append(record)
            steps.append(record)
        return steps
