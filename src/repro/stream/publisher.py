"""Model publication with hot reload for live consumers.

:class:`ModelPublisher` is the bridge between the streaming learner and
the serve layer: each time a batch confirms novel groups, the
cumulative model is published as the next version of its registry name
(atomic write-to-temp + rename, see :mod:`repro.serve.registry`) and
every subscribed :class:`~repro.serve.engine.ApplyEngine` is
hot-reloaded in place — the next batch's fast path immediately speaks
the newest model, with no process restart and no engine reconstruction.

A publisher without a registry still versions in-process: subscribers
reload, nothing lands on disk.  That keeps the streaming loop usable in
tests and notebooks where persistence is noise.

:class:`BundlePublisher` is the multi-column analogue: the streaming
golden-record consolidator publishes one
:class:`~repro.serve.bundle.ModelBundle` per confirming batch, so
every subscribed :class:`~repro.serve.bundle.BundleApplyEngine`
hot-reloads *all* columns atomically — no consumer ever standardizes a
record with a half-upgraded column set.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from ..serve.bundle import BundleRegistry, ModelBundle
from ..serve.engine import ApplyEngine
from ..serve.model import TransformationModel
from ..serve.registry import _VERSION_FILE, ModelRegistry


class ModelPublisher:
    """Publishes model versions and hot-reloads subscribed engines."""

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        name: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.version = 0
        self.last_path: Optional[Path] = None
        self._subscribers: List[ApplyEngine] = []

    def subscribe(self, engine: ApplyEngine) -> None:
        """Hot-reload this engine on every subsequent publish."""
        if engine not in self._subscribers:
            self._subscribers.append(engine)

    def unsubscribe(self, engine: ApplyEngine) -> None:
        """Stop reloading this engine on publish (no-op if absent)."""
        if engine in self._subscribers:
            self._subscribers.remove(engine)

    def publish(
        self, model: TransformationModel
    ) -> Tuple[int, Optional[Path]]:
        """Persist ``model`` as the next version and reload subscribers.

        Returns ``(version, path)``; ``path`` is None for in-process
        publishers.  The registry write happens *before* any engine
        reload, so a crash between the two leaves the durable state
        ahead of the served state — the safe direction (the next reload
        catches up; nothing serves a model that was never persisted).
        """
        if self.registry is not None:
            path = self.registry.save(model, self.name)
            self.last_path = path
            # The version this publisher wrote, read off the returned
            # path — re-listing the directory could pick up a rival
            # publisher's later version.
            match = _VERSION_FILE.match(path.name)
            assert match is not None, f"registry wrote {path.name!r}"
            self.version = int(match.group(1))
        else:
            path = None
            self.version += 1
        for engine in self._subscribers:
            engine.reload(model)
        return self.version, path


class BundlePublisher(ModelPublisher):
    """The multi-column :class:`ModelPublisher`: one publish per batch
    flips *every* column's model together.

    The streaming golden-record consolidator learns N columns per
    batch; publishing them as N independent model versions would let a
    consumer reload half a column set between two of those writes.
    Publishing a :class:`~repro.serve.bundle.ModelBundle` instead makes
    the registry write one atomic artifact, and every subscriber (a
    :class:`~repro.serve.bundle.BundleApplyEngine`, or anything with a
    bundle-shaped ``reload``) flips all columns in a single call.

    The machinery *is* :class:`ModelPublisher` — registries and
    engines are duck-typed on ``save``/``reload``, and bundles expose
    the same ``name``/``save(path)`` surface models do — so this
    subclass only narrows the types: construct it with a
    :class:`~repro.serve.bundle.BundleRegistry` and publish
    :class:`~repro.serve.bundle.ModelBundle` objects.  Durability ordering
    is inherited: the registry write happens before any reload, so a
    crash between the two leaves the durable state ahead of the served
    state — the safe direction.
    """

    def __init__(
        self,
        registry: Optional[BundleRegistry] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(registry, name)

    def publish(
        self, bundle: ModelBundle
    ) -> Tuple[int, Optional[Path]]:
        """Persist ``bundle`` as the next version, reload subscribers.

        Returns ``(version, path)``; ``path`` is None for in-process
        publishers (no registry: versions count, nothing lands on
        disk — the test/notebook mode of :class:`ModelPublisher`).
        """
        return super().publish(bundle)
