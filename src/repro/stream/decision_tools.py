"""Verdict-log tooling (``repro decisions``): compact, diff, audit.

A durable decision log (:mod:`repro.stream.decisions`) is paid-for
human review history, and long-lived streams accumulate artifacts in
it: orientation-duplicate lines from logs written before lookups were
orientation-aware, archived ``*.pre-fresh-N`` generations, and — since
the scheduler landed — machine-``inferred`` verdicts interleaved with
asked ones.  These helpers read the raw JSON-lines file (tolerating
the same crash-torn tail the cache repairs) and answer the operational
questions: what does this log actually decide (:func:`compact_log`),
how do two logs differ (:func:`diff_logs`), and is this log healthy
(:func:`audit_log`)?

Everything here is read-only over the log's own line format; the
authoritative replay semantics stay in
:class:`~repro.stream.decisions.DecisionCache` (first verdict wins, in
either orientation), and these functions reimplement exactly that rule
so their answers match what a resumed stream would do.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..pipeline.oracle import FORWARD, REVERSE

PathLike = Union[str, Path]

#: verdicts with no explicit provenance were asked of a human
DEFAULT_SOURCE = "asked"


@dataclass(frozen=True)
class LogEntry:
    """One verdict line, as written (orientation preserved)."""

    lhs: str
    rhs: str
    approved: bool
    direction: str
    source: str
    line: int  # 1-based line number in the file

    @property
    def pair(self) -> Tuple[str, str]:
        """Orientation-free identity of the judged value pair."""
        return (min(self.lhs, self.rhs), max(self.lhs, self.rhs))

    @property
    def outcome(self) -> Tuple[str, ...]:
        """The orientation-free effect of the verdict: the resolved
        rewrite for approvals, a plain marker for rejections.  Two
        lines with the same pair and the same outcome are duplicates;
        same pair, different outcome is a conflict."""
        if not self.approved:
            return ("rejected",)
        if self.direction == REVERSE:
            return ("rewrite", self.rhs, self.lhs)
        return ("rewrite", self.lhs, self.rhs)

    def to_json(self) -> str:
        row = {
            "lhs": self.lhs,
            "rhs": self.rhs,
            "approved": self.approved,
            "direction": self.direction,
        }
        if self.source != DEFAULT_SOURCE:
            row["source"] = self.source
        return json.dumps(row, ensure_ascii=False)


def read_log(path: PathLike) -> Tuple[List[LogEntry], Optional[str]]:
    """Parse a verdict log into entries plus a tail-damage note.

    Mirrors :meth:`DecisionCache._read`'s tolerance exactly: only the
    *final* line may be malformed (a crash-torn append, reported as
    ``"torn tail"``) or missing its newline (``"unterminated tail"``);
    corruption anywhere else raises ``ValueError`` loudly.
    """
    path = Path(path)
    data = path.read_bytes()
    raw_lines = data.split(b"\n")
    terminated = data.endswith(b"\n")
    entries: List[LogEntry] = []
    for index, raw in enumerate(raw_lines):
        if index == len(raw_lines) - 1 and raw == b"":
            break
        last = index == len(raw_lines) - 1
        line = raw.decode("utf-8", errors="replace").strip()
        try:
            if not line:
                raise ValueError("blank line")
            row = json.loads(line)
            direction = str(row.get("direction", FORWARD))
            if direction not in (FORWARD, REVERSE):
                raise ValueError(f"bad direction {direction!r}")
            entry = LogEntry(
                str(row["lhs"]),
                str(row["rhs"]),
                bool(row["approved"]),
                direction,
                str(row.get("source", DEFAULT_SOURCE)),
                index + 1,
            )
        except (ValueError, KeyError, TypeError) as exc:
            if last:
                return entries, "torn tail"
            raise ValueError(
                f"{path}:{index + 1}: corrupt decision log entry ({exc})"
            ) from exc
        entries.append(entry)
        if last and not terminated:
            return entries, "unterminated tail"
    return entries, None


def compact_log(
    entries: List[LogEntry],
) -> Tuple[List[LogEntry], List[LogEntry]]:
    """Split a log into ``(kept, dropped)`` under replay semantics.

    Keeps the first verdict per value pair **in either orientation** —
    exactly the line set a :class:`DecisionCache` replay would load —
    and drops every later line for an already-decided pair (the
    orientation duplicates legacy logs accumulated, plus any exact
    repeats).  Replaying the compacted log is byte-for-byte equivalent
    to replaying the original.
    """
    kept: List[LogEntry] = []
    dropped: List[LogEntry] = []
    seen: set = set()
    for entry in entries:
        if entry.pair in seen:
            dropped.append(entry)
            continue
        seen.add(entry.pair)
        kept.append(entry)
    return kept, dropped


def _effective(entries: List[LogEntry]) -> Dict[Tuple[str, str], LogEntry]:
    """Pair -> the entry replay would honor (first wins)."""
    effective: Dict[Tuple[str, str], LogEntry] = {}
    for entry in entries:
        effective.setdefault(entry.pair, entry)
    return effective


def diff_logs(
    a_entries: List[LogEntry], b_entries: List[LogEntry]
) -> Dict[str, List]:
    """Compare two logs by their *effective* verdicts.

    Returns ``only_a`` / ``only_b`` (pairs decided in one log only,
    as their effective entries) and ``conflicts`` (pairs both logs
    decide, with different outcomes — ``(a_entry, b_entry)`` tuples).
    Orientation and duplicate lines never count as differences, since
    replay ignores them.
    """
    a_eff = _effective(a_entries)
    b_eff = _effective(b_entries)
    only_a = [a_eff[pair] for pair in sorted(a_eff) if pair not in b_eff]
    only_b = [b_eff[pair] for pair in sorted(b_eff) if pair not in a_eff]
    conflicts = [
        (a_eff[pair], b_eff[pair])
        for pair in sorted(a_eff.keys() & b_eff.keys())
        if a_eff[pair].outcome != b_eff[pair].outcome
    ]
    return {"only_a": only_a, "only_b": only_b, "conflicts": conflicts}


def audit_log(
    entries: List[LogEntry], damage: Optional[str]
) -> Dict[str, object]:
    """Health report over one parsed log.

    * ``entries`` / ``effective`` — raw lines vs pairs replay honors;
    * ``duplicates`` — later lines repeating an already-decided pair
      with the *same* outcome (harmless; compaction drops them);
    * ``conflicts`` — later lines repeating a pair with a *different*
      outcome (first still wins on replay, but the disagreement is
      review history worth human eyes);
    * ``by_source`` / ``approved`` / ``rejected`` — over the effective
      verdicts;
    * ``damage`` — the tail note from :func:`read_log`, if any.
    """
    effective = _effective(entries)
    duplicates: List[LogEntry] = []
    conflicts: List[Tuple[LogEntry, LogEntry]] = []
    for entry in entries:
        first = effective[entry.pair]
        if first.line == entry.line:
            continue
        if entry.outcome == first.outcome:
            duplicates.append(entry)
        else:
            conflicts.append((first, entry))
    by_source: Dict[str, int] = {}
    approved = 0
    for entry in effective.values():
        by_source[entry.source] = by_source.get(entry.source, 0) + 1
        if entry.approved:
            approved += 1
    return {
        "entries": len(entries),
        "effective": len(effective),
        "duplicates": duplicates,
        "conflicts": conflicts,
        "by_source": dict(sorted(by_source.items())),
        "approved": approved,
        "rejected": len(effective) - approved,
        "damage": damage,
    }
