"""Tests for the ASCII chart renderer."""

import pytest

from repro.evaluation.charts import render_series_chart
from repro.evaluation.experiment import SeriesPoint, StandardizationSeries


def series_of(method, points):
    return StandardizationSeries(
        "d", method, [SeriesPoint(c, p, r, m) for c, p, r, m in points]
    )


class TestRenderSeriesChart:
    def test_empty(self):
        assert render_series_chart([], "recall") == "(no series)"

    def test_contains_legend_and_axes(self):
        s = series_of("group", [(0, 1, 0, 0), (10, 1, 0.5, 0.5)])
        chart = render_series_chart([s], "recall")
        assert "o = group" in chart
        assert "#groups=10" in chart
        assert "1.00 |" in chart

    def test_multiple_series_get_distinct_symbols(self):
        a = series_of("group", [(0, 1, 0, 0), (10, 1, 0.9, 0.9)])
        b = series_of("single", [(0, 1, 0, 0), (10, 1, 0.2, 0.2)])
        chart = render_series_chart([a, b], "recall")
        assert "o = group" in chart and "x = single" in chart

    def test_rising_curve_plots_high_and_low(self):
        s = series_of("group", [(0, 1, 0.0, 0), (10, 1, 1.0, 1)])
        chart = render_series_chart([s], "recall", width=20, height=10)
        lines = chart.splitlines()
        top_row = lines[0]
        bottom_rows = "\n".join(lines[-5:])
        assert "o" in top_row  # reaches 1.0 on the right

    def test_values_clamped(self):
        s = series_of("m", [(0, 1, 5.0, 0)])  # out-of-range value
        chart = render_series_chart([s], "recall")
        assert chart  # no exception, clamped into the grid

    def test_deterministic(self):
        s = series_of("group", [(0, 1, 0, 0), (5, 1, 0.5, 0.5)])
        assert render_series_chart([s], "recall") == render_series_chart(
            [s], "recall"
        )
