"""Tests for labeled pair sampling."""

import pytest

from repro.data.table import CellRef, ClusterTable, Record
from repro.evaluation.sampling import (
    all_nonidentical_pairs,
    sample_labeled_pairs,
)


def table_of(*clusters, column="v"):
    table = ClusterTable([column])
    for ci, values in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [Record(f"r{ci}_{i}", {column: v}) for i, v in enumerate(values)],
        )
    return table


class TestAllPairs:
    def test_only_nonidentical_same_cluster(self):
        table = table_of(["a", "a", "b"], ["c"])
        pairs = all_nonidentical_pairs(table, "v")
        assert (CellRef(0, 0, "v"), CellRef(0, 2, "v")) in pairs
        assert (CellRef(0, 0, "v"), CellRef(0, 1, "v")) not in pairs
        assert all(a.cluster == b.cluster for a, b in pairs)

    def test_empty_table(self):
        assert all_nonidentical_pairs(ClusterTable(["v"]), "v") == []


class TestSampling:
    def test_sample_size_respected(self):
        table = table_of(list("abcdefgh"))
        sampled = sample_labeled_pairs(table, "v", lambda a, b: True, 5, seed=0)
        assert len(sampled) == 5

    def test_small_population_returned_whole(self):
        table = table_of(["a", "b"])
        sampled = sample_labeled_pairs(table, "v", lambda a, b: True, 100)
        assert len(sampled) == 1

    def test_labels_applied(self):
        table = table_of(["a", "b", "c"])
        sampled = sample_labeled_pairs(
            table, "v", lambda a, b: a.row == 0, 100
        )
        by_label = {p.is_variant for p in sampled}
        assert by_label == {True, False}

    def test_seed_determinism(self):
        table = table_of(list("abcdefgh"))
        one = sample_labeled_pairs(table, "v", lambda a, b: True, 4, seed=7)
        two = sample_labeled_pairs(table, "v", lambda a, b: True, 4, seed=7)
        assert one == two

    def test_different_seeds_differ(self):
        table = table_of(list("abcdefghijkl"))
        one = sample_labeled_pairs(table, "v", lambda a, b: True, 5, seed=1)
        two = sample_labeled_pairs(table, "v", lambda a, b: True, 5, seed=2)
        assert one != two
