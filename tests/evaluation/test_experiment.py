"""Tests for the experiment harness."""

import pytest

from repro.datagen import address_dataset, journaltitle_dataset
from repro.evaluation.experiment import (
    run_consolidation,
    run_grouping_runtime,
    run_method_series,
    run_trifacta_series,
)
from repro.evaluation.report import format_runtime, format_series, format_table


@pytest.fixture(scope="module")
def tiny_address():
    return address_dataset(scale=0.06)


@pytest.fixture(scope="module")
def tiny_journals():
    return journaltitle_dataset(scale=0.04)


class TestMethodSeries:
    def test_series_starts_at_zero(self, tiny_address):
        series = run_method_series(tiny_address, "group", budget=5, sample_size=50)
        assert series.points[0].confirmed == 0
        assert series.points[0].recall == 0.0

    def test_series_monotone_in_confirmed(self, tiny_address):
        series = run_method_series(tiny_address, "group", budget=5, sample_size=50)
        confirmed = [p.confirmed for p in series.points]
        assert confirmed == sorted(confirmed)

    def test_single_method_runs(self, tiny_address):
        series = run_method_series(tiny_address, "single", budget=5, sample_size=50)
        assert series.method == "single"
        assert len(series.points) >= 1

    def test_unknown_method(self, tiny_address):
        with pytest.raises(ValueError):
            run_method_series(tiny_address, "nope", budget=1)

    def test_oracle_error_rate_accepted(self, tiny_address):
        series = run_method_series(
            tiny_address, "group", budget=3, sample_size=50, oracle_error_rate=0.5
        )
        assert series.points  # runs to completion under a noisy oracle


class TestTrifactaSeries:
    def test_flat_series(self, tiny_address):
        series = run_trifacta_series(tiny_address, budget=5, sample_size=50)
        recalls = {p.recall for p in series.points}
        assert len(recalls) == 1  # rules applied once, constant metrics
        assert len(series.points) == 6  # 0..budget inclusive


class TestRuntime:
    def test_incremental_points_cumulative(self, tiny_journals):
        points = run_grouping_runtime(tiny_journals, "incremental", 5)
        seconds = [p.seconds for p in points]
        assert seconds == sorted(seconds)

    def test_oneshot_upfront_constant(self, tiny_journals):
        points = run_grouping_runtime(tiny_journals, "oneshot", 5)
        assert len({p.seconds for p in points}) == 1

    def test_unknown_variant(self, tiny_journals):
        with pytest.raises(ValueError):
            run_grouping_runtime(tiny_journals, "nope", 5)


class TestConsolidation:
    def test_before_after(self, tiny_journals):
        before, after = run_consolidation(tiny_journals, budget=20)
        assert not before.standardized and after.standardized
        assert 0.0 <= before.precision <= 1.0
        assert after.precision >= before.precision


class TestReport:
    def test_format_table(self):
        text = format_table(("a", "bb"), [(1, 2.5), ("x", None)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in text and "-" in text

    def test_format_series(self, tiny_address):
        series = run_method_series(tiny_address, "group", budget=3, sample_size=50)
        text = format_series([series], "recall", (0, 3))
        assert "#groups" in text and "group" in text

    def test_format_runtime(self, tiny_journals):
        points = run_grouping_runtime(tiny_journals, "incremental", 3)
        text = format_runtime({"incremental": points}, (1, 3))
        assert "incremental" in text
