"""Tests for the evaluation metrics (Table 7)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import Confusion, confusion_from_pairs

counts = st.integers(min_value=0, max_value=500)


class TestConfusion:
    def test_paper_table7_semantics(self):
        """Variant pairs that became identical are TP, etc."""
        pairs = [
            (True, "merged-variant"),
            (True, "missed-variant"),
            (False, "merged-conflict"),
            (False, "kept-conflict"),
        ]
        confusion = confusion_from_pairs(
            pairs, lambda tag: tag.startswith("merged")
        )
        assert (confusion.tp, confusion.fn, confusion.fp, confusion.tn) == (
            1, 1, 1, 1,
        )

    def test_precision_recall(self):
        c = Confusion(tp=8, fn=2, fp=1, tn=9)
        assert c.precision == pytest.approx(8 / 9)
        assert c.recall == pytest.approx(0.8)

    def test_perfect(self):
        c = Confusion(tp=5, fn=0, fp=0, tn=5)
        assert c.precision == 1.0 and c.recall == 1.0 and c.mcc == 1.0

    def test_inverted(self):
        c = Confusion(tp=0, fn=5, fp=5, tn=0)
        assert c.mcc == -1.0

    def test_empty_confusion_degenerate_values(self):
        c = Confusion()
        assert c.precision == 1.0  # nothing replaced, nothing wrong
        assert c.recall == 0.0
        assert c.mcc == 0.0
        assert c.f1 == 0.0

    def test_addition(self):
        total = Confusion(1, 2, 3, 4) + Confusion(10, 20, 30, 40)
        assert total == Confusion(11, 22, 33, 44)

    @settings(max_examples=100, deadline=None)
    @given(counts, counts, counts, counts)
    def test_mcc_bounded(self, tp, fn, fp, tn):
        c = Confusion(tp, fn, fp, tn)
        assert -1.0 <= c.mcc <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(counts, counts, counts, counts)
    def test_rates_bounded(self, tp, fn, fp, tn):
        c = Confusion(tp, fn, fp, tn)
        assert 0.0 <= c.precision <= 1.0
        assert 0.0 <= c.recall <= 1.0
        assert 0.0 <= c.f1 <= 1.0

    def test_mcc_formula_on_known_values(self):
        c = Confusion(tp=6, fn=2, fp=1, tn=11)
        expected = (6 * 11 - 1 * 2) / math.sqrt(7 * 8 * 12 * 13)
        assert c.mcc == pytest.approx(expected)

    def test_total(self):
        assert Confusion(1, 2, 3, 4).total == 10
