"""Property-based tests (hypothesis) for the core invariants."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.core.graph import build_graph
from repro.core.grouping import unsupervised_grouping
from repro.core.incremental import IncrementalGrouper
from repro.core.index import InvertedIndex
from repro.core.pivot import initial_upper_bound, search_pivot
from repro.core.program import Program
from repro.core.replacement import Replacement
from repro.core.structure import structure_signature
from repro.core.terms import MatchContext

SMALL = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

alphabet = string.ascii_letters + string.digits + " .,-"
words = st.text(alphabet=alphabet, min_size=1, max_size=10)


@st.composite
def replacement_pairs(draw):
    lhs = draw(words)
    rhs = draw(words)
    if lhs == rhs:
        rhs = rhs + "x"
    return Replacement(lhs, rhs)


class TestGraphInvariants:
    @SMALL
    @given(words, words)
    def test_every_label_produces_its_edge_substring(self, s, t):
        """The Definition 2 invariant, on arbitrary strings."""
        graph = build_graph(s, t)
        if graph is None:
            return
        ctx = MatchContext(s)
        for (i, j), labels in graph.edges.items():
            expected = t[i - 1 : j - 1]
            for label in labels:
                assert label.produces(ctx, expected)

    @SMALL
    @given(words, words)
    def test_full_span_constant_always_present(self, s, t):
        """Completeness: every graph has its trivial one-edge path."""
        graph = build_graph(s, t)
        if graph is None:
            return
        full = graph.labels(1, graph.last_node)
        assert any(
            getattr(l, "text", None) == t for l in full
        ), "whole-target ConstantStr missing"

    @SMALL
    @given(words, words)
    def test_node_count_is_target_length_plus_one(self, s, t):
        graph = build_graph(s, t)
        if graph is None:
            return
        assert graph.num_nodes == len(t) + 1


class TestPivotInvariants:
    @SMALL
    @given(st.lists(replacement_pairs(), min_size=1, max_size=6, unique=True))
    def test_pivot_members_share_the_path(self, replacements):
        """Every member of a pivot candidate's list must be consistent
        with the pivot program."""
        index = InvertedIndex()
        graphs = {}
        for r in replacements:
            g = build_graph(r.lhs, r.rhs)
            if g is not None:
                index.add_graph(g)
                graphs[g.gid] = r
        for gid, r in graphs.items():
            found = search_pivot(index.graphs[gid], index)
            assert found is not None
            assert gid in found.members
            program = Program(found.path)
            for member_gid in found.members:
                member = graphs[member_gid]
                assert program.produces(member.lhs, member.rhs)

    @SMALL
    @given(st.lists(replacement_pairs(), min_size=1, max_size=6, unique=True))
    def test_upper_bound_dominates_pivot_count(self, replacements):
        """Lemma 6.2 on arbitrary inputs."""
        index = InvertedIndex()
        gids = []
        for r in replacements:
            g = build_graph(r.lhs, r.rhs)
            if g is not None:
                gids.append(index.add_graph(g))
        for gid in gids:
            found = search_pivot(index.graphs[gid], index)
            assert found.count <= initial_upper_bound(index.graphs[gid], index)


class TestGroupingInvariants:
    @SMALL
    @given(st.lists(replacement_pairs(), min_size=0, max_size=8, unique=True))
    def test_grouping_is_a_partition(self, replacements):
        outcome = unsupervised_grouping(replacements)
        scattered = sorted(r for g in outcome.groups for r in g.replacements)
        assert scattered == sorted(set(replacements))

    @SMALL
    @given(st.lists(replacement_pairs(), min_size=0, max_size=8, unique=True))
    def test_group_programs_consistent(self, replacements):
        for group in unsupervised_grouping(replacements).groups:
            for member in group.replacements:
                assert group.program.produces(member.lhs, member.rhs)

    @SMALL
    @given(st.lists(replacement_pairs(), min_size=0, max_size=8, unique=True))
    def test_incremental_is_a_partition_in_descending_order(self, replacements):
        grouper = IncrementalGrouper(replacements)
        groups = list(grouper.groups())
        sizes = [g.size for g in groups]
        assert sizes == sorted(sizes, reverse=True)
        scattered = sorted(r for g in groups for r in g.replacements)
        assert scattered == sorted(set(replacements))

    @SMALL
    @given(st.lists(replacement_pairs(), min_size=0, max_size=6, unique=True))
    def test_incremental_matches_oneshot_partition_sizes(self, replacements):
        oneshot = sorted(
            g.size for g in unsupervised_grouping(replacements).groups
        )
        incremental = sorted(
            g.size for g in IncrementalGrouper(replacements).groups()
        )
        assert oneshot == incremental


class TestStructureInvariants:
    @SMALL
    @given(st.text(alphabet=alphabet, max_size=30))
    def test_signature_deterministic_and_total(self, s):
        sig = structure_signature(s)
        assert sig == structure_signature(s)
        if not s:
            assert sig == ()
        else:
            assert len(sig) >= 1

    @SMALL
    @given(st.text(alphabet=alphabet, min_size=1, max_size=30))
    def test_signature_length_bounded_by_string_length(self, s):
        assert len(structure_signature(s)) <= len(s)

    @SMALL
    @given(
        st.text(alphabet=alphabet, min_size=1, max_size=15),
        st.text(alphabet=alphabet, min_size=1, max_size=15),
    )
    def test_concatenation_compatibility(self, a, b):
        """Signature of a+b starts with signature of a (modulo the
        possibly-merged boundary run)."""
        sig_a = structure_signature(a)
        sig_ab = structure_signature(a + b)
        assert sig_ab[: max(0, len(sig_a) - 1)] == sig_a[: max(0, len(sig_a) - 1)]
