"""Property-based tests for the union-find clustering backbone.

The incremental resolver leans on :class:`UnionFind` for cross-batch
cluster maintenance, so its invariants are load-bearing: the final
partition must not depend on union order, repeating history must be a
no-op, and find must agree with union transitively.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resolution.unionfind import UnionFind

SMALL = settings(max_examples=80, deadline=None)

items = st.integers(min_value=0, max_value=24)
pairs = st.lists(st.tuples(items, items), max_size=40)


def build(union_sequence):
    uf = UnionFind()
    for a, b in union_sequence:
        uf.union(a, b)
    return uf


def canonical_groups(uf):
    return {frozenset(group) for group in uf.groups()}


class TestUnionOrderInvariance:
    @SMALL
    @given(pairs, st.randoms(use_true_random=False))
    def test_shuffled_unions_same_partition(self, sequence, rng):
        shuffled = list(sequence)
        rng.shuffle(shuffled)
        assert canonical_groups(build(sequence)) == canonical_groups(
            build(shuffled)
        )

    @SMALL
    @given(pairs)
    def test_reversed_pairs_same_partition(self, sequence):
        flipped = [(b, a) for a, b in sequence]
        assert canonical_groups(build(sequence)) == canonical_groups(
            build(flipped)
        )


class TestIdempotence:
    @SMALL
    @given(pairs)
    def test_replaying_history_changes_nothing(self, sequence):
        uf = build(sequence)
        before = canonical_groups(uf)
        for a, b in sequence:
            assert uf.union(a, b) is False  # nothing new to merge
        assert canonical_groups(uf) == before

    @SMALL
    @given(items, items)
    def test_second_union_reports_already_merged(self, a, b):
        uf = UnionFind()
        first = uf.union(a, b)
        assert first is (a != b)
        assert uf.union(a, b) is False

    @SMALL
    @given(pairs)
    def test_find_is_stable_under_repetition(self, sequence):
        uf = build(sequence)
        for item in list(uf._parent):
            root = uf.find(item)
            assert uf.find(item) == root
            assert uf.find(root) == root  # roots are fixed points


class TestFindAfterUnion:
    @SMALL
    @given(pairs, items, items)
    def test_union_connects_immediately(self, sequence, a, b):
        uf = build(sequence)
        uf.union(a, b)
        assert uf.connected(a, b)
        assert uf.find(a) == uf.find(b)

    @SMALL
    @given(pairs)
    def test_connectivity_matches_reference_partition(self, sequence):
        """find() agrees with a naive set-merging reference."""
        uf = build(sequence)
        reference = {}
        for a, b in sequence:
            sa = reference.setdefault(a, {a})
            sb = reference.setdefault(b, {b})
            if sa is not sb:
                sa |= sb
                for member in sb:
                    reference[member] = sa
        for a in reference:
            for b in reference:
                assert uf.connected(a, b) == (b in reference[a])

    @SMALL
    @given(pairs)
    def test_groups_partition_all_items(self, sequence):
        uf = build(sequence)
        seen = [item for group in uf.groups() for item in group]
        assert len(seen) == len(set(seen)) == len(uf)
