"""Property-based tests for the truth-discovery substrate.

The incremental golden-record path re-fuses clusters as records arrive
in arbitrary batch orders, so every fusion method must be a pure
function of *what was claimed*, never of arrival order:

* **permutation invariance** — shuffling the records inside clusters
  (and the clusters themselves, for the source-aware methods) never
  changes any fused value;
* **unanimity** — a cluster whose non-empty cells all agree fuses to
  that value;
* **None/empty handling** — empty cells never vote, all-empty clusters
  fuse to ``None``, and the result maps every cluster index.

These pinned the two nondeterminism bugs the suite was written to
catch: ``majority_value`` ranking by ``Counter.most_common`` (ties
broken by insertion order = arrival order) and the iterative fusers
summing floats in dict/set iteration order (source sets!) so a
permuted re-run could flip a near-tie.  Majority now ranks by
``(count desc, value asc)``; Accu and TruthFinder canonicalize claim
order first (:func:`repro.fusion.base.canonical_claims`).
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.table import ClusterTable, Record
from repro.fusion import accu, majority, truthfinder
from repro.fusion.base import canonical_claims, claims_from_table, group_claims
from repro.fusion.majority import majority_value

SMALL = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FUSERS = {
    "majority": majority.fuse,
    "accu": accu.fuse,
    "truthfinder": truthfinder.fuse,
}

#: Tiny alphabet on purpose: collisions (shared values, shared sources,
#: ties) are the interesting cases.
value = st.one_of(
    st.just(""),
    st.text(alphabet="abc", min_size=1, max_size=3),
)
source = st.sampled_from(["s1", "s2", "s3", ""])
cell = st.tuples(value, source)
cluster = st.lists(cell, min_size=1, max_size=5)
tables = st.lists(cluster, min_size=1, max_size=4)
permutation_seeds = st.randoms(use_true_random=False)


def build(clusters):
    table = ClusterTable(["v"])
    for ci, cells in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [
                Record(f"r{ci}_{i}", {"v": v}, src or None)
                for i, (v, src) in enumerate(cells)
            ],
        )
    return table


def permuted(clusters, rng):
    """The same claim multiset, in a different arrival order: records
    shuffle within each cluster and the cluster list itself shuffles
    (cluster indices are identity, so fused values are compared by
    the original index)."""
    order = list(range(len(clusters)))
    rng.shuffle(order)
    out = [None] * len(clusters)
    for ci in order:
        cells = list(clusters[ci])
        rng.shuffle(cells)
        out[ci] = cells
    return out


@pytest.mark.parametrize("name", sorted(FUSERS))
class TestPermutationInvariance:
    @SMALL
    @given(clusters=tables, rng=permutation_seeds)
    def test_record_order_never_changes_fused_values(
        self, name, clusters, rng
    ):
        fuse = FUSERS[name]
        baseline = fuse(build(clusters), "v")
        shuffled = fuse(build(permuted(clusters, rng)), "v")
        assert shuffled == baseline

    @SMALL
    @given(clusters=tables)
    def test_fusing_twice_is_deterministic(self, name, clusters):
        fuse = FUSERS[name]
        table = build(clusters)
        assert fuse(table, "v") == fuse(table, "v")


@pytest.mark.parametrize("name", sorted(FUSERS))
class TestUnanimity:
    @SMALL
    @given(
        clusters=st.lists(
            st.tuples(
                st.text(alphabet="ab", min_size=1, max_size=3),
                st.lists(source, min_size=1, max_size=4),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_all_equal_cells_fuse_to_that_value(self, name, clusters):
        """Unanimity with empty-cell noise: the agreed value wins."""
        fuse = FUSERS[name]
        built = [
            [(v, src) for src in sources] + [("", "s1")] * empties
            for v, sources, empties in clusters
        ]
        golden = fuse(build(built), "v")
        for ci, (v, _sources, _empties) in enumerate(clusters):
            assert golden[ci] == v


@pytest.mark.parametrize("name", sorted(FUSERS))
class TestEmptyCells:
    @SMALL
    @given(clusters=tables)
    def test_every_cluster_is_mapped(self, name, clusters):
        fuse = FUSERS[name]
        golden = fuse(build(clusters), "v")
        assert set(golden) == set(range(len(clusters)))

    @SMALL
    @given(clusters=tables)
    def test_empty_cells_never_vote(self, name, clusters):
        """All-empty clusters fuse to None; otherwise the golden value
        is one of the non-empty cell values (or None on a majority
        tie) — never the empty string."""
        fuse = FUSERS[name]
        golden = fuse(build(clusters), "v")
        for ci, cells in enumerate(clusters):
            values = [v for v, _ in cells if v]
            if not values:
                assert golden[ci] is None
            else:
                assert golden[ci] is None or golden[ci] in values
                assert golden[ci] != ""

    @SMALL
    @given(clusters=tables)
    def test_fused_against_empties_stripped(self, name, clusters):
        """The same table minus its empty cells fuses identically
        (clusters that become empty keep a single "" placeholder so
        indices line up)."""
        fuse = FUSERS[name]
        stripped = [
            [(v, s) for v, s in cells if v] or [("", "s1")]
            for cells in clusters
        ]
        assert fuse(build(stripped), "v") == fuse(build(clusters), "v")


class TestMajorityValue:
    """The cluster-local kernel incremental fusion relies on."""

    @SMALL
    @given(
        values=st.lists(
            st.one_of(st.none(), value), min_size=0, max_size=8
        ),
        rng=permutation_seeds,
    )
    def test_pure_function_of_the_multiset(self, values, rng):
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert majority_value(shuffled) == majority_value(values)

    def test_strict_majority_wins(self):
        assert majority_value(["a", "a", "b"]) == "a"

    def test_tie_is_none_regardless_of_order(self):
        assert majority_value(["a", "b"]) is None
        assert majority_value(["b", "a"]) is None
        # Regression: Counter.most_common breaks ties by insertion
        # order, so ["b", "b", "a", "a", "c"] once depended on which
        # value arrived first.
        assert majority_value(["b", "b", "a", "a", "c"]) is None
        assert majority_value(["a", "a", "b", "b", "c"]) is None

    def test_none_and_empty_never_vote(self):
        assert majority_value([]) is None
        assert majority_value(["", None]) is None
        assert majority_value(["", "a", None]) == "a"
        assert majority_value(["", "", "a", "b", "b"]) == "b"


#: Tables whose every record carries a real source tag: anonymous
#: records get *positional* synthetic tags by design (each votes
#: independently), so the canonical claim structure is only
#: position-free when sources are named.
sourced_cluster = st.lists(
    st.tuples(value, st.sampled_from(["s1", "s2", "s3"])),
    min_size=1,
    max_size=5,
)
sourced_tables = st.lists(sourced_cluster, min_size=1, max_size=4)


class TestCanonicalClaims:
    """The float-sum stabilizer behind Accu/TruthFinder invariance."""

    @SMALL
    @given(clusters=sourced_tables, rng=permutation_seeds)
    def test_canonical_form_is_permutation_stable(self, clusters, rng):
        def canon(cs):
            return canonical_claims(
                group_claims(claims_from_table(build(cs), "v"))
            )

        a = canon(clusters)
        b = canon(permuted(clusters, rng))
        assert list(a) == list(b)
        for obj in a:
            assert list(a[obj]) == list(b[obj])
            assert a[obj] == b[obj]

    def test_sorts_objects_values_and_claimants(self):
        grouped = {
            1: {"b": ["s2", "s1"], "a": ["s3"]},
            0: {"z": ["s9", "s0"]},
        }
        canon = canonical_claims(grouped)
        assert list(canon) == [0, 1]
        assert list(canon[1]) == ["a", "b"]
        assert canon[1]["b"] == ["s1", "s2"]
