"""Property-based tests for replacement-set maintenance (Section 7.1)."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.candidates.generate import generate_candidates
from repro.data.table import ClusterTable, Record

SMALL = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

value = st.text(alphabet=string.ascii_lowercase + " ", min_size=1, max_size=12).map(
    lambda s: " ".join(s.split()) or "x"
)
cluster = st.lists(value, min_size=1, max_size=4)
tables = st.lists(cluster, min_size=1, max_size=3)


def build(clusters):
    table = ClusterTable(["v"])
    for ci, values in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [Record(f"r{ci}_{i}", {"v": v}) for i, v in enumerate(values)],
        )
    return table


class TestStoreInvariants:
    @SMALL
    @given(tables)
    def test_candidates_reference_live_values(self, clusters):
        table = build(clusters)
        store = generate_candidates(table, "v")
        for r in store.replacements():
            for lhs_cell, rhs_cell in store.cell_pairs(r):
                assert table.value(lhs_cell) == r.lhs
                assert table.value(rhs_cell) == r.rhs
                assert lhs_cell.cluster == rhs_cell.cluster

    @SMALL
    @given(tables)
    def test_directions_come_in_pairs(self, clusters):
        table = build(clusters)
        store = generate_candidates(table, "v")
        for r in store.replacements():
            if store.cell_pairs(r):
                assert store.cell_pairs(r.reversed())

    @SMALL
    @given(tables)
    def test_apply_first_replacement_keeps_invariants(self, clusters):
        table = build(clusters)
        store = generate_candidates(table, "v")
        replacements = store.replacements()
        if not replacements:
            return
        store.apply_replacement(replacements[0])
        store.drain_dead()
        # After maintenance, every surviving whole-value entry still
        # references live values (the Section 7.1 contract).
        for r in store.replacements():
            for lhs_cell, rhs_cell in store.cell_pairs(r):
                assert table.value(lhs_cell) == r.lhs
                assert table.value(rhs_cell) == r.rhs

    @SMALL
    @given(tables)
    def test_no_new_keys_after_apply(self, clusters):
        table = build(clusters)
        store = generate_candidates(table, "v")
        before = set(store.replacements())
        for r in list(before)[:2]:
            store.apply_replacement(r)
        assert set(store.replacements()) <= before

    @SMALL
    @given(tables)
    def test_apply_converges(self, clusters):
        """Repeatedly applying candidates terminates with identical
        clusters (no oscillation)."""
        table = build(clusters)
        store = generate_candidates(table, "v")
        for _ in range(50):
            replacements = store.replacements()
            candidates = [r for r in replacements if store.cell_pairs(r)]
            if not candidates:
                break
            store.apply_replacement(sorted(candidates)[0])
        else:
            pytest.fail("replacement application did not converge")
