"""Property-based tests for the alignment substrate."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.damerau import damerau_levenshtein
from repro.align.lcs import aligned_segments, lcs_length, lcs_pairs
from repro.align.tokenize import join, tokens
from repro.resolution.similarity import levenshtein

SMALL = settings(max_examples=60, deadline=None)

token_lists = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4),
    max_size=8,
)


class TestLcsProperties:
    @SMALL
    @given(token_lists, token_lists)
    def test_lcs_is_common_subsequence(self, a, b):
        pairs = lcs_pairs(a, b)
        assert all(a[i] == b[j] for i, j in pairs)
        assert all(
            p1[0] < p2[0] and p1[1] < p2[1]
            for p1, p2 in zip(pairs, pairs[1:])
        )

    @SMALL
    @given(token_lists, token_lists)
    def test_lcs_symmetric_length(self, a, b):
        assert lcs_length(a, b) == lcs_length(b, a)

    @SMALL
    @given(token_lists)
    def test_lcs_with_self_is_identity(self, a):
        assert lcs_length(a, a) == len(a)

    @SMALL
    @given(token_lists, token_lists)
    def test_lcs_bounded(self, a, b):
        assert lcs_length(a, b) <= min(len(a), len(b))

    @SMALL
    @given(token_lists, token_lists)
    def test_segments_are_nonempty_both_sides(self, a, b):
        for seg_a, seg_b in aligned_segments(a, b):
            assert seg_a and seg_b


class TestDamerauProperties:
    @SMALL
    @given(
        st.text(string.ascii_lowercase, max_size=8),
        st.text(string.ascii_lowercase, max_size=8),
    )
    def test_symmetric(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @SMALL
    @given(st.text(string.ascii_lowercase, max_size=10))
    def test_identity(self, a):
        assert damerau_levenshtein(a, a) == 0

    @SMALL
    @given(
        st.text(string.ascii_lowercase, max_size=8),
        st.text(string.ascii_lowercase, max_size=8),
    )
    def test_at_most_levenshtein(self, a, b):
        """Adding the transposition op never increases the distance."""
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @SMALL
    @given(
        st.text(string.ascii_lowercase, max_size=8),
        st.text(string.ascii_lowercase, max_size=8),
    )
    def test_lower_bound_length_difference(self, a, b):
        assert damerau_levenshtein(a, b) >= abs(len(a) - len(b))


class TestTokenizeProperties:
    @SMALL
    @given(token_lists)
    def test_join_tokens_roundtrip(self, parts):
        assert tokens(join(parts)) == parts

    @SMALL
    @given(st.text(alphabet=string.ascii_lowercase + " ", max_size=30))
    def test_tokens_have_no_whitespace(self, value):
        assert all(not any(c.isspace() for c in t) for t in tokens(value))
