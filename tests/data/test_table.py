"""Tests for the cluster-table data model."""

import pytest

from repro.data.table import CellRef, Cluster, ClusterTable, Record


@pytest.fixture
def table():
    t = ClusterTable(["name", "city"])
    t.add_cluster(
        "k1",
        [
            Record("r0", {"name": "a", "city": "x"}),
            Record("r1", {"name": "b", "city": "y"}),
        ],
    )
    t.add_cluster("k2", [Record("r2", {"name": "c", "city": "z"})])
    return t


class TestAccess:
    def test_value_roundtrip(self, table):
        cell = CellRef(0, 1, "name")
        assert table.value(cell) == "b"
        table.set_value(cell, "B")
        assert table.value(cell) == "B"

    def test_cells_order(self, table):
        cells = list(table.cells("name"))
        assert cells == [
            CellRef(0, 0, "name"),
            CellRef(0, 1, "name"),
            CellRef(1, 0, "name"),
        ]

    def test_cluster_values(self, table):
        assert table.cluster_values(0, "name") == ["a", "b"]
        assert table.cluster_values(1, "city") == ["z"]

    def test_column_values(self, table):
        assert table.column_values("city") == ["x", "y", "z"]

    def test_unknown_column_raises_missing_cells_tolerated(self, table):
        """Missing *cells* read as "" (multi-column sources accept
        records with arbitrary keys); unknown *columns* raise — a
        typo'd fusion column must not silently fuse to all-None."""
        import pytest

        with pytest.raises(KeyError, match="unknown column"):
            table.cluster_values(0, "nmae")
        with pytest.raises(KeyError, match="unknown column"):
            table.column_values("nmae")

    def test_cluster_cells(self, table):
        assert table.cluster_cells(1, "name") == [CellRef(1, 0, "name")]


class TestShape:
    def test_counts(self, table):
        assert table.num_clusters == 2
        assert table.num_records == 3

    def test_add_cluster_returns_index(self, table):
        idx = table.add_cluster("k3", [Record("r3", {"name": "d", "city": "w"})])
        assert idx == 2

    def test_repr(self, table):
        assert "3 records" in repr(table)

    def test_cluster_len(self):
        assert len(Cluster("k", [Record("r", {})])) == 1


class TestCopy:
    def test_copy_is_deep_for_values(self, table):
        clone = table.copy()
        clone.set_value(CellRef(0, 0, "name"), "changed")
        assert table.value(CellRef(0, 0, "name")) == "a"

    def test_copy_preserves_structure(self, table):
        clone = table.copy()
        assert clone.num_clusters == table.num_clusters
        assert clone.columns == table.columns
        assert clone.column_values("name") == table.column_values("name")

    def test_copy_preserves_sources(self):
        t = ClusterTable(["v"])
        t.add_cluster("k", [Record("r", {"v": "a"}, source="s9")])
        assert t.copy().clusters[0].records[0].source == "s9"


class TestCellRef:
    def test_ordering(self):
        assert CellRef(0, 0, "a") < CellRef(0, 1, "a") < CellRef(1, 0, "a")

    def test_hashable(self):
        assert len({CellRef(0, 0, "a"), CellRef(0, 0, "a")}) == 1
