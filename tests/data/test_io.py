"""Tests for CSV / JSON table I/O."""

import pytest

from repro.data.io import (
    cluster_records,
    read_csv_clustered,
    read_csv_clusters,
    read_csv_records,
    read_json_clusters,
    read_json_records,
    write_csv_clusters,
    write_golden_csv,
    write_json_clusters,
)
from repro.data.table import CellRef, ClusterTable, Record


@pytest.fixture
def table():
    t = ClusterTable(["title"])
    t.add_cluster(
        "issn1",
        [
            Record("r0", {"title": "Journal of Biology"}, "s1"),
            Record("r1", {"title": "J of Biology"}, "s2"),
        ],
    )
    t.add_cluster("issn2", [Record("r2", {"title": "Physics Letters"}, "s1")])
    return t


class TestCsvRoundTrip:
    def test_clustered_round_trip(self, table, tmp_path):
        path = tmp_path / "clusters.csv"
        write_csv_clusters(table, path)
        loaded = read_csv_clustered(path)
        assert loaded.num_clusters == table.num_clusters
        assert loaded.column_values("title") == table.column_values("title")
        assert loaded.clusters[0].records[0].source == "s1"

    def test_read_flat_records(self, tmp_path):
        path = tmp_path / "flat.csv"
        path.write_text(
            "issn,title,src\n123,Journal of Biology,a\n123,J of Biology,b\n"
            "456,Physics Letters,a\n",
            encoding="utf-8",
        )
        records = read_csv_records(path, source_column="src")
        assert len(records) == 3
        assert records[0].source == "a"
        assert records[0].values == {"issn": "123", "title": "Journal of Biology"}

    def test_read_csv_clusters_by_key(self, tmp_path):
        path = tmp_path / "flat.csv"
        path.write_text(
            "issn,title\n123,Journal of Biology\n123,J of Biology\n"
            "456,Physics Letters\n",
            encoding="utf-8",
        )
        clustered = read_csv_clusters(path, "issn")
        assert clustered.num_clusters == 2
        sizes = sorted(len(c) for c in clustered.clusters)
        assert sizes == [1, 2]

    def test_missing_values_become_empty(self, tmp_path):
        path = tmp_path / "flat.csv"
        path.write_text("k,a,b\n1,x,\n", encoding="utf-8")
        records = read_csv_records(path)
        assert records[0].values["b"] == ""


class TestJsonRoundTrip:
    def test_clustered_round_trip(self, table, tmp_path):
        path = tmp_path / "clusters.json"
        write_json_clusters(table, path)
        loaded = read_json_clusters(path)
        assert loaded.num_clusters == table.num_clusters
        assert loaded.column_values("title") == table.column_values("title")
        assert loaded.clusters[1].key == "issn2"

    def test_read_flat_json(self, tmp_path):
        path = tmp_path / "records.json"
        path.write_text(
            '[{"__rid__": "a", "__source__": "s9", "title": "X"},'
            ' {"title": "Y"}]',
            encoding="utf-8",
        )
        records = read_json_records(path)
        assert records[0].rid == "a" and records[0].source == "s9"
        assert records[1].values == {"title": "Y"}


class TestClusterRecords:
    def test_key_grouping(self):
        records = [
            Record("a", {"k": "1", "v": "x"}),
            Record("b", {"k": "1", "v": "y"}),
            Record("c", {"k": "2", "v": "z"}),
        ]
        table = cluster_records(records, "k")
        assert table.num_clusters == 2


class TestGoldenExport:
    def test_write_golden_csv(self, table, tmp_path):
        path = tmp_path / "golden.csv"
        write_golden_csv({0: "Journal of Biology", 1: None}, table, "title", path)
        content = path.read_text(encoding="utf-8")
        assert "issn1,Journal of Biology" in content
        assert "issn2," in content
