"""Tests for Table 6 statistics."""

import pytest

from repro.data.stats import dataset_stats
from repro.data.table import ClusterTable, Record


def table_of(*clusters, column="v"):
    table = ClusterTable([column])
    for ci, values in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [Record(f"r{ci}_{i}", {column: v}) for i, v in enumerate(values)],
        )
    return table


class TestClusterShape:
    def test_sizes(self):
        stats = dataset_stats(table_of(["a"], ["b", "c", "d"]), "v")
        assert stats.records == 4
        assert stats.clusters == 2
        assert stats.min_cluster_size == 1
        assert stats.max_cluster_size == 3
        assert stats.avg_cluster_size == 2.0

    def test_empty_table(self):
        stats = dataset_stats(ClusterTable(["v"]), "v")
        assert stats.records == 0 and stats.distinct_value_pairs == 0


class TestDistinctPairs:
    def test_identical_values_not_counted(self):
        stats = dataset_stats(table_of(["a", "a", "b"]), "v")
        assert stats.distinct_value_pairs == 1

    def test_pairs_are_unordered(self):
        # (a,b) in one cluster and (b,a) in another count once.
        stats = dataset_stats(table_of(["a", "b"], ["b", "a"]), "v")
        assert stats.distinct_value_pairs == 1

    def test_cross_cluster_pairs_not_counted(self):
        stats = dataset_stats(table_of(["a"], ["b"]), "v")
        assert stats.distinct_value_pairs == 0


class TestLabeledSplit:
    def test_variant_conflict_percentages(self):
        table = table_of(["a", "b"], ["c", "d"])
        # Label the (a,b) pair variant, the (c,d) pair conflict.
        stats = dataset_stats(
            table, "v", lambda x, y: table.value(x) in ("a", "b")
        )
        assert stats.variant_pair_pct == 0.5
        assert stats.conflict_pair_pct == 0.5

    def test_without_labeler_percentages_none(self):
        stats = dataset_stats(table_of(["a", "b"]), "v")
        assert stats.variant_pair_pct is None
        assert stats.conflict_pair_pct is None

    def test_as_row(self):
        stats = dataset_stats(table_of(["a", "b"]), "v", lambda x, y: True)
        row = stats.as_row()
        assert row[0] == 2  # records
        assert row[-2] == 100.0  # variant %
