"""Tests for the Single baseline feed."""

import pytest

from repro.baselines.single import SingleFeed
from repro.candidates.generate import generate_candidates
from repro.core.replacement import Replacement
from repro.data.table import ClusterTable, Record


def store_for(*clusters, column="v"):
    table = ClusterTable([column])
    for ci, values in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [Record(f"r{ci}_{i}", {column: v}) for i, v in enumerate(values)],
        )
    return generate_candidates(table, column)


class TestSingleFeed:
    def test_groups_are_singletons(self):
        feed = SingleFeed(store_for(["a", "b"]))
        group = feed.next_group()
        assert group is not None and group.size == 1

    def test_ranked_by_support(self):
        # "x" <-> "y" appears in two clusters; "p" <-> "q" in one.
        store = store_for(["x", "y"], ["x", "y"], ["p", "q"])
        feed = SingleFeed(store)
        first = feed.next_group()
        assert {first.replacements[0].lhs, first.replacements[0].rhs} == {"x", "y"}

    def test_each_candidate_presented_once(self):
        store = store_for(["a", "b"])
        feed = SingleFeed(store)
        seen = set()
        while True:
            group = feed.next_group()
            if group is None:
                break
            replacement = group.replacements[0]
            assert replacement not in seen
            seen.add(replacement)
        assert len(seen) == 2  # both directions of a <-> b

    def test_exhaustion(self):
        feed = SingleFeed(store_for(["a", "b"]))
        feed.next_group()
        feed.next_group()
        assert feed.next_group() is None

    def test_removed_replacements_skipped(self):
        store = store_for(["a", "b"])
        feed = SingleFeed(store)
        feed.remove_replacements([Replacement("a", "b"), Replacement("b", "a")])
        assert feed.next_group() is None

    def test_deterministic_tie_break(self):
        store = store_for(["a", "b"])
        first = SingleFeed(store).next_group()
        second = SingleFeed(store).next_group()
        assert first.replacements == second.replacements
