"""Tests for the wrangler rule engine and the dataset rule sets."""

import pytest

from repro.baselines.rules import (
    CaseRule,
    address_rules,
    authorlist_rules,
    journaltitle_rules,
    rules_for,
)
from repro.baselines.wrangler import ReplaceRule, RuleSet
from repro.data.table import CellRef, ClusterTable, Record


class TestReplaceRule:
    def test_simple_replace(self):
        assert ReplaceRule(r"\bSt\b", "Street").apply("9th St") == "9th Street"

    def test_backreferences(self):
        rule = ReplaceRule(r"^([a-z]+), ([a-z]+)$", r"\2 \1")
        assert rule.apply("lee, mary") == "mary lee"

    def test_no_match_is_identity(self):
        assert ReplaceRule("zzz", "x").apply("abc") == "abc"

    def test_paper_example_rule(self):
        # The paper's REPLACE with '' on '({any}+)' for annotations.
        rule = ReplaceRule(r" ?\([a-z]+\)", "")
        assert rule.apply("carroll, john (edt)") == "carroll, john"


class TestCaseRule:
    def test_title_cases_full_match_only(self):
        rule = CaseRule(r"[A-Z0-9 ]+", "title")
        assert rule.apply("JOURNAL OF BIOLOGY") == "Journal Of Biology"
        assert rule.apply("Journal of Biology") == "Journal of Biology"

    def test_lower_mode(self):
        assert CaseRule(r"[A-Z]+", "lower").apply("ABC") == "abc"

    def test_upper_mode(self):
        assert CaseRule(r"[a-z]+", "upper").apply("abc") == "ABC"


class TestRuleSet:
    def test_rules_apply_in_order(self):
        rules = RuleSet("t", [ReplaceRule("a", "b"), ReplaceRule("b", "c")])
        assert rules.apply("a") == "c"

    def test_apply_to_table_counts_changes(self):
        table = ClusterTable(["v"])
        table.add_cluster(
            "c0", [Record("r0", {"v": "a x"}), Record("r1", {"v": "q"})]
        )
        rules = RuleSet("t", [ReplaceRule("x", "y")])
        assert rules.apply_to_table(table, "v") == 1
        assert table.value(CellRef(0, 0, "v")) == "a y"

    def test_len(self):
        assert len(address_rules()) >= 30  # "30-40 lines of wrangler code"


class TestAddressRules:
    @pytest.mark.parametrize(
        "dirty,clean",
        [
            ("9 St, 10001 NY", "9th Street, 10001 NY"),
            ("3 E Ave, 10001 NY", "3rd E Avenue, 10001 NY"),
            ("21 Blvd, 10001 New York", "21st Boulevard, 10001 NY"),
            ("Oak Rd, 10001 California", "Oak Road, 10001 CA"),
            ("11 St, 10001 NY", "11th Street, 10001 NY"),
            ("12 St, 10001 NY", "12th Street, 10001 NY"),
        ],
    )
    def test_covered_families(self, dirty, clean):
        assert address_rules().apply(dirty) == clean

    def test_dotted_abbreviation_near_miss(self):
        """The authentic gap: 'St.' leaves a stray period behind."""
        assert address_rules().apply("9th St., 10001 NY") == "9th Street., 10001 NY"

    def test_direction_gap(self):
        """Directions were never handled (recall gap)."""
        assert "East" in address_rules().apply("9th East Avenue, 10001 NY")


class TestAuthorListRules:
    def test_paper_examples(self):
        rules = authorlist_rules()
        assert rules.apply("carroll, john (edt)") == "john carroll"
        assert rules.apply("fox, dan box, jon") == "dan fox, jon box"
        assert rules.apply("knuth, donald") == "donald knuth"

    def test_nickname_gap(self):
        # Regex cannot know bob == robert: untouched.
        assert authorlist_rules().apply("bob fox") == "bob fox"

    def test_missing_separator_gap(self):
        value = "levy, margipowell, philip"
        assert authorlist_rules().apply(value) != "margi levy, philip powell"


class TestJournalTitleRules:
    @pytest.mark.parametrize(
        "dirty,clean",
        [
            ("J of Applied Biology", "Journal of Applied Biology"),
            ("J. of Applied Biology", "Journal of Applied Biology"),
            ("Int Journal of Physics", "International Journal of Physics"),
            ("Annals of Chemistry.", "Annals of Chemistry"),
            ("Archives of Geology & History", "Archives of Geology and History"),
        ],
    )
    def test_covered_families(self, dirty, clean):
        assert journaltitle_rules().apply(dirty) == clean

    def test_all_caps_title_cased(self):
        out = journaltitle_rules().apply("JOURNAL OF APPLIED BIOLOGY")
        assert out == "Journal of Applied Biology"

    def test_field_abbreviation_gap(self):
        # ISO-4 field abbreviations were not covered by the user.
        assert journaltitle_rules().apply("Journal of Appl Biol") != (
            "Journal of Applied Biology"
        )


class TestRulesFor:
    def test_lookup(self):
        assert rules_for("Address").name == "address-wrangler"
        assert rules_for("AuthorList").name == "authorlist-wrangler"
        assert rules_for("JournalTitle").name == "journaltitle-wrangler"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            rules_for("Nope")
