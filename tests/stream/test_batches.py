"""Tests for the record-batch sources."""

import pytest

from repro.data.table import Record
from repro.stream import (
    batches_from_records,
    iter_jsonl_batches,
    read_jsonl_records,
    write_jsonl_records,
)


def records(n):
    return [Record(f"r{i}", {"name": f"value {i}"}, f"src{i % 3}") for i in range(n)]


class TestBatchesFromRecords:
    def test_even_slicing(self):
        batches = list(batches_from_records(records(6), 2))
        assert [len(b) for b in batches] == [2, 2, 2]

    def test_trailing_partial_batch(self):
        batches = list(batches_from_records(records(7), 3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_order_preserved(self):
        flat = [r for b in batches_from_records(records(9), 4) for r in b]
        assert [r.rid for r in flat] == [r.rid for r in records(9)]

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            list(batches_from_records(records(3), 0))


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        original = records(5)
        write_jsonl_records(original, path)
        loaded = read_jsonl_records(path)
        assert [(r.rid, r.values, r.source) for r in loaded] == [
            (r.rid, r.values, r.source) for r in original
        ]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            '{"__rid__": "a", "name": "x"}\n\n{"name": "y"}\n',
            encoding="utf-8",
        )
        loaded = read_jsonl_records(path)
        assert [r.rid for r in loaded] == ["a", "r2"]
        assert loaded[1].values == {"name": "y"}

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('["not", "an", "object"]\n', encoding="utf-8")
        with pytest.raises(ValueError, match="JSON object"):
            read_jsonl_records(path)

    def test_iter_jsonl_batches(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_jsonl_records(records(5), path)
        batches = list(iter_jsonl_batches(path, 2))
        assert [len(b) for b in batches] == [2, 2, 1]
