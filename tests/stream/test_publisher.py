"""Tests for model publication and ApplyEngine hot reload."""

import pytest

from repro.pipeline.oracle import FORWARD
from repro.serve import ApplyEngine, ModelRegistry, TransformationModel
from repro.serve.model import ConfirmedGroup, ConfirmedMember
from repro.core.functions import ConstantStr
from repro.core.program import Program
from repro.stream import ModelPublisher


def make_model(rules, name="m", column="addr"):
    """A model of whole-value groups (constant programs compile to
    exact rules only, which is all these tests exercise)."""
    groups = [
        ConfirmedGroup(
            Program((ConstantStr(rhs),)),
            FORWARD,
            (ConfirmedMember(lhs, rhs, whole=True),),
        )
        for lhs, rhs in rules
    ]
    return TransformationModel(name=name, column=column, groups=groups)


def extend(model, rules):
    """A new model version appending ``rules`` (publish semantics)."""
    extra = make_model(rules, name=model.name, column=model.column)
    return TransformationModel(
        name=model.name,
        column=model.column,
        groups=list(model.groups) + list(extra.groups),
        config=model.config,
        vocabulary=model.vocabulary,
    )


class TestHotReload:
    def test_incremental_reload_extends_without_reconstruction(self):
        v1 = make_model([("Main St", "Main Street")])
        engine = ApplyEngine(v1)
        assert engine.transform("Main St") == "Main Street"
        exact_id = id(engine.exact)
        programs_id = id(engine.programs)
        token_id = id(engine.token_rules)
        rows_before = engine.stats().rows
        exact_hits_before = engine.stats().exact_hits

        v2 = extend(v1, [("9th Ave", "9th Avenue")])
        assert engine.reload(v2) is True, "append-only publish is incremental"

        # Unrelated state survives: same compiled containers, same
        # accumulated stats, old rules still present.
        assert id(engine.exact) == exact_id
        assert id(engine.programs) == programs_id
        assert id(engine.token_rules) == token_id
        assert engine.stats().rows == rows_before
        assert engine.stats().exact_hits == exact_hits_before
        assert engine.exact["Main St"] == "Main Street"
        # ... and the new version is live.
        assert engine.model is v2
        assert engine.transform("9th Ave") == "9th Avenue"

    def test_reload_invalidates_stale_cache(self):
        v1 = make_model([("Main St", "Main Street")])
        engine = ApplyEngine(v1)
        assert engine.transform("9th Ave") == "9th Ave"  # memoized miss
        engine.reload(extend(v1, [("9th Ave", "9th Avenue")]))
        assert engine.transform("9th Ave") == "9th Avenue"

    def test_incompatible_model_full_recompiles_in_place(self):
        v1 = make_model([("Main St", "Main Street")])
        engine = ApplyEngine(v1)
        exact_id = id(engine.exact)
        other = make_model([("Elm Rd", "Elm Road")])  # not an extension
        assert engine.reload(other) is False
        assert id(engine.exact) == exact_id  # cleared + refilled, not replaced
        assert engine.exact == {"Elm Rd": "Elm Road"}
        assert engine.transform("Main St") == "Main St"

    def test_reload_chain_composes_like_cold_compile(self):
        v1 = make_model([("A St", "B St")])
        engine = ApplyEngine(v1)
        engine.reload(extend(v1, [("B St", "C St")]))
        cold = ApplyEngine(extend(v1, [("B St", "C St")]))
        assert engine.exact == cold.exact


class TestPublisher:
    def test_in_process_publisher_versions_and_reloads(self):
        v1 = make_model([("Main St", "Main Street")])
        publisher = ModelPublisher()
        version, path = publisher.publish(v1)
        assert (version, path) == (1, None)

        engine = ApplyEngine(v1)
        publisher.subscribe(engine)
        v2 = extend(v1, [("9th Ave", "9th Avenue")])
        version, path = publisher.publish(v2)
        assert (version, path) == (2, None)
        assert engine.model is v2
        assert engine.transform("9th Ave") == "9th Avenue"

    def test_registry_publisher_bumps_registry_versions(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        publisher = ModelPublisher(registry, "addr")
        v1 = make_model([("Main St", "Main Street")])
        version, path = publisher.publish(v1)
        assert version == 1 and path == registry.path("addr", 1)
        version, path = publisher.publish(
            extend(v1, [("9th Ave", "9th Avenue")])
        )
        assert version == 2
        assert registry.versions("addr") == [1, 2]
        # The published artifact round-trips and extends v1.
        loaded = registry.load("addr")
        assert loaded.groups_confirmed == 2

    def test_registry_publish_hot_reloads_subscriber_incrementally(
        self, tmp_path
    ):
        """The full lifecycle the stream runs: publish through the
        registry, reload the serving engine from the registry artifact,
        all without reconstructing unrelated engine state."""
        registry = ModelRegistry(tmp_path)
        publisher = ModelPublisher(registry, "addr")
        v1 = make_model([("Main St", "Main Street")])
        publisher.publish(v1)
        engine = ApplyEngine(registry.load("addr"))
        exact_id = id(engine.exact)

        publisher.publish(extend(v1, [("9th Ave", "9th Avenue")]))
        reloaded = registry.load("addr")
        assert engine.reload(reloaded) is True
        assert id(engine.exact) == exact_id
        assert engine.transform("9th Ave") == "9th Avenue"
        assert engine.model.groups_confirmed == 2

    def test_unsubscribe_stops_reloads(self):
        v1 = make_model([("Main St", "Main Street")])
        publisher = ModelPublisher()
        engine = ApplyEngine(v1)
        publisher.subscribe(engine)
        publisher.unsubscribe(engine)
        publisher.publish(extend(v1, [("9th Ave", "9th Avenue")]))
        assert engine.model is v1


def make_bundle(rules_by_column, name="golden"):
    from repro.serve.bundle import build_bundle

    return build_bundle(
        {
            column: make_model(rules, name=f"{name}-{column}", column=column)
            for column, rules in rules_by_column.items()
        },
        name,
    )


class TestBundlePublisher:
    """One publish flips every column's model together."""

    def test_in_process_publisher_versions_and_reloads(self):
        from repro.serve.bundle import BundleApplyEngine
        from repro.stream import BundlePublisher

        publisher = BundlePublisher()
        v1 = make_bundle({"addr": [("st", "street")], "title": []})
        engine = BundleApplyEngine(v1)
        publisher.subscribe(engine)
        version, path = publisher.publish(v1)
        assert (version, path) == (1, None)
        v2 = make_bundle(
            {"addr": [("st", "street")], "title": [("intl", "international")]}
        )
        version, path = publisher.publish(v2)
        assert (version, path) == (2, None)
        # The subscriber serves both columns' new rules at once.
        assert engine.apply_record({"addr": "st", "title": "intl"}) == {
            "addr": "street",
            "title": "international",
        }

    def test_registry_publisher_bumps_registry_versions(self, tmp_path):
        from repro.serve.bundle import BundleRegistry
        from repro.stream import BundlePublisher

        registry = BundleRegistry(tmp_path)
        publisher = BundlePublisher(registry, "golden")
        bundle = make_bundle({"addr": [("st", "street")]})
        version, path = publisher.publish(bundle)
        assert version == 1 and path is not None and path.exists()
        version, path = publisher.publish(bundle)
        assert version == 2
        assert registry.versions("golden") == [1, 2]
        assert publisher.last_path == path

    def test_durability_ordering_registry_before_reload(self, tmp_path):
        """The registry write happens before any subscriber reload: a
        crash between the two leaves durable state *ahead* of served
        state, never behind."""
        from repro.serve.bundle import BundleRegistry
        from repro.stream import BundlePublisher

        registry = BundleRegistry(tmp_path)
        publisher = BundlePublisher(registry, "golden")

        class Exploding:
            def reload(self, bundle):
                raise RuntimeError("subscriber died")

        publisher.subscribe(Exploding())
        with pytest.raises(RuntimeError, match="subscriber died"):
            publisher.publish(make_bundle({"addr": [("st", "street")]}))
        assert registry.versions("golden") == [1]

    def test_unsubscribe_stops_reloads(self):
        from repro.serve.bundle import BundleApplyEngine
        from repro.stream import BundlePublisher

        publisher = BundlePublisher()
        v1 = make_bundle({"addr": [("st", "street")]})
        engine = BundleApplyEngine(v1)
        publisher.subscribe(engine)
        publisher.unsubscribe(engine)
        publisher.publish(make_bundle({"addr": [("rd", "road")]}))
        assert engine.bundle is v1
