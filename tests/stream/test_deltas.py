"""The golden delta log: producer durability, consumer tailing, and
the end-to-end contract that cumulative deltas reconstruct the golden
table exactly.
"""

import json

from repro.datagen.stream import golden_stream
from repro.stream import (
    GoldenDeltaLog,
    GoldenDeltaReader,
    GoldenStreamConsolidator,
    golden_ground_truth_oracle_factory,
)

SPEC = dict(
    n_clusters=14,
    mean_cluster_size=5.0,
    conflict_rate=0.0,
    variant_rate=0.6,
    seed=8,
)


class TestDeltaLog:
    def test_appends_are_sequenced_and_empty_deltas_skipped(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        with GoldenDeltaLog(path) as log:
            row = log.append({"k1": {"a": "x"}}, [], batch=0)
            assert row["seq"] == 1
            assert log.append({}, []) is None  # nothing changed
            row = log.append({}, ["k1"], batch=1, bundle_version=3)
            assert row["seq"] == 2 and row["bundle_version"] == 3
        lines = path.read_text().splitlines()
        assert [json.loads(l)["seq"] for l in lines] == [1, 2]

    def test_reopen_resumes_the_sequence(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        with GoldenDeltaLog(path) as log:
            log.append({"k": {"a": "1"}}, [])
        with GoldenDeltaLog(path) as log:
            assert log.append({"k": {"a": "2"}}, [])["seq"] == 2

    def test_torn_tail_is_repaired_on_open(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        with GoldenDeltaLog(path) as log:
            log.append({"k": {"a": "1"}}, [])
        with open(path, "ab") as handle:
            handle.write(b'{"type": "golden_delta", "seq": 2, "cha')
        with GoldenDeltaLog(path) as log:
            # The fragment is gone; numbering resumes after row 1.
            assert log.append({"k": {"a": "2"}}, [])["seq"] == 2
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["seq"] for r in rows] == [1, 2]

    def test_intact_tail_missing_newline_is_terminated(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        with GoldenDeltaLog(path) as log:
            log.append({"k": {"a": "1"}}, [])
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 1)  # eat the newline
        with GoldenDeltaLog(path) as log:
            log.append({"k": {"a": "2"}}, [])
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["seq"] for r in rows] == [1, 2]


class TestDeltaReader:
    def test_missing_file_polls_empty(self, tmp_path):
        reader = GoldenDeltaReader(tmp_path / "absent.jsonl")
        assert reader.poll() == []
        assert not reader.reset

    def test_polls_return_only_new_complete_rows(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        reader = GoldenDeltaReader(path)
        with GoldenDeltaLog(path) as log:
            log.append({"k1": {"a": "1"}}, [])
            assert [r["seq"] for r in reader.poll()] == [1]
            assert reader.poll() == []
            log.append({"k2": {"a": "2"}}, [])
            log.append({"k3": {"a": "3"}}, [])
            assert [r["seq"] for r in reader.poll()] == [2, 3]

    def test_partial_tail_is_deferred_until_complete(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        reader = GoldenDeltaReader(path)
        row = json.dumps({"type": "golden_delta", "seq": 1, "changed": {}})
        with open(path, "w") as handle:
            handle.write(row[:10])  # writer caught mid-append
            handle.flush()
        assert reader.poll() == []
        with open(path, "a") as handle:
            handle.write(row[10:] + "\n")
        assert [r["seq"] for r in reader.poll()] == [1]

    def test_shrunken_file_resets_the_reader(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        reader = GoldenDeltaReader(path)
        with GoldenDeltaLog(path) as log:
            log.append({"k1": {"a": "1"}}, [])
            log.append({"k2": {"a": "2"}}, [])
        assert len(reader.poll()) == 2
        path.unlink()  # archived by a --fresh restart...
        assert reader.poll() == []
        assert reader.reset
        with GoldenDeltaLog(path) as log:  # ...and recreated
            log.append({"k9": {"a": "9"}}, [])
        rows = reader.poll()
        assert [r["seq"] for r in rows] == [1]


def test_cumulative_deltas_reconstruct_the_golden_table(tmp_path):
    """The end-to-end producer contract: folding every published delta
    over an empty table yields exactly the consolidator's final golden
    records — nothing missing, nothing stale, removals honored."""
    stream = golden_stream(batches=4, **SPEC)
    log_path = tmp_path / "golden-deltas.jsonl"
    consolidator = GoldenStreamConsolidator(
        columns=stream.columns,
        oracle_factory=golden_ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        budget_per_batch=100_000,
        key_attribute=stream.key_column,
        use_engine=False,
        persist_decisions=False,
        golden_log=log_path,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)

    assert any(report.golden_changed for report in reports)

    table = {}
    last_seq = 0
    for row in GoldenDeltaReader(log_path).poll():
        assert row["seq"] > last_seq
        last_seq = row["seq"]
        for key in row["removed"]:
            table.pop(key, None)
        for key, values in row["changed"].items():
            table[key] = dict(values)

    assert table == consolidator.golden_by_key()
