"""End-to-end streaming consolidation tests (the acceptance properties).

The anchor test proves the subsystem's contract: streaming N batches
through :class:`StreamConsolidator` converges to the *same* final
replacement state as one-shot consolidation of the concatenated table
under the same (content-determined) oracle, while batches 2..N each ask
strictly fewer oracle questions than either the one-shot run or a full
relearn over the cumulative data at that point.
"""

from collections import Counter

import pytest

from repro.data.table import Record
from repro.datagen.address import address_dataset
from repro.datagen.base import GeneratorSpec
from repro.datagen.stream import dataset_stream
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.resolution.matcher import cluster_by_key
from repro.stream import (
    DriftMonitor,
    StreamConsolidator,
    ground_truth_oracle_factory,
)

SEED = 3
BATCHES = 3
#: Variant-only clusters: oracle decisions are content-determined, so
#: the stream/one-shot comparison is exact (conflicted clusters can tie
#: and break on presentation order in either run mode).
SPEC = GeneratorSpec(
    n_clusters=30,
    mean_cluster_size=5.0,
    conflict_rate=0.0,
    variant_rate=0.8,
    seed=SEED,
)
UNBOUNDED = 100_000


@pytest.fixture(scope="module")
def stream():
    return dataset_stream(
        address_dataset(spec=SPEC, seed=SEED), batches=BATCHES, seed=SEED
    )


def values_by_key(table):
    """cluster key -> multiset of column values (non-empty clusters)."""
    by_key = {}
    for cluster in table.clusters:
        if cluster.records:
            by_key.setdefault(cluster.key, Counter()).update(
                r.values["address"] for r in cluster.records
            )
    return by_key


def one_shot(stream, records=None):
    """Full consolidation of (a prefix of) the stream in one shot."""
    source = records if records is not None else stream.records
    table = cluster_by_key(
        [Record(r.rid, dict(r.values), r.source) for r in source],
        stream.key_column,
    )
    standardizer = Standardizer(table, stream.column)
    oracle = GroundTruthOracle(
        stream.canonical_cells(table), standardizer.store, seed=0
    )
    log = standardizer.run(oracle, UNBOUNDED)
    return table, log


def streaming(stream, **kwargs):
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        key_attribute=stream.key_column,
        budget_per_batch=UNBOUNDED,
        **kwargs,
    )
    reports = consolidator.run(stream.batches)
    return consolidator, reports


class TestStreamingEqualsOneShot:
    """The acceptance property, on the provenance-exact path."""

    @pytest.fixture(scope="class")
    def runs(self, stream):
        table, log = one_shot(stream)
        consolidator, reports = streaming(stream, use_engine=False)
        return stream, table, log, consolidator, reports

    def test_final_values_identical(self, runs):
        stream, table, _log, consolidator, _reports = runs
        assert values_by_key(consolidator.table) == values_by_key(table)

    def test_final_replacement_groups_identical(self, runs):
        """Every record's effective replacement (original -> final
        value) is identical — the confirmed knowledge converged to the
        same standardization even though incremental presentation may
        decompose it into differently-shaped confirmation steps."""
        _stream, table, _log, consolidator, _reports = runs

        def final_by_rid(t):
            return {
                record.rid: record.values["address"]
                for cluster in t.clusters
                for record in cluster.records
            }

        assert final_by_rid(consolidator.table) == final_by_rid(table)

    def test_decisions_consistent_on_shared_members(self, runs):
        _stream, _table, log, consolidator, _reports = runs
        one_shot_decisions = {}
        for step in log.steps:
            for member in step.group.replacements:
                one_shot_decisions.setdefault(
                    member, step.decision.approved
                )
        for member, decision in consolidator.standardizer.decisions.items():
            if member in one_shot_decisions:
                assert decision.approved == one_shot_decisions[member], member

    def test_later_batches_ask_strictly_fewer_questions(self, runs):
        stream, _table, log, _consolidator, reports = runs
        assert all(r.questions_asked > 0 for r in reports)
        for report in reports[1:]:
            # ... than the one-shot over the whole stream,
            assert report.questions_asked < log.groups_confirmed
            # ... and than a full relearn of the cumulative data so far.
            prefix = [
                record
                for batch in stream.batches[: report.index + 1]
                for record in batch
            ]
            _t, prefix_log = one_shot(stream, prefix)
            assert report.questions_asked < prefix_log.groups_confirmed

    def test_reuse_happens(self, runs):
        _stream, _table, _log, consolidator, reports = runs
        assert consolidator.questions_saved > 0
        assert any(
            r.reused_replacements or r.rejected_skips for r in reports[1:]
        )


class TestEngineFastPath:
    def test_engine_explains_and_versions_advance(self, stream):
        consolidator, reports = streaming(stream, use_engine=True)
        # A model exists after batch 1 and explains later arrivals.
        assert consolidator.engine is not None
        assert sum(r.explained_cells for r in reports[1:]) > 0
        versions = [
            r.model_version for r in reports if r.model_version is not None
        ]
        assert versions and versions == sorted(versions)
        assert consolidator.model_version == versions[-1]

    def test_engine_hot_reloads_between_batches(self, stream):
        consolidator, reports = streaming(stream, use_engine=True)
        engine = consolidator.engine
        # The subscribed engine serves the *latest* published model.
        assert engine.model.groups_confirmed == (
            consolidator.build_model().groups_confirmed
        )

    def test_drift_monitor_wiring(self, stream):
        monitor = DriftMonitor(
            window=2, miss_rate_threshold=0.0, min_rows=1
        )
        consolidator, reports = streaming(
            stream, use_engine=True, monitor=monitor
        )
        # Threshold 0 means any unexplained cell triggers: the monitor
        # is exercised and reset along the way.
        assert any(r.drift_triggered for r in reports)

    def test_drift_monitor_works_without_engine(self, stream):
        """The drift signal is candidate-key novelty, not an engine
        statistic — ``--no-engine`` streams must still monitor."""
        monitor = DriftMonitor(
            window=2, miss_rate_threshold=0.0, min_rows=1
        )
        _consolidator, reports = streaming(
            stream, use_engine=False, monitor=monitor
        )
        assert any(r.drift_triggered for r in reports)
        assert monitor.triggered > 0


class TestSameBatchAppendAndMerge:
    """A record appended *and* merge-displaced within one batch must be
    indexed at its final position, with its novelty counted."""

    @staticmethod
    def run_similarity_stream():
        from repro.resolution.similarity import overlap

        def tok_overlap(a, b):
            return overlap(a.split(), b.split())

        consolidator = StreamConsolidator(
            column="name",
            oracle_factory=lambda c: None,  # budget 0: learning unused
            attribute="name",
            similarity_threshold=0.5,
            similarity=tok_overlap,
            budget_per_batch=0,
            use_engine=False,
        )
        consolidator.process_batch(
            [
                Record("n0", {"name": "red green"}),
                Record("m0", {"name": "blue yellow"}),
                Record("m1", {"name": "blue yellow"}),
                Record("m2", {"name": "blue yellow"}),
            ]
        )
        # n1 joins n0's cluster (dirty variant), then the bridge merges
        # that cluster into the larger blue/yellow one — so n1 is
        # appended AND moved within this single batch.
        report = consolidator.process_batch(
            [
                Record("n1", {"name": "red geen"}),
                Record("b0", {"name": "red green blue yellow"}),
            ]
        )
        return consolidator, report

    def test_no_stale_indexed_cells(self):
        consolidator, report = self.run_similarity_stream()
        assert report.merges == 1
        table = consolidator.table
        for cell in consolidator.store._indexed:
            assert cell.row < len(table.clusters[cell.cluster].records), (
                f"stale indexed cell {cell}"
            )

    def test_store_matches_fresh_generation_of_final_table(self):
        from repro.candidates.generate import generate_candidates

        consolidator, _report = self.run_similarity_stream()
        fresh = generate_candidates(consolidator.table.copy(), "name")

        def snapshot(store):
            return (
                {r: frozenset(e) for r, e in store.pair_entries.items() if e},
                {r: frozenset(e) for r, e in store.token_entries.items() if e},
            )

        assert snapshot(consolidator.store) == snapshot(fresh)

    def test_novelty_of_moved_arrivals_counted(self):
        _consolidator, report = self.run_similarity_stream()
        # Both arrivals introduced unseen candidate keys: the dirty
        # variant n1 and the bridge value itself.
        assert report.unmatched_cells == 2


class TestConsolidatorBehaviour:
    def test_caller_records_never_mutated(self, stream):
        before = {
            r.rid: dict(r.values)
            for batch in stream.batches
            for r in batch
        }
        streaming(stream, use_engine=True)
        after = {
            r.rid: dict(r.values)
            for batch in stream.batches
            for r in batch
        }
        assert before == after

    def test_records_missing_the_column_are_tolerated(self):
        """JSON-lines sources permit arbitrary keys; a record without
        the consolidated column must not crash the stream."""
        from repro.pipeline.oracle import ApproveAllOracle

        consolidator = StreamConsolidator(
            column="name",
            oracle_factory=lambda c: ApproveAllOracle(),
            key_attribute="k",
            budget_per_batch=10,
            use_engine=False,
        )
        report = consolidator.process_batch(
            [
                Record("r0", {"k": "1", "name": "Main St"}),
                Record("r1", {"k": "1"}),  # no 'name' at all
                Record("r2", {"k": "1", "name": "Main Street"}),
            ]
        )
        assert report.records == 3
        assert consolidator.table.num_records == 3

    def test_requires_batch_before_state_access(self, stream):
        consolidator = StreamConsolidator(
            column=stream.column,
            oracle_factory=ground_truth_oracle_factory(
                stream.canonical_by_rid
            ),
            key_attribute=stream.key_column,
        )
        with pytest.raises(RuntimeError):
            _ = consolidator.table

    def test_report_describe_mentions_core_counts(self, stream):
        _consolidator, reports = streaming(stream, use_engine=False)
        text = reports[0].describe()
        assert "batch 0" in text and "records" in text and "questions" in text
