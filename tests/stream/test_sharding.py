"""Shard-merge determinism: sharding changes wall-clock, nothing else.

The acceptance property of ``--shards``: the same batch sequence run at
``--shards 1`` and ``--shards N`` publishes **byte-identical** models
while asking **exactly the same** oracle questions — across both the
in-process and the worker-process backends.  The merge logic this
rests on (lazy top-k over independent structure buckets, max-merged by
``(size desc, structure key asc)``) is additionally pinned at the unit
level against the single-process grouper.
"""

import json
import os

import pytest

from repro.candidates.store import derive_token_segments
from repro.config import DEFAULT_CONFIG
from repro.core.incremental import IncrementalGrouper
from repro.core.replacement import Replacement
from repro.data.table import Record
from repro.datagen.address import address_dataset
from repro.datagen.base import GeneratorSpec
from repro.datagen.stream import dataset_stream
from repro.resolution.blocking import BlockIndex, stable_hash
from repro.serve.registry import ModelRegistry
from repro.stream import (
    ShardPool,
    StreamConsolidator,
    ground_truth_oracle_factory,
)

SEED = 11
SPEC = GeneratorSpec(
    n_clusters=24,
    mean_cluster_size=5.0,
    conflict_rate=0.1,
    variant_rate=0.8,
    seed=SEED,
)


@pytest.fixture(scope="module")
def stream():
    return dataset_stream(
        address_dataset(spec=SPEC, seed=SEED), batches=3, seed=SEED
    )


def run_stream(stream, tmp_path, tag, budget=100_000, **kwargs):
    registry = ModelRegistry(tmp_path / f"registry-{tag}")
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        key_attribute=stream.key_column,
        budget_per_batch=budget,
        registry=registry,
        model_name="addr",
        persist_decisions=False,
        **kwargs,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    questions = [r.questions_asked for r in reports]
    latest = registry.path("addr")
    return questions, latest.read_bytes(), consolidator


class TestShardedStreamDeterminism:
    """``--shards 1`` vs ``--shards 4``: byte-identical publications."""

    @pytest.fixture(scope="class")
    def frozen_clock(self):
        import repro.serve.model as model_module

        original = model_module.time.time
        model_module.time.time = lambda: 1234567890.0
        yield
        model_module.time.time = original

    def test_inline_shards_byte_identical(
        self, stream, tmp_path, frozen_clock
    ):
        q1, m1, _ = run_stream(
            stream, tmp_path, "s1", shards=1, use_engine=False
        )
        q4, m4, _ = run_stream(
            stream,
            tmp_path,
            "s4",
            shards=4,
            shard_processes=False,
            use_engine=False,
        )
        assert q1 == q4
        assert m1 == m4

    def test_process_shards_byte_identical(
        self, stream, tmp_path, frozen_clock
    ):
        q1, m1, _ = run_stream(
            stream, tmp_path, "p1", shards=1, use_engine=False
        )
        q4, m4, cons = run_stream(
            stream,
            tmp_path,
            "p4",
            shards=4,
            shard_processes=True,
            use_engine=False,
        )
        assert q1 == q4
        assert m1 == m4

    def test_engine_fast_path_sharded_matches(
        self, stream, tmp_path, frozen_clock
    ):
        q1, m1, _ = run_stream(
            stream, tmp_path, "e1", shards=1, use_engine=True
        )
        q3, m3, _ = run_stream(
            stream,
            tmp_path,
            "e3",
            shards=3,
            shard_processes=False,
            use_engine=True,
        )
        assert q1 == q3
        assert m1 == m3

    def test_budgeted_tie_heavy_stream_byte_identical(
        self, tmp_path, frozen_clock
    ):
        """Regression: programs must not depend on refinement timing.

        Equal-share pivot paths tie-break on search visit order, which
        once depended on whether a structure bucket was preprocessed
        before or after a §7.1 removal — exactly the timing that
        differs between the lazy single grouper and the eager sharded
        feed.  This spec + a tight budget (removals interleaved with
        emission across batches) reproduced groups with identical
        members but different programs before `_Source` learned to
        reset touched sources to an unpreprocessed survivor list.
        """
        spec = GeneratorSpec(
            n_clusters=20,
            mean_cluster_size=5.0,
            conflict_rate=0.1,
            variant_rate=0.8,
            seed=5,
        )
        tie_stream = dataset_stream(
            address_dataset(spec=spec, seed=5), batches=3, seed=5
        )
        q1, m1, _ = run_stream(
            tie_stream, tmp_path, "b1", budget=50, shards=1,
            use_engine=False,
        )
        q4, m4, _ = run_stream(
            tie_stream, tmp_path, "b4", budget=50, shards=4,
            shard_processes=False, use_engine=False,
        )
        assert q1 == q4
        assert m1 == m4

    def test_final_tables_identical(self, stream, tmp_path):
        _, _, c1 = run_stream(
            stream, tmp_path, "t1", shards=1, use_engine=False
        )
        _, _, c4 = run_stream(
            stream,
            tmp_path,
            "t4",
            shards=4,
            shard_processes=False,
            use_engine=False,
        )

        def by_rid(consolidator):
            return {
                r.rid: r.values[stream.column]
                for c in consolidator.table.clusters
                for r in c.records
            }

        assert by_rid(c1) == by_rid(c4)


class TestShardedGroupFeedUnit:
    """The merged feed equals the single grouper, group for group."""

    @staticmethod
    def replacements():
        pairs = [
            ("5 Main St", "5 Main Street"),
            ("12 Oak St", "12 Oak Street"),
            ("9th Ave", "9 Avenue"),
            ("3rd Ave", "3 Avenue"),
            ("NY", "New York"),
            ("LA", "Los Angeles"),
            ("Apt 4", "Apartment 4"),
            ("Apt 9", "Apartment 9"),
            ("Fl 2", "Floor 2"),
        ]
        out = []
        for lhs, rhs in pairs:
            out.append(Replacement(lhs, rhs))
            out.append(Replacement(rhs, lhs))
        return out

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_feed_equals_grouper(self, shards):
        reference = IncrementalGrouper(self.replacements())
        expected = []
        while True:
            group = reference.next_group()
            if group is None:
                break
            expected.append(group)
        with ShardPool(shards, processes=False) as pool:
            feed = pool.group_feed(self.replacements())
            produced = []
            while True:
                group = feed.next_group()
                if group is None:
                    break
                produced.append(group)
        assert [g.replacements for g in produced] == [
            g.replacements for g in expected
        ]
        assert [g.program.canonical() for g in produced] == [
            g.program.canonical() for g in expected
        ]

    def test_feed_remove_replacements_propagates(self):
        replacements = self.replacements()
        with ShardPool(3, processes=False) as pool:
            feed = pool.group_feed(replacements)
            first = feed.next_group()
            assert first is not None
            feed.remove_replacements(list(replacements))
            assert feed.next_group() is None

    def test_process_pool_feed_equals_inline(self):
        replacements = self.replacements()

        def drain(pool):
            feed = pool.group_feed(replacements)
            out = []
            while True:
                group = feed.next_group()
                if group is None:
                    return out
                out.append(group.replacements)

        with ShardPool(2, processes=False) as inline:
            inline_groups = drain(inline)
        with ShardPool(2, processes=True) as procs:
            assert procs.uses_processes
            process_groups = drain(procs)
        assert process_groups == inline_groups


class TestShardPoolKernels:
    def test_derive_segments_matches_inline(self):
        pairs = [
            ("5 Main St", "5 Main Street"),
            ("9th Ave", "9 Avenue"),
            ("Apt 4B", "Apartment 4B"),
        ]
        with ShardPool(2, processes=False) as pool:
            derived = pool.derive_segments(pairs)
        for va, vb in pairs:
            assert derived[(va, vb)] == derive_token_segments(
                va, vb, DEFAULT_CONFIG
            )

    def test_unpicklable_similarity_degrades_to_inline(self):
        closure = lambda a, b: 1.0 if a == b else 0.0  # noqa: E731
        pool = ShardPool(3, similarity=closure, processes=True)
        try:
            assert not pool.uses_processes  # degraded, not broken
        finally:
            pool.close()


class TestSimilarityModeSharded:
    """Sharded matching resolves the same clusters."""

    @staticmethod
    def records():
        values = [
            "red green",
            "red geen",
            "blue yellow",
            "blue yellw",
            "green red",
            "purple orange",
            "orange purple",
            "red green blue",
        ]
        return [
            Record(f"r{i}", {"name": value}) for i, value in enumerate(values)
        ]

    @staticmethod
    def run(shards):
        from repro.resolution.similarity import overlap

        def tok_overlap(a, b):  # closure: forces the inline match path
            return overlap(a.split(), b.split())

        consolidator = StreamConsolidator(
            column="name",
            oracle_factory=lambda c: None,
            attribute="name",
            similarity_threshold=0.5,
            similarity=tok_overlap,
            budget_per_batch=0,
            use_engine=False,
            shards=shards,
            shard_processes=False,
            persist_decisions=False,
        )
        with consolidator:
            batch = TestSimilarityModeSharded.records()
            report = consolidator.process_batch(batch)
            clusters = {
                frozenset(r.rid for r in c.records)
                for c in consolidator.table.clusters
                if c.records
            }
        return clusters, report.pairs_compared

    def test_same_clusters_any_shard_count(self):
        base_clusters, base_pairs = self.run(1)
        for shards in (2, 4):
            clusters, pairs = self.run(shards)
            assert clusters == base_clusters
            assert pairs == base_pairs

    def test_retention_with_shards_mirrors_sequential_rotation(self):
        """Regression: batch matching must simulate block rotation.

        With ``block_retention`` set, the sequential path rotates each
        record into the blocks *before* the next record is matched;
        the batch-parallel path once matched everything against
        pre-rotation state plus an unrotated overlay, so a rotated-out
        member was still compared — a different comparison set, hence
        potentially different clusters, at ``--shards > 1``.
        """
        from repro.resolution.similarity import overlap
        from repro.stream import IncrementalResolver

        def tok_overlap(a, b):
            return overlap(a.split(), b.split())

        def resolve(shards, pool):
            resolver = IncrementalResolver(
                ("name",),
                attribute="name",
                threshold=0.4,
                similarity=tok_overlap,
                shards=shards,
                block_retention=2,
            )
            # All records share the "common" block key; retention=2
            # forces rotation inside the batch itself.
            records = [
                Record(f"r{i}", {"name": f"common tok{i} tok{i % 3}"})
                for i in range(10)
            ]
            reports = [resolver.add_batch(records, pool=pool)]
            reports.append(
                resolver.add_batch(
                    [Record("late", {"name": "common tok9 tok0"})],
                    pool=pool,
                )
            )
            clusters = {
                frozenset(r.rid for r in c.records)
                for c in resolver.table.clusters
                if c.records
            }
            return clusters, [r.pairs_compared for r in reports]

        base = resolve(1, None)
        for shards in (2, 4):
            with ShardPool(
                shards, similarity=tok_overlap, processes=False
            ) as pool:
                assert resolve(shards, pool) == base


class TestBlockIndex:
    def test_stable_hash_is_process_stable(self):
        # CRC-32 of the canonical encoding: fixed expectations would
        # fail on any Python whose str hash salting leaked through.
        assert stable_hash("main") == 0xBF28CD64
        assert stable_hash(("a", "b")) == 0x10A52B86

    def test_partitioning_owns_each_key_once(self):
        index = BlockIndex(shards=4)
        for i in range(40):
            index.add(f"k{i % 8}", f"r{i}")
        assert index.num_keys == 8
        for i in range(8):
            key = f"k{i}"
            assert list(index.members(key)) == [
                f"r{j}" for j in range(40) if j % 8 == i
            ]

    def test_retention_rotates_oldest_out(self):
        index = BlockIndex(shards=2, retention=3)
        evicted = []
        for i in range(6):
            evicted.extend(index.add("k", f"r{i}"))
        assert list(index.members("k")) == ["r3", "r4", "r5"]
        assert evicted == ["r0", "r1", "r2"]
        assert index.rotated_out == 3

    def test_eviction_respects_other_block_references(self):
        index = BlockIndex(shards=1, retention=1)
        index.add("a", "r0")
        index.add("b", "r0")
        gone = index.add("a", "r1")  # r0 rotates out of 'a', stays in 'b'
        assert gone == []
        assert "r0" in index
        assert index.add("b", "r1") == ["r0"]  # now truly gone
        assert "r0" not in index

    def test_compact_trims_existing_blocks(self):
        index = BlockIndex(shards=2)
        for i in range(10):
            index.add("k", f"r{i}")
        gone = index.compact(retention=4)
        assert list(index.members("k")) == ["r6", "r7", "r8", "r9"]
        assert len(gone) == 6

    def test_resolver_block_retention_bounds_frontier(self):
        from repro.resolution.similarity import overlap
        from repro.stream import IncrementalResolver

        def tok_overlap(a, b):
            return overlap(a.split(), b.split())

        resolver = IncrementalResolver(
            ("name",),
            attribute="name",
            threshold=0.9,
            similarity=tok_overlap,
            block_retention=5,
        )
        records = [
            Record(f"r{i}", {"name": f"common token{i}"}) for i in range(30)
        ]
        resolver.add_batch(records)
        assert len(resolver._blocks.members("common")) == 5
        assert resolver.blocks_rotated_out > 0
        # Later arrivals still match recent members via the bounded block.
        result = resolver.add_batch(
            [Record("late", {"name": "common token29"})]
        )
        assert result.pairs_compared > 0
        assert result.new_clusters == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockIndex(shards=0)
        with pytest.raises(ValueError):
            BlockIndex(retention=0)
