"""Shard-merge determinism: sharding changes wall-clock, nothing else.

The acceptance property of ``--shards``: the same batch sequence run at
``--shards 1`` and ``--shards N`` publishes **byte-identical** models
while asking **exactly the same** oracle questions — across both the
in-process and the worker-process backends.  The merge logic this
rests on (lazy top-k over independent structure buckets, max-merged by
``(size desc, structure key asc)``) is additionally pinned at the unit
level against the single-process grouper.
"""

import json
import os

import pytest

from repro.candidates.store import derive_token_segments
from repro.config import DEFAULT_CONFIG
from repro.core.incremental import IncrementalGrouper
from repro.core.replacement import Replacement
from repro.data.table import Record
from repro.datagen.address import address_dataset
from repro.datagen.base import GeneratorSpec
from repro.datagen.stream import dataset_stream
from repro.resolution.blocking import BlockIndex, lsh_keys, stable_hash
from repro.serve.registry import ModelRegistry
from repro.stream import (
    ShardPool,
    StreamConsolidator,
    ground_truth_oracle_factory,
)

SEED = 11
SPEC = GeneratorSpec(
    n_clusters=24,
    mean_cluster_size=5.0,
    conflict_rate=0.1,
    variant_rate=0.8,
    seed=SEED,
)


@pytest.fixture(scope="module")
def stream():
    return dataset_stream(
        address_dataset(spec=SPEC, seed=SEED), batches=3, seed=SEED
    )


def run_stream(stream, tmp_path, tag, budget=100_000, **kwargs):
    registry = ModelRegistry(tmp_path / f"registry-{tag}")
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        key_attribute=stream.key_column,
        budget_per_batch=budget,
        registry=registry,
        model_name="addr",
        persist_decisions=False,
        **kwargs,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    questions = [r.questions_asked for r in reports]
    latest = registry.path("addr")
    return questions, latest.read_bytes(), consolidator


class TestShardedStreamDeterminism:
    """``--shards 1`` vs ``--shards 4``: byte-identical publications."""

    @pytest.fixture(scope="class")
    def frozen_clock(self):
        import repro.serve.model as model_module

        original = model_module.time.time
        model_module.time.time = lambda: 1234567890.0
        yield
        model_module.time.time = original

    def test_inline_shards_byte_identical(
        self, stream, tmp_path, frozen_clock
    ):
        q1, m1, _ = run_stream(
            stream, tmp_path, "s1", shards=1, use_engine=False
        )
        q4, m4, _ = run_stream(
            stream,
            tmp_path,
            "s4",
            shards=4,
            shard_processes=False,
            use_engine=False,
        )
        assert q1 == q4
        assert m1 == m4

    def test_process_shards_byte_identical(
        self, stream, tmp_path, frozen_clock
    ):
        q1, m1, _ = run_stream(
            stream, tmp_path, "p1", shards=1, use_engine=False
        )
        q4, m4, cons = run_stream(
            stream,
            tmp_path,
            "p4",
            shards=4,
            shard_processes=True,
            use_engine=False,
        )
        assert q1 == q4
        assert m1 == m4

    def test_engine_fast_path_sharded_matches(
        self, stream, tmp_path, frozen_clock
    ):
        q1, m1, _ = run_stream(
            stream, tmp_path, "e1", shards=1, use_engine=True
        )
        q3, m3, _ = run_stream(
            stream,
            tmp_path,
            "e3",
            shards=3,
            shard_processes=False,
            use_engine=True,
        )
        assert q1 == q3
        assert m1 == m3

    def test_budgeted_tie_heavy_stream_byte_identical(
        self, tmp_path, frozen_clock
    ):
        """Regression: programs must not depend on refinement timing.

        Equal-share pivot paths tie-break on search visit order, which
        once depended on whether a structure bucket was preprocessed
        before or after a §7.1 removal — exactly the timing that
        differs between the lazy single grouper and the eager sharded
        feed.  This spec + a tight budget (removals interleaved with
        emission across batches) reproduced groups with identical
        members but different programs before `_Source` learned to
        reset touched sources to an unpreprocessed survivor list.
        """
        spec = GeneratorSpec(
            n_clusters=20,
            mean_cluster_size=5.0,
            conflict_rate=0.1,
            variant_rate=0.8,
            seed=5,
        )
        tie_stream = dataset_stream(
            address_dataset(spec=spec, seed=5), batches=3, seed=5
        )
        q1, m1, _ = run_stream(
            tie_stream, tmp_path, "b1", budget=50, shards=1,
            use_engine=False,
        )
        q4, m4, _ = run_stream(
            tie_stream, tmp_path, "b4", budget=50, shards=4,
            shard_processes=False, use_engine=False,
        )
        assert q1 == q4
        assert m1 == m4

    def test_final_tables_identical(self, stream, tmp_path):
        _, _, c1 = run_stream(
            stream, tmp_path, "t1", shards=1, use_engine=False
        )
        _, _, c4 = run_stream(
            stream,
            tmp_path,
            "t4",
            shards=4,
            shard_processes=False,
            use_engine=False,
        )

        def by_rid(consolidator):
            return {
                r.rid: r.values[stream.column]
                for c in consolidator.table.clusters
                for r in c.records
            }

        assert by_rid(c1) == by_rid(c4)


class TestShardedGroupFeedUnit:
    """The merged feed equals the single grouper, group for group."""

    @staticmethod
    def replacements():
        pairs = [
            ("5 Main St", "5 Main Street"),
            ("12 Oak St", "12 Oak Street"),
            ("9th Ave", "9 Avenue"),
            ("3rd Ave", "3 Avenue"),
            ("NY", "New York"),
            ("LA", "Los Angeles"),
            ("Apt 4", "Apartment 4"),
            ("Apt 9", "Apartment 9"),
            ("Fl 2", "Floor 2"),
        ]
        out = []
        for lhs, rhs in pairs:
            out.append(Replacement(lhs, rhs))
            out.append(Replacement(rhs, lhs))
        return out

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_feed_equals_grouper(self, shards):
        reference = IncrementalGrouper(self.replacements())
        expected = []
        while True:
            group = reference.next_group()
            if group is None:
                break
            expected.append(group)
        with ShardPool(shards, processes=False) as pool:
            feed = pool.group_feed(self.replacements())
            produced = []
            while True:
                group = feed.next_group()
                if group is None:
                    break
                produced.append(group)
        assert [g.replacements for g in produced] == [
            g.replacements for g in expected
        ]
        assert [g.program.canonical() for g in produced] == [
            g.program.canonical() for g in expected
        ]

    def test_feed_remove_replacements_propagates(self):
        replacements = self.replacements()
        with ShardPool(3, processes=False) as pool:
            feed = pool.group_feed(replacements)
            first = feed.next_group()
            assert first is not None
            feed.remove_replacements(list(replacements))
            assert feed.next_group() is None

    def test_process_pool_feed_equals_inline(self):
        replacements = self.replacements()

        def drain(pool):
            feed = pool.group_feed(replacements)
            out = []
            while True:
                group = feed.next_group()
                if group is None:
                    return out
                out.append(group.replacements)

        with ShardPool(2, processes=False) as inline:
            inline_groups = drain(inline)
        with ShardPool(2, processes=True) as procs:
            assert procs.uses_processes
            process_groups = drain(procs)
        assert process_groups == inline_groups


class TestShardPoolKernels:
    def test_derive_segments_matches_inline(self):
        pairs = [
            ("5 Main St", "5 Main Street"),
            ("9th Ave", "9 Avenue"),
            ("Apt 4B", "Apartment 4B"),
        ]
        with ShardPool(2, processes=False) as pool:
            derived = pool.derive_segments(pairs)
        for va, vb in pairs:
            assert derived[(va, vb)] == derive_token_segments(
                va, vb, DEFAULT_CONFIG
            )

    def test_unpicklable_similarity_degrades_to_inline(self):
        closure = lambda a, b: 1.0 if a == b else 0.0  # noqa: E731
        pool = ShardPool(3, similarity=closure, processes=True)
        try:
            assert not pool.uses_processes  # degraded, not broken
        finally:
            pool.close()


class TestSimilarityModeSharded:
    """Sharded matching resolves the same clusters."""

    @staticmethod
    def records():
        values = [
            "red green",
            "red geen",
            "blue yellow",
            "blue yellw",
            "green red",
            "purple orange",
            "orange purple",
            "red green blue",
        ]
        return [
            Record(f"r{i}", {"name": value}) for i, value in enumerate(values)
        ]

    @staticmethod
    def run(shards):
        from repro.resolution.similarity import overlap

        def tok_overlap(a, b):  # closure: forces the inline match path
            return overlap(a.split(), b.split())

        consolidator = StreamConsolidator(
            column="name",
            oracle_factory=lambda c: None,
            attribute="name",
            similarity_threshold=0.5,
            similarity=tok_overlap,
            budget_per_batch=0,
            use_engine=False,
            shards=shards,
            shard_processes=False,
            persist_decisions=False,
        )
        with consolidator:
            batch = TestSimilarityModeSharded.records()
            report = consolidator.process_batch(batch)
            clusters = {
                frozenset(r.rid for r in c.records)
                for c in consolidator.table.clusters
                if c.records
            }
        return clusters, report.pairs_compared

    def test_same_clusters_any_shard_count(self):
        base_clusters, base_pairs = self.run(1)
        for shards in (2, 4):
            clusters, pairs = self.run(shards)
            assert clusters == base_clusters
            assert pairs == base_pairs

    def test_retention_with_shards_mirrors_sequential_rotation(self):
        """Regression: batch matching must simulate block rotation.

        With ``block_retention`` set, the sequential path rotates each
        record into the blocks *before* the next record is matched;
        the batch-parallel path once matched everything against
        pre-rotation state plus an unrotated overlay, so a rotated-out
        member was still compared — a different comparison set, hence
        potentially different clusters, at ``--shards > 1``.
        """
        from repro.resolution.similarity import overlap
        from repro.stream import IncrementalResolver

        def tok_overlap(a, b):
            return overlap(a.split(), b.split())

        def resolve(shards, pool):
            resolver = IncrementalResolver(
                ("name",),
                attribute="name",
                threshold=0.4,
                similarity=tok_overlap,
                shards=shards,
                block_retention=2,
            )
            # All records share the "common" block key; retention=2
            # forces rotation inside the batch itself.
            records = [
                Record(f"r{i}", {"name": f"common tok{i} tok{i % 3}"})
                for i in range(10)
            ]
            reports = [resolver.add_batch(records, pool=pool)]
            reports.append(
                resolver.add_batch(
                    [Record("late", {"name": "common tok9 tok0"})],
                    pool=pool,
                )
            )
            clusters = {
                frozenset(r.rid for r in c.records)
                for c in resolver.table.clusters
                if c.records
            }
            return clusters, [r.pairs_compared for r in reports]

        base = resolve(1, None)
        for shards in (2, 4):
            with ShardPool(
                shards, similarity=tok_overlap, processes=False
            ) as pool:
                assert resolve(shards, pool) == base


class TestShardResidentState:
    """Shard workers keep member values resident: per-batch IPC ships
    only new values (plus candidate rids), never the block members
    again — and the replicas stay consistent through warm-up,
    rotation, and compaction."""

    @staticmethod
    def similarity():
        from repro.resolution.similarity import overlap

        def tok_overlap(a, b):  # closure keeps the pool inline
            return overlap(a.split(), b.split())

        return tok_overlap

    @classmethod
    def batch(cls, index, size=20):
        # Every value shares the "common" token, so blocks keep
        # thickening as the stream grows.
        return [
            Record(
                f"b{index}r{i}",
                {"name": f"common tok{i % 5} batch{index} row{i}"},
            )
            for i in range(size)
        ]

    def test_ships_only_new_values_per_batch(self):
        """The acceptance property: after warm-up, per-batch shipped
        values track the batch size while the comparison frontier (and
        so the candidate-pair count) keeps growing."""
        consolidator = StreamConsolidator(
            column="name",
            oracle_factory=lambda c: None,
            attribute="name",
            similarity_threshold=0.9,
            similarity=self.similarity(),
            budget_per_batch=0,
            use_engine=False,
            shards=2,
            shard_processes=False,
            persist_decisions=False,
            max_block_size=10_000,
        )
        with consolidator:
            reports = [
                consolidator.process_batch(self.batch(i)) for i in range(4)
            ]
        values = [r.values_shipped for r in reports]
        pairs = [r.pairs_compared for r in reports]
        # Candidate volume grows with the resident frontier...
        assert pairs[-1] > pairs[0] * 2
        # ... but shipped values stay O(batch): each new value crosses
        # to at most one replica per shard, and resident members are
        # never re-shipped.
        batch_size = reports[0].records
        for report, shipped in zip(reports, values):
            assert 0 < shipped <= batch_size * consolidator.shards
        assert values[-1] == values[0], (
            f"shipped values must not grow with stream length: {values}"
        )
        # Inline backend: nothing is serialized, so actual-IPC bytes
        # stay 0 (the process-backed byte counters are exercised by
        # benchmarks/bench_stream_sharded.py).
        assert all(r.bytes_shipped == 0 for r in reports)

    def test_warm_up_syncs_a_pre_grown_index(self):
        """A pool attached after inline batches must see the same
        resident state (and produce the same clusters) as one attached
        from the start."""
        from repro.stream import IncrementalResolver

        def clusters_of(resolver):
            return {
                frozenset(r.rid for r in c.records)
                for c in resolver.table.clusters
                if c.records
            }

        def build():
            return IncrementalResolver(
                ("name",),
                attribute="name",
                threshold=0.5,
                similarity=self.similarity(),
                shards=3,
                block_retention=4,
                max_block_size=10_000,
            )

        late = build()
        late.add_batch(self.batch(0))  # no pool: replicas are stale
        with ShardPool(
            3, similarity=self.similarity(), processes=False
        ) as pool:
            late_report = late.add_batch(self.batch(1), pool=pool)

        sequential = build()
        sequential.add_batch(self.batch(0))
        seq_report = sequential.add_batch(self.batch(1))

        assert clusters_of(late) == clusters_of(sequential)
        assert late_report.pairs_compared == seq_report.pairs_compared
        # Warm-up re-ships the pre-pool frontier once, on top of the
        # batch's own new values.
        assert late_report.values_shipped > len(late_report.appended)

    def test_delta_buffer_overflow_re_warms_instead_of_growing(
        self, monkeypatch
    ):
        """A long unpooled stretch must not grow the delta buffer with
        stream length: past the cap the resolver drops tracking, and
        the next pooled batch resets + re-warms the replicas — with
        identical clusters and comparison counts to the sequential
        path."""
        import repro.stream.resolver as resolver_module
        from repro.stream import IncrementalResolver

        monkeypatch.setattr(resolver_module, "MAX_BUFFERED_DELTAS", 8)

        def run(pooled_last_batch):
            resolver = IncrementalResolver(
                ("name",),
                attribute="name",
                threshold=0.5,
                similarity=self.similarity(),
                shards=2,
                block_retention=3,
                max_block_size=10_000,
            )
            pool = ShardPool(
                2, similarity=self.similarity(), processes=False
            )
            try:
                # Pooled batch 0 syncs the replicas...
                resolver.add_batch(self.batch(0, size=8), pool=pool)
                # ... then unpooled batches overflow the tiny buffer.
                resolver.add_batch(self.batch(1, size=8))
                resolver.add_batch(self.batch(2, size=8))
                assert len(resolver._resident_deltas) <= 8
                report = resolver.add_batch(
                    self.batch(3, size=8),
                    pool=pool if pooled_last_batch else None,
                )
            finally:
                pool.close()
            clusters = {
                frozenset(r.rid for r in c.records)
                for c in resolver.table.clusters
                if c.records
            }
            return clusters, report.pairs_compared

        assert run(True) == run(False)

    def test_compaction_deltas_reach_the_replicas(self):
        """compact_blocks() between pooled batches must shrink the
        workers' replicas too — the next batch's comparison set equals
        the sequential path's."""
        from repro.stream import IncrementalResolver

        def run(pooled):
            resolver = IncrementalResolver(
                ("name",),
                attribute="name",
                threshold=0.5,
                similarity=self.similarity(),
                shards=2,
                max_block_size=10_000,
            )
            pool = (
                ShardPool(2, similarity=self.similarity(), processes=False)
                if pooled
                else None
            )
            try:
                resolver.add_batch(self.batch(0), pool=pool)
                resolver.compact_blocks(retention=2)
                report = resolver.add_batch(self.batch(1), pool=pool)
            finally:
                if pool is not None:
                    pool.close()
            clusters = {
                frozenset(r.rid for r in c.records)
                for c in resolver.table.clusters
                if c.records
            }
            return clusters, report.pairs_compared

        assert run(True) == run(False)

    def test_process_backend_keeps_replicas_across_batches(self):
        """The worker-process backend must produce the same clusters
        and comparison counts as inline, across several batches (its
        replicas live in another process)."""
        from repro.resolution.matcher import hybrid_similarity
        from repro.stream import IncrementalResolver

        def run(processes):
            resolver = IncrementalResolver(
                ("name",),
                attribute="name",
                threshold=0.7,
                similarity=hybrid_similarity,
                shards=2,
                block_retention=6,
                max_block_size=10_000,
            )
            with ShardPool(
                2, similarity=hybrid_similarity, processes=processes
            ) as pool:
                reports = [
                    resolver.add_batch(self.batch(i, size=12), pool=pool)
                    for i in range(3)
                ]
            clusters = {
                frozenset(r.rid for r in c.records)
                for c in resolver.table.clusters
                if c.records
            }
            return clusters, [r.pairs_compared for r in reports]

        assert run(True) == run(False)


class TestLshModeSharded:
    """MinHash-LSH blocking composes with sharding, rotation, and the
    durable decision log without changing a single published byte."""

    @pytest.fixture(scope="class")
    def lsh_stream(self):
        spec = GeneratorSpec(
            n_clusters=16,
            mean_cluster_size=4.0,
            conflict_rate=0.1,
            variant_rate=0.8,
            seed=17,
        )
        return dataset_stream(
            address_dataset(spec=spec, seed=17), batches=3, seed=17
        )

    @staticmethod
    def run(stream, shards, registry=None, retention=None, budget=100):
        consolidator = StreamConsolidator(
            column=stream.column,
            oracle_factory=ground_truth_oracle_factory(
                stream.canonical_by_rid, seed=0
            ),
            attribute=stream.column,
            similarity_threshold=0.6,
            block_keys=lsh_keys(bands=8, rows=2),
            budget_per_batch=budget,
            use_engine=False,
            shards=shards,
            shard_processes=False,
            registry=registry,
            model_name="lsh-addr",
            persist_decisions=registry is not None,
            block_retention=retention,
        )
        with consolidator:
            reports = consolidator.run(stream.batches)
        questions = [r.questions_asked for r in reports]
        final = {
            r.rid: r.values[stream.column]
            for c in consolidator.table.clusters
            for r in c.records
        }
        groups = [g.to_dict() for g in consolidator.build_model().groups]
        return questions, final, groups

    def test_shards_identical_under_lsh_blocking(self, lsh_stream):
        base = self.run(lsh_stream, shards=1)
        for shards in (2, 4):
            assert self.run(lsh_stream, shards=shards) == base

    def test_shards_identical_under_lsh_with_rotation(self, lsh_stream):
        base = self.run(lsh_stream, shards=1, retention=3)
        assert self.run(lsh_stream, shards=4, retention=3) == base

    def test_restart_resume_keeps_lsh_shard_state_consistent(
        self, lsh_stream, tmp_path
    ):
        """A restarted LSH-mode sharded stream replays the decision log
        against freshly warmed shard replicas: zero repeat questions,
        identical standardization."""
        registry = ModelRegistry(tmp_path / "registry")
        q_first, final_first, _ = self.run(
            lsh_stream, shards=4, registry=registry
        )
        assert sum(q_first) > 0
        q_resume, final_resume, _ = self.run(
            lsh_stream, shards=4, registry=registry
        )
        assert sum(q_resume) == 0
        assert final_resume == final_first


class TestBlockIndex:
    def test_stable_hash_is_process_stable(self):
        # CRC-32 of the canonical encoding: fixed expectations would
        # fail on any Python whose str hash salting leaked through.
        assert stable_hash("main") == 0xBF28CD64
        assert stable_hash(("a", "b")) == 0x10A52B86

    def test_partitioning_owns_each_key_once(self):
        index = BlockIndex(shards=4)
        for i in range(40):
            index.add(f"k{i % 8}", f"r{i}")
        assert index.num_keys == 8
        for i in range(8):
            key = f"k{i}"
            assert list(index.members(key)) == [
                f"r{j}" for j in range(40) if j % 8 == i
            ]

    def test_retention_rotates_oldest_out(self):
        index = BlockIndex(shards=2, retention=3)
        evicted = []
        for i in range(6):
            evicted.extend(index.add("k", f"r{i}"))
        assert list(index.members("k")) == ["r3", "r4", "r5"]
        assert evicted == ["r0", "r1", "r2"]
        assert index.rotated_out == 3

    def test_eviction_respects_other_block_references(self):
        index = BlockIndex(shards=1, retention=1)
        index.add("a", "r0")
        index.add("b", "r0")
        gone = index.add("a", "r1")  # r0 rotates out of 'a', stays in 'b'
        assert gone == []
        assert "r0" in index
        assert index.add("b", "r1") == ["r0"]  # now truly gone
        assert "r0" not in index

    def test_compact_trims_existing_blocks(self):
        index = BlockIndex(shards=2)
        for i in range(10):
            index.add("k", f"r{i}")
        gone = index.compact(retention=4)
        assert list(index.members("k")) == ["r6", "r7", "r8", "r9"]
        assert len(gone) == 6

    def test_add_reports_per_block_evictions(self):
        # evicted_into sees *every* rotation out of this block — also
        # members other blocks still reference (which "gone" hides) —
        # because shard replicas mirror per-block membership.
        index = BlockIndex(shards=1, retention=1)
        index.add("a", "r0")
        index.add("b", "r0")
        evicted = []
        gone = index.add("a", "r1", evicted_into=evicted)
        assert evicted == ["r0"]  # left block 'a'...
        assert gone == []  # ... but survives via block 'b'

    def test_compact_reports_key_member_evictions(self):
        index = BlockIndex(shards=2)
        for i in range(4):
            index.add("k", f"r{i}")
        evicted = []
        index.compact(retention=2, evicted_into=evicted)
        assert evicted == [("k", "r0"), ("k", "r1")]

    def test_resolver_block_retention_bounds_frontier(self):
        from repro.resolution.similarity import overlap
        from repro.stream import IncrementalResolver

        def tok_overlap(a, b):
            return overlap(a.split(), b.split())

        resolver = IncrementalResolver(
            ("name",),
            attribute="name",
            threshold=0.9,
            similarity=tok_overlap,
            block_retention=5,
        )
        records = [
            Record(f"r{i}", {"name": f"common token{i}"}) for i in range(30)
        ]
        resolver.add_batch(records)
        assert len(resolver._blocks.members("common")) == 5
        assert resolver.blocks_rotated_out > 0
        # Later arrivals still match recent members via the bounded block.
        result = resolver.add_batch(
            [Record("late", {"name": "common token29"})]
        )
        assert result.pairs_compared > 0
        assert result.new_clusters == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockIndex(shards=0)
        with pytest.raises(ValueError):
            BlockIndex(retention=0)
