"""Observability under streaming: deterministic totals across shard
counts, recorded rows, drift events, and kill-mid-run torn tails.

The acceptance property mirrors the shard-determinism suite: metric
totals marked *deterministic* (questions, merges, candidate pairs —
the semantic counters) must be **byte-identical** at ``--shards 1``
and ``--shards 4``; wall-clock and IPC instruments are registered
volatile and excluded from that view.
"""

import json

import pytest

from repro.datagen.address import address_dataset
from repro.datagen.base import GeneratorSpec
from repro.datagen.stream import dataset_stream, golden_stream
from repro.obs import JsonlSink, MemorySink, NULL_OBS, Obs
from repro.obs.summary import iter_rows, validate_rows
from repro.stream import (
    DriftMonitor,
    GoldenStreamConsolidator,
    StreamConsolidator,
    golden_ground_truth_oracle_factory,
    ground_truth_oracle_factory,
)

SEED = 11
UNBOUNDED = 100_000

SPEC = GeneratorSpec(
    n_clusters=20,
    mean_cluster_size=5.0,
    conflict_rate=0.1,
    variant_rate=0.8,
    seed=SEED,
)

GOLDEN_SPEC = dict(
    n_clusters=16,
    mean_cluster_size=5.0,
    conflict_rate=0.0,
    variant_rate=0.6,
    seed=8,
)


@pytest.fixture(scope="module")
def stream():
    return dataset_stream(
        address_dataset(spec=SPEC, seed=SEED), batches=3, seed=SEED
    )


@pytest.fixture(scope="module")
def gstream():
    return golden_stream(batches=3, **GOLDEN_SPEC)


def run_single(stream, obs, shards=1, **kwargs):
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        key_attribute=stream.key_column,
        budget_per_batch=UNBOUNDED,
        persist_decisions=False,
        shards=shards,
        obs=obs,
        **kwargs,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    return consolidator, reports


def run_golden(gstream, obs, shards=1, **kwargs):
    consolidator = GoldenStreamConsolidator(
        columns=gstream.columns,
        oracle_factory=golden_ground_truth_oracle_factory(
            gstream.canonical_by_rid, seed=0
        ),
        key_attribute=gstream.key_column,
        budget_per_batch=UNBOUNDED,
        persist_decisions=False,
        shards=shards,
        obs=obs,
        **kwargs,
    )
    with consolidator:
        consolidator.run(gstream.batches)
    return consolidator


def deterministic_bytes(obs):
    """The byte-comparable view of a run's semantic counters."""
    return json.dumps(
        obs.metrics.snapshot(deterministic_only=True), sort_keys=True
    )


class TestShardCountInvariance:
    """Deterministic metric totals are identical at any shard count."""

    def test_single_column_shards_1_vs_4(self, stream):
        obs1, obs4 = Obs(), Obs()
        run_single(stream, obs1, shards=1)
        run_single(stream, obs4, shards=4)
        assert deterministic_bytes(obs1) == deterministic_bytes(obs4)
        # And the view is non-trivial: semantic counters are present.
        snap = obs1.metrics.snapshot(deterministic_only=True)
        assert snap["stream.batches"] == 3
        assert f"stream.questions{{column={stream.column}}}" in snap

    def test_golden_stream_shards_1_vs_4(self, gstream):
        obs1, obs4 = Obs(), Obs()
        run_golden(gstream, obs1, shards=1)
        run_golden(gstream, obs4, shards=4)
        assert deterministic_bytes(obs1) == deterministic_bytes(obs4)
        snap = obs1.metrics.snapshot(deterministic_only=True)
        assert snap["stream.batches"] == 3
        for column in gstream.columns:
            assert f"stream.questions{{column={column}}}" in snap

    def test_volatile_instruments_exist_but_are_excluded(self, stream):
        obs = Obs()
        run_single(stream, obs, shards=2)
        full = obs.metrics.snapshot()
        deterministic = obs.metrics.snapshot(deterministic_only=True)
        volatile = set(full) - set(deterministic)
        # Timings and IPC accounting are recorded...
        assert any(key.startswith("span.seconds") for key in volatile)
        assert any(key.startswith("shards.") for key in volatile)
        # ...but never leak into the byte-comparable view.
        assert not any(key.startswith("span.") for key in deterministic)
        assert not any(key.startswith("shards.") for key in deterministic)


class TestRecordedRows:
    def test_batch_rows_and_snapshot(self, stream):
        obs = Obs(sink=MemorySink())
        consolidator, reports = run_single(stream, obs)
        obs.flush_snapshot()
        rows = obs.sink.rows
        batch_rows = [r for r in rows if r["type"] == "batch"]
        assert len(batch_rows) == len(reports) == 3
        for row in batch_rows:
            assert row["records"] > 0
            assert "learn" in row["stage_seconds"]
        assert rows[-1]["type"] == "snapshot"
        assert validate_rows(rows) == []

    def test_stage_seconds_populated_even_unobserved(self, stream):
        # Satellite fix: per-stage timing rides in BatchReport whether
        # or not anyone attached an Obs.
        consolidator, reports = run_single(stream, NULL_OBS)
        for report in reports:
            stats = report.stats()
            assert set(stats["stage_seconds"]) >= {
                "engine",
                "resolve",
                "derive",
                "learn",
            }
            assert all(s >= 0 for s in stats["stage_seconds"].values())

    def test_trace_rows_form_stage_tree(self, stream):
        obs = Obs(sink=MemorySink(), trace=True)
        run_single(stream, obs)
        spans = [r for r in obs.sink.rows if r["type"] == "span"]
        stages = {r["span"] for r in spans if r["parent"] == "stream.batch"}
        assert {"stream.engine", "stream.resolve", "stream.learn"} <= stages
        batches = [r for r in spans if r["span"] == "stream.batch"]
        assert len(batches) == 3
        assert all(r["depth"] == 0 for r in batches)

    def test_pool_ipc_metrics_recorded(self, stream):
        obs = Obs()
        run_single(stream, obs, shards=2)
        snap = obs.metrics.snapshot()
        # Shard traffic is accounted per op, with compute time riding
        # back on each reply...
        requests = {
            key: value
            for key, value in snap.items()
            if key.startswith("shards.requests{op=")
        }
        assert requests and sum(requests.values()) > 0
        assert any(
            key.startswith("shards.op_seconds{op=") for key in snap
        )
        assert {
            f"shards.busy_seconds{{shard={i}}}" for i in range(2)
        } <= set(snap)
        # ...and the shipping gauges exist (zero here: key-blocked runs
        # never exercise the similarity-resolve data plane).
        assert snap["shards.values_shipped"] >= 0
        assert snap["shards.bytes_shipped"] >= 0


class TestDriftEvents:
    def test_relearn_trigger_flows_through_event_stream(self, stream):
        monitor = DriftMonitor(
            window=2, miss_rate_threshold=0.05, min_rows=1
        )
        obs = Obs(sink=MemorySink())
        # The consolidator binds its obs onto an unbound monitor.
        run_single(stream, obs, monitor=monitor)
        assert monitor.obs is obs
        assert monitor.triggered > 0
        events = [
            r
            for r in obs.sink.rows
            if r["type"] == "event" and r["event"] == "drift"
        ]
        assert len(events) == monitor.triggered
        for event in events:
            assert 0.0 <= event["miss_rate"] <= 1.0
            assert "batch" in event
        snap = obs.metrics.snapshot()
        assert snap["drift.relearns"] == monitor.triggered


class TestTornTail:
    def test_kill_mid_run_tail_is_recoverable(self, stream, tmp_path):
        path = tmp_path / "metrics.jsonl"
        obs = Obs(sink=JsonlSink(path))
        run_single(stream, obs)
        obs.flush_snapshot()
        obs.close()
        complete = list(iter_rows(path))
        # A kill mid-append leaves a torn fragment of the next row.
        with open(path, "ab") as handle:
            handle.write(b'{"type": "batch", "batch": 99, "rec')
        rows = list(iter_rows(path))
        assert rows == complete  # reader drops exactly the torn tail
        # A restarted sink repairs the file before appending.
        resumed = Obs(sink=JsonlSink(path))
        resumed.emit({"type": "meta", "command": "stream"})
        resumed.close()
        rows = list(iter_rows(path))
        assert rows[:-1] == complete
        assert rows[-1] == {"type": "meta", "command": "stream"}
        assert validate_rows(rows) == []
