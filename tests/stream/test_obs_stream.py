"""Observability under streaming: deterministic totals across shard
counts, recorded rows, drift events, and kill-mid-run torn tails.

The acceptance property mirrors the shard-determinism suite: metric
totals marked *deterministic* (questions, merges, candidate pairs —
the semantic counters) must be **byte-identical** at ``--shards 1``
and ``--shards 4``; wall-clock and IPC instruments are registered
volatile and excluded from that view.
"""

import json

import pytest

from repro.datagen.address import address_dataset
from repro.datagen.base import GeneratorSpec
from repro.datagen.stream import dataset_stream, golden_stream
from repro.obs import JsonlSink, MemorySink, NULL_OBS, Obs
from repro.obs.summary import (
    forest_shape,
    format_trace_tree,
    iter_rows,
    validate_rows,
)
from repro.stream import (
    DriftMonitor,
    GoldenStreamConsolidator,
    StreamConsolidator,
    golden_ground_truth_oracle_factory,
    ground_truth_oracle_factory,
)

SEED = 11
UNBOUNDED = 100_000

SPEC = GeneratorSpec(
    n_clusters=20,
    mean_cluster_size=5.0,
    conflict_rate=0.1,
    variant_rate=0.8,
    seed=SEED,
)

GOLDEN_SPEC = dict(
    n_clusters=16,
    mean_cluster_size=5.0,
    conflict_rate=0.0,
    variant_rate=0.6,
    seed=8,
)


@pytest.fixture(scope="module")
def stream():
    return dataset_stream(
        address_dataset(spec=SPEC, seed=SEED), batches=3, seed=SEED
    )


@pytest.fixture(scope="module")
def gstream():
    return golden_stream(batches=3, **GOLDEN_SPEC)


def run_single(stream, obs, shards=1, **kwargs):
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        key_attribute=stream.key_column,
        budget_per_batch=UNBOUNDED,
        persist_decisions=False,
        shards=shards,
        obs=obs,
        **kwargs,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    return consolidator, reports


def run_golden(gstream, obs, shards=1, **kwargs):
    consolidator = GoldenStreamConsolidator(
        columns=gstream.columns,
        oracle_factory=golden_ground_truth_oracle_factory(
            gstream.canonical_by_rid, seed=0
        ),
        key_attribute=gstream.key_column,
        budget_per_batch=UNBOUNDED,
        persist_decisions=False,
        shards=shards,
        obs=obs,
        **kwargs,
    )
    with consolidator:
        consolidator.run(gstream.batches)
    return consolidator


def deterministic_bytes(obs):
    """The byte-comparable view of a run's semantic counters."""
    return json.dumps(
        obs.metrics.snapshot(deterministic_only=True), sort_keys=True
    )


class TestShardCountInvariance:
    """Deterministic metric totals are identical at any shard count."""

    def test_single_column_shards_1_vs_4(self, stream):
        obs1, obs4 = Obs(), Obs()
        run_single(stream, obs1, shards=1)
        run_single(stream, obs4, shards=4)
        assert deterministic_bytes(obs1) == deterministic_bytes(obs4)
        # And the view is non-trivial: semantic counters are present.
        snap = obs1.metrics.snapshot(deterministic_only=True)
        assert snap["stream.batches"] == 3
        assert f"stream.questions{{column={stream.column}}}" in snap

    def test_golden_stream_shards_1_vs_4(self, gstream):
        obs1, obs4 = Obs(), Obs()
        run_golden(gstream, obs1, shards=1)
        run_golden(gstream, obs4, shards=4)
        assert deterministic_bytes(obs1) == deterministic_bytes(obs4)
        snap = obs1.metrics.snapshot(deterministic_only=True)
        assert snap["stream.batches"] == 3
        for column in gstream.columns:
            assert f"stream.questions{{column={column}}}" in snap

    def test_volatile_instruments_exist_but_are_excluded(self, stream):
        obs = Obs()
        run_single(stream, obs, shards=2)
        full = obs.metrics.snapshot()
        deterministic = obs.metrics.snapshot(deterministic_only=True)
        volatile = set(full) - set(deterministic)
        # Timings and IPC accounting are recorded...
        assert any(key.startswith("span.seconds") for key in volatile)
        assert any(key.startswith("shards.") for key in volatile)
        # ...but never leak into the byte-comparable view.
        assert not any(key.startswith("span.") for key in deterministic)
        assert not any(key.startswith("shards.") for key in deterministic)


class TestRecordedRows:
    def test_batch_rows_and_snapshot(self, stream):
        obs = Obs(sink=MemorySink())
        consolidator, reports = run_single(stream, obs)
        obs.flush_snapshot()
        rows = obs.sink.rows
        batch_rows = [r for r in rows if r["type"] == "batch"]
        assert len(batch_rows) == len(reports) == 3
        for row in batch_rows:
            assert row["records"] > 0
            assert "learn" in row["stage_seconds"]
        assert rows[-1]["type"] == "snapshot"
        assert validate_rows(rows) == []

    def test_stage_seconds_populated_even_unobserved(self, stream):
        # Satellite fix: per-stage timing rides in BatchReport whether
        # or not anyone attached an Obs.
        consolidator, reports = run_single(stream, NULL_OBS)
        for report in reports:
            stats = report.stats()
            assert set(stats["stage_seconds"]) >= {
                "engine",
                "resolve",
                "derive",
                "learn",
            }
            assert all(s >= 0 for s in stats["stage_seconds"].values())

    def test_trace_rows_form_stage_tree(self, stream):
        obs = Obs(sink=MemorySink(), trace=True)
        run_single(stream, obs)
        spans = [r for r in obs.sink.rows if r["type"] == "span"]
        stages = {r["span"] for r in spans if r["parent"] == "stream.batch"}
        assert {"stream.engine", "stream.resolve", "stream.learn"} <= stages
        batches = [r for r in spans if r["span"] == "stream.batch"]
        assert len(batches) == 3
        assert all(r["depth"] == 0 for r in batches)

    def test_pool_ipc_metrics_recorded(self, stream):
        obs = Obs()
        run_single(stream, obs, shards=2)
        snap = obs.metrics.snapshot()
        # Shard traffic is accounted per op, with compute time riding
        # back on each reply...
        requests = {
            key: value
            for key, value in snap.items()
            if key.startswith("shards.requests{op=")
        }
        assert requests and sum(requests.values()) > 0
        assert any(
            key.startswith("shards.op_seconds{op=") for key in snap
        )
        assert {
            f"shards.busy_seconds{{shard={i}}}" for i in range(2)
        } <= set(snap)
        # ...and the shipping gauges exist (zero here: key-blocked runs
        # never exercise the similarity-resolve data plane).
        assert snap["shards.values_shipped"] >= 0
        assert snap["shards.bytes_shipped"] >= 0


class TestDriftEvents:
    def test_relearn_trigger_flows_through_event_stream(self, stream):
        monitor = DriftMonitor(
            window=2, miss_rate_threshold=0.05, min_rows=1
        )
        obs = Obs(sink=MemorySink())
        # The consolidator binds its obs onto an unbound monitor.
        run_single(stream, obs, monitor=monitor)
        assert monitor.obs is obs
        assert monitor.triggered > 0
        events = [
            r
            for r in obs.sink.rows
            if r["type"] == "event" and r["event"] == "drift"
        ]
        assert len(events) == monitor.triggered
        for event in events:
            assert 0.0 <= event["miss_rate"] <= 1.0
            assert "batch" in event
        snap = obs.metrics.snapshot()
        assert snap["drift.relearns"] == monitor.triggered


class TestTornTail:
    def test_kill_mid_run_tail_is_recoverable(self, stream, tmp_path):
        path = tmp_path / "metrics.jsonl"
        obs = Obs(sink=JsonlSink(path))
        run_single(stream, obs)
        obs.flush_snapshot()
        obs.close()
        complete = list(iter_rows(path))
        # A kill mid-append leaves a torn fragment of the next row.
        with open(path, "ab") as handle:
            handle.write(b'{"type": "batch", "batch": 99, "rec')
        rows = list(iter_rows(path))
        assert rows == complete  # reader drops exactly the torn tail
        # A restarted sink repairs the file before appending.
        resumed = Obs(sink=JsonlSink(path))
        resumed.emit({"type": "meta", "command": "stream"})
        resumed.close()
        rows = list(iter_rows(path))
        assert rows[:-1] == complete
        assert rows[-1] == {"type": "meta", "command": "stream"}
        assert validate_rows(rows) == []


def run_similarity(stream, obs, shards=1, **kwargs):
    """A similarity-blocked run: resolves arrivals by blocked matching
    on the consolidated column, which is the mode that exercises the
    shard pool's resolve/derive data plane (key-blocked runs resolve
    by entity key and never ask the shards to match anything)."""
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        attribute=stream.column,
        budget_per_batch=UNBOUNDED,
        persist_decisions=False,
        shards=shards,
        obs=obs,
        **kwargs,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    return consolidator, reports


class TestTracePropagation:
    """Cross-process tracing: worker spans ship back with replies and
    re-attach under the requesting parent, forming one merged forest
    whose (shard-free) shape is identical at any shard count."""

    @staticmethod
    def span_rows(obs):
        return [r for r in obs.sink.rows if r["type"] == "span"]

    def test_shard_spans_merge_under_parent(self, stream):
        obs = Obs(sink=MemorySink(), trace=True)
        run_similarity(stream, obs, shards=4)
        assert validate_rows(obs.sink.rows) == []
        rows = self.span_rows(obs)
        shard_rows = [r for r in rows if r["span"].startswith("shard.")]
        assert shard_rows, "similarity run produced no shard spans"
        # One merged trace: a single trace id across parent and workers.
        assert len({r["trace"] for r in rows}) == 1
        # Every shard span links to a real parent in the same recording.
        by_id = {r["id"]: r for r in rows}
        assert len(by_id) == len(rows)  # ids are unique
        for row in shard_rows:
            assert row["parent_id"] in by_id
        resolves = [r for r in shard_rows if r["span"] == "shard.resolve"]
        assert resolves
        for row in resolves:
            assert by_id[row["parent_id"]]["span"] == "stream.resolve"
            assert "shard" in row["tags"]
        # shard.match (when comparisons happened) nests in shard.resolve.
        for row in shard_rows:
            if row["span"] == "shard.match":
                assert by_id[row["parent_id"]]["span"] == "shard.resolve"
                assert row["tags"]["comparisons"] > 0
        # The per-shard attribution covers more than one worker.
        assert len({r["tags"]["shard"] for r in resolves}) > 1

    def test_forest_shape_identical_shards_1_vs_4(self, stream):
        obs1 = Obs(sink=MemorySink(), trace=True)
        obs4 = Obs(sink=MemorySink(), trace=True)
        run_similarity(stream, obs1, shards=1)
        run_similarity(stream, obs4, shards=4)
        shape1 = forest_shape(self.span_rows(obs1))
        shape4 = forest_shape(self.span_rows(obs4))
        assert shape1 == shape4
        assert shape1, "trace produced an empty forest"
        # The invariance is about execution topology: with shard
        # subtrees included the four-shard run records strictly more.
        full4 = forest_shape(self.span_rows(obs4), include_shards=True)
        assert full4 != shape4

    def test_golden_forest_shape_identical_shards_1_vs_4(self, gstream):
        obs1 = Obs(sink=MemorySink(), trace=True)
        obs4 = Obs(sink=MemorySink(), trace=True)
        run_golden(gstream, obs1, shards=1)
        run_golden(gstream, obs4, shards=4)
        shape1 = forest_shape(self.span_rows(obs1))
        shape4 = forest_shape(self.span_rows(obs4))
        assert shape1 == shape4
        assert shape1
        # Per-column identity tags keep the golden stages separate.
        flat = repr(shape1)
        for column in gstream.columns:
            assert repr(("column", column)) in flat

    def test_trace_tree_renders_with_shard_attribution(self, stream):
        obs = Obs(sink=MemorySink(), trace=True)
        run_similarity(stream, obs, shards=4)
        tree = format_trace_tree(self.span_rows(obs))
        assert "stream.batch" in tree
        assert "shard.resolve[shard=" in tree
        # n / total / self columns are present on every line.
        assert "n=3" in tree  # three batches aggregate into one node
