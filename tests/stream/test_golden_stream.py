"""Multi-column streaming golden records: the equivalence harness.

The acceptance contract of :class:`repro.stream.golden.
GoldenStreamConsolidator`, pinned end to end:

* **stream == one-shot** — a multi-column streamed run produces the
  *same golden records* as a one-shot
  :class:`~repro.pipeline.consolidate.GoldenRecordCreation` over the
  concatenated data, and its per-column oracle verdicts never
  contradict the one-shot run's on shared members.  On identical
  presentation (the whole stream in one batch) the equivalence is
  exact: identical per-column question counts, identical confirmed
  transformation sets, identical final cell values;
* **shard-count invariance** — ``shards=1`` and ``shards=4`` publish
  **byte-identical** bundles and ask identical per-column questions,
  under key, ``token``, and ``lsh`` blocking alike;
* **incremental fusion is exact** — each batch re-fuses only the
  clusters it touched (the ``clusters_refused`` counter), yet the
  maintained golden records always equal a from-scratch
  :meth:`~repro.stream.golden.GoldenStreamConsolidator.full_refusion`;
* **restart/resume** — a stream killed mid-run and resumed from the
  bundle registry + per-column decision logs replays the judged
  prefix with **zero** repeat questions and converges to the same
  golden records and the same confirmed knowledge as an uninterrupted
  run.

The multi-batch comparison requires content-determined oracle
verdicts (the PR-2 discipline): the spec below is conflict-free and
seed-pinned so every judged group's verdict and direction is a
function of its content, not of its presentation shape.
"""

from collections import Counter

import pytest

from repro.datagen.stream import golden_stream
from repro.pipeline.consolidate import GoldenRecordCreation
from repro.pipeline.oracle import GroundTruthOracle
from repro.resolution.blocking import make_block_keys
from repro.serve.bundle import BundleRegistry
from repro.stream import (
    GoldenStreamConsolidator,
    golden_ground_truth_oracle_factory,
)

UNBOUNDED = 100_000
#: Conflict-free, seed-pinned: oracle verdicts are content-determined,
#: so the streamed and one-shot runs are comparable cell for cell.
SPEC = dict(
    n_clusters=18,
    mean_cluster_size=6.0,
    conflict_rate=0.0,
    variant_rate=0.6,
    seed=8,
)


@pytest.fixture(scope="module")
def stream():
    return golden_stream(batches=3, **SPEC)


@pytest.fixture(scope="module")
def single_batch_stream():
    return golden_stream(batches=1, **SPEC)


def one_shot(stream):
    """One-shot Algorithm 1 over the concatenated stream."""
    table = stream.table()
    canonical = {
        column: stream.canonical_cells(table, column)
        for column in stream.columns
    }

    def factory(standardizer):
        return GroundTruthOracle(
            canonical[standardizer.column], standardizer.store, seed=0
        )

    creation = GoldenRecordCreation(
        table,
        factory,
        budget_per_column=UNBOUNDED,
        columns=stream.columns,
        collect_models=True,
        dataset_name="golden",
    )
    return table, creation.run()


def streamed(stream, blocking=None, registry=None, **kwargs):
    resolution = {}
    if blocking is None:
        resolution["key_attribute"] = stream.key_column
    else:
        resolution["attribute"] = stream.columns[0]
        resolution["similarity_threshold"] = 0.75
        resolution["block_keys"] = make_block_keys(blocking)
    kwargs.setdefault("use_engine", False)
    kwargs.setdefault("persist_decisions", False)
    consolidator = GoldenStreamConsolidator(
        columns=stream.columns,
        oracle_factory=golden_ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        budget_per_batch=UNBOUNDED,
        registry=registry,
        bundle_name="golden",
        **resolution,
        **kwargs,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    return consolidator, reports


def golden_of(report):
    """cluster key -> column -> golden value, from a one-shot report."""
    return {record.key: dict(record.values) for record in report.golden}


def final_by_rid(table, column):
    return {
        record.rid: record.values[column]
        for cluster in table.clusters
        for record in cluster.records
    }


def model_shape(model):
    """The confirmed knowledge, member-order-free: every confirmed
    (program, direction, structure) transformation."""
    return sorted(
        (
            group.program.describe(),
            group.direction,
            repr(group.structure),
        )
        for group in model.groups
    )


class TestStreamEqualsOneShot:
    """The headline equivalence, on the provenance-exact path."""

    @pytest.fixture(scope="class")
    def runs(self, stream):
        table, report = one_shot(stream)
        consolidator, reports = streamed(stream)
        return stream, table, report, consolidator, reports

    def test_golden_records_identical(self, runs):
        stream, _table, report, consolidator, _reports = runs
        assert consolidator.golden_by_key() == golden_of(report)

    def test_every_cluster_has_a_golden_record(self, runs):
        stream, _table, _report, consolidator, _reports = runs
        golden = consolidator.golden_by_key()
        assert set(golden) == set(stream.golden_by_key)
        for values in golden.values():
            assert set(values) == set(stream.columns)

    def test_cluster_layout_identical(self, runs):
        """Same clusters, same membership: the shared resolver folds
        the batches into the layout one-shot clustering builds."""
        stream, table, _report, consolidator, _reports = runs

        def rids_by_key(t):
            return {
                cluster.key: Counter(r.rid for r in cluster.records)
                for cluster in t.clusters
                if cluster.records
            }

        assert rids_by_key(consolidator.table) == rids_by_key(table)

    def test_decisions_consistent_on_shared_members(self, runs):
        """The streamed run never contradicts a one-shot verdict."""
        stream, _table, report, consolidator, _reports = runs
        for column in stream.columns:
            one_shot_verdicts = {}
            for step in report.logs[column].steps:
                for member in step.group.replacements:
                    one_shot_verdicts.setdefault(
                        member, step.decision.approved
                    )
            cache = consolidator.standardizers[column].decisions
            for member, decision in cache.items():
                if member in one_shot_verdicts:
                    assert (
                        decision.approved == one_shot_verdicts[member]
                    ), (column, member)

    def test_bundle_covers_every_column(self, runs):
        stream, _table, _report, consolidator, _reports = runs
        bundle = consolidator.build_bundle()
        assert bundle.columns == list(stream.columns)
        for column in stream.columns:
            assert bundle.models[column].column == column
            assert bundle.models[column].groups


class TestSingleBatchExactness:
    """Identical presentation -> exact equivalence: the streamed
    machinery over the whole stream in one batch reproduces one-shot
    Algorithm 1 question for question."""

    @pytest.fixture(scope="class")
    def runs(self, single_batch_stream):
        table, report = one_shot(single_batch_stream)
        consolidator, reports = streamed(single_batch_stream)
        return single_batch_stream, table, report, consolidator

    def test_question_counts_identical_per_column(self, runs):
        stream, _table, report, consolidator = runs
        assert {
            column: consolidator.standardizers[column].questions_asked
            for column in stream.columns
        } == {
            column: report.logs[column].groups_confirmed
            for column in stream.columns
        }

    def test_confirmed_transformations_identical(self, runs):
        stream, _table, report, consolidator = runs
        for column in stream.columns:
            assert model_shape(
                consolidator.build_column_model(column)
            ) == model_shape(report.models[column]), column

    def test_final_cell_values_identical(self, runs):
        stream, table, _report, consolidator = runs
        for column in stream.columns:
            assert final_by_rid(consolidator.table, column) == (
                final_by_rid(table, column)
            ), column

    def test_golden_records_identical(self, runs):
        _stream, _table, report, consolidator = runs
        assert consolidator.golden_by_key() == golden_of(report)


class TestShardCountInvariance:
    """shards=1 vs shards=4: byte-identical bundles, identical
    questions — under key, token, and LSH blocking."""

    @pytest.fixture(scope="class")
    def frozen_clock(self):
        import repro.serve.bundle as bundle_module
        import repro.serve.model as model_module

        originals = (bundle_module.time.time, model_module.time.time)
        bundle_module.time.time = lambda: 1234567890.0
        model_module.time.time = lambda: 1234567890.0
        yield
        bundle_module.time.time, model_module.time.time = originals

    @pytest.mark.parametrize("blocking", [None, "token", "lsh"])
    def test_bundles_byte_identical(
        self, stream, tmp_path, frozen_clock, blocking
    ):
        tag = blocking or "key"
        c1, _ = streamed(
            stream,
            blocking=blocking,
            registry=BundleRegistry(tmp_path / f"{tag}-s1"),
            shards=1,
        )
        c4, _ = streamed(
            stream,
            blocking=blocking,
            registry=BundleRegistry(tmp_path / f"{tag}-s4"),
            shards=4,
            shard_processes=False,
        )
        assert [r.questions_by_column for r in c1.reports] == [
            r.questions_by_column for r in c4.reports
        ]
        assert c1.registry.path("golden").read_bytes() == (
            c4.registry.path("golden").read_bytes()
        )
        assert c1.golden_by_key() == c4.golden_by_key()

    def test_worker_process_backend_matches(
        self, stream, tmp_path, frozen_clock
    ):
        """The real multiprocessing backend, same guarantee."""
        c1, _ = streamed(
            stream,
            registry=BundleRegistry(tmp_path / "proc-s1"),
            shards=1,
        )
        c3, _ = streamed(
            stream,
            registry=BundleRegistry(tmp_path / "proc-s3"),
            shards=3,
            shard_processes=True,
        )
        assert c1.registry.path("golden").read_bytes() == (
            c3.registry.path("golden").read_bytes()
        )


class TestIncrementalFusionDelta:
    """Each batch re-fuses only the clusters it touched, and the
    maintained golden records always match a full re-fusion."""

    @pytest.fixture(scope="class")
    def run(self, stream):
        return streamed(stream)

    def test_counter_exposed_in_stats(self, run):
        _consolidator, reports = run
        for report in reports:
            stats = report.stats()
            assert stats["clusters_refused"] == report.clusters_refused
            assert stats["clusters_live"] == report.clusters_live

    def test_later_batches_refuse_strictly_fewer_than_live(self, run):
        """The delta property: once clusters settle, they drop out of
        the per-batch fusion work (a full per-batch re-fusion would
        recompute every live cluster every batch)."""
        _consolidator, reports = run
        assert all(r.clusters_refused > 0 for r in reports)
        for report in reports[1:]:
            assert report.clusters_refused < report.clusters_live

    def test_full_refusion_cross_check(self, run):
        """Exactness: the incrementally maintained golden records equal
        a from-scratch table-level fusion of the final table."""
        consolidator, _reports = run
        refused = consolidator.full_refusion()
        maintained = {
            record.cluster: dict(record.values)
            for record in consolidator.golden_records()
        }
        assert maintained == refused

    def test_global_fusion_falls_back_to_full_refusion(self, stream):
        """Accu couples clusters through source accuracies: no exact
        local kernel, so every live cluster re-fuses each batch (the
        counter makes the fallback observable)."""
        from repro.fusion import accu

        consolidator, reports = streamed(stream, fusion=accu.fuse)
        for report in reports:
            assert report.clusters_refused == report.clusters_live
        assert (
            consolidator.full_refusion()
            == {
                record.cluster: dict(record.values)
                for record in consolidator.golden_records()
            }
        )


class TestRestartResume:
    """A stream killed mid-run resumes from the registry + per-column
    decision logs: zero repeat questions, identical end state."""

    @pytest.fixture(scope="class")
    def runs(self, stream, tmp_path_factory):
        root = tmp_path_factory.mktemp("golden-resume")

        def make(registry):
            return GoldenStreamConsolidator(
                columns=stream.columns,
                oracle_factory=golden_ground_truth_oracle_factory(
                    stream.canonical_by_rid, seed=0
                ),
                key_attribute=stream.key_column,
                budget_per_batch=UNBOUNDED,
                use_engine=False,
                registry=registry,
                bundle_name="golden",
            )

        full_registry = BundleRegistry(root / "full")
        with make(full_registry) as full:
            full.run(stream.batches)
            full_golden = full.golden_by_key()
            full_questions = full.questions_asked

        kill_registry = BundleRegistry(root / "killed")
        interrupted = make(kill_registry)
        interrupted.process_batch(stream.batches[0])
        interrupted.process_batch(stream.batches[1])
        interrupted.close()  # killed: batch 2 never happened
        killed_versions = tuple(kill_registry.versions("golden"))

        resumed = make(kill_registry)
        replay_reports = [
            resumed.process_batch(stream.batches[0]),
            resumed.process_batch(stream.batches[1]),
        ]
        resumed.process_batch(stream.batches[2])
        resumed_bundle = resumed.build_bundle()
        resumed.close()
        return {
            "stream": stream,
            "full_registry": full_registry,
            "kill_registry": kill_registry,
            "full_golden": full_golden,
            "full_questions": full_questions,
            "interrupted": interrupted,
            "resumed": resumed,
            "replay_reports": replay_reports,
            "resumed_bundle": resumed_bundle,
            "killed_versions": killed_versions,
        }

    def test_resumes_from_latest_bundle_version(self, runs):
        assert runs["resumed"].resumed_from == (
            runs["interrupted"].bundle_version
        )
        # ... which is the latest version the killed run published.
        assert runs["resumed"].resumed_from == runs["killed_versions"][-1]

    def test_replayed_prefix_asks_zero_questions(self, runs):
        replay_reports = runs["replay_reports"]
        assert sum(r.questions_asked for r in replay_reports) == 0
        # The replay really did re-apply cached knowledge, not skip it.
        assert any(r.reused_replacements for r in replay_reports)

    def test_no_judged_member_is_ever_reasked(self, runs):
        interrupted, resumed = runs["interrupted"], runs["resumed"]
        for column in runs["stream"].columns:
            judged = {
                member
                for member, _ in interrupted.standardizers[
                    column
                ].decisions.items()
            }
            resumed_std = resumed.standardizers[column]
            asked = {
                member
                for step in resumed_std.log.steps[
                    len(resumed_std.log.steps)
                    - resumed_std.questions_asked:
                ]
                for member in step.group.replacements
            }
            assert not judged & asked, column

    def test_total_question_spend_matches_uninterrupted(self, runs):
        assert (
            runs["interrupted"].questions_asked
            + runs["resumed"].questions_asked
            == runs["full_questions"]
        )

    def test_final_golden_records_identical(self, runs):
        assert runs["resumed"].golden_by_key() == runs["full_golden"]

    def test_final_bundle_knowledge_identical(self, runs):
        """The resumed run's published bundle carries the same
        confirmed transformations per column as the uninterrupted
        run's (provenance differs by design: it records the resume)."""
        resumed_bundle = runs["resumed_bundle"]
        full_bundle = runs["full_registry"].load("golden")
        assert resumed_bundle.columns == full_bundle.columns
        for column in runs["stream"].columns:
            assert model_shape(resumed_bundle.models[column]) == (
                model_shape(full_bundle.models[column])
            ), column

    def test_per_column_decision_logs_on_disk(self, runs):
        for column in runs["stream"].columns:
            log = (
                runs["kill_registry"].root
                / "golden"
                / f"decisions-{column}.jsonl"
            )
            assert log.exists() and log.read_text().strip(), column


class TestFreshFlag:
    """``resume=False`` starts over: archives the stale per-column
    logs instead of replaying them."""

    def test_fresh_archives_per_column_logs(self, stream, tmp_path):
        registry = BundleRegistry(tmp_path / "registry")

        def make(**kwargs):
            return GoldenStreamConsolidator(
                columns=stream.columns,
                oracle_factory=golden_ground_truth_oracle_factory(
                    stream.canonical_by_rid, seed=0
                ),
                key_attribute=stream.key_column,
                budget_per_batch=UNBOUNDED,
                use_engine=False,
                registry=registry,
                bundle_name="golden",
                **kwargs,
            )

        with make() as first:
            first.process_batch(stream.batches[0])
            first_questions = first.questions_asked
        assert first_questions > 0
        with make(resume=False) as fresh:
            fresh.process_batch(stream.batches[0])
            assert fresh.resumed_from is None
            # Start-over really re-asks (nothing replayed) ...
            assert fresh.questions_asked == first_questions
        # ... and the paid-for history was archived, not deleted.
        column = stream.columns[0]
        log_dir = registry.root / "golden"
        assert (
            log_dir / f"decisions-{column}.jsonl.pre-fresh-1"
        ).exists()


class TestValidation:
    def test_duplicate_columns_rejected(self, stream):
        with pytest.raises(ValueError, match="duplicate"):
            GoldenStreamConsolidator(
                columns=("address", "address"),
                oracle_factory=golden_ground_truth_oracle_factory(
                    stream.canonical_by_rid
                ),
            )

    def test_empty_columns_rejected(self, stream):
        with pytest.raises(ValueError, match="at least one column"):
            GoldenStreamConsolidator(
                columns=(),
                oracle_factory=golden_ground_truth_oracle_factory(
                    stream.canonical_by_rid
                ),
            )

    def test_requires_a_batch_before_state_access(self, stream):
        consolidator = GoldenStreamConsolidator(
            columns=stream.columns,
            oracle_factory=golden_ground_truth_oracle_factory(
                stream.canonical_by_rid
            ),
            key_attribute=stream.key_column,
        )
        with pytest.raises(RuntimeError, match="no batch processed"):
            consolidator.golden_records()
