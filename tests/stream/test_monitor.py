"""Tests for the drift monitor."""

import pytest

from repro.stream import DriftMonitor


class TestDriftMonitor:
    def test_clean_traffic_never_triggers(self):
        monitor = DriftMonitor(window=3, miss_rate_threshold=0.3, min_rows=10)
        for _ in range(10):
            report = monitor.record(rows=50, misses=2)
            assert not report.drifted
        assert monitor.triggered == 0

    def test_drift_triggers_over_threshold(self):
        monitor = DriftMonitor(window=3, miss_rate_threshold=0.3, min_rows=10)
        monitor.record(rows=50, misses=2)
        report = monitor.record(rows=50, misses=48)  # format shift
        assert report.drifted and monitor.should_relearn
        assert monitor.triggered == 1

    def test_min_rows_suppresses_noisy_small_windows(self):
        monitor = DriftMonitor(window=3, miss_rate_threshold=0.3, min_rows=10)
        report = monitor.record(rows=3, misses=3)  # rate 1.0 but 3 rows
        assert not report.drifted

    def test_window_evicts_old_batches(self):
        monitor = DriftMonitor(window=2, miss_rate_threshold=0.5, min_rows=1)
        monitor.record(rows=10, misses=10)
        monitor.record(rows=10, misses=0)
        monitor.record(rows=10, misses=0)
        # The all-miss batch fell out of the window.
        assert monitor.miss_rate == 0.0
        assert not monitor.should_relearn

    def test_reset_clears_state(self):
        monitor = DriftMonitor(window=3, miss_rate_threshold=0.1, min_rows=1)
        monitor.record(rows=10, misses=10)
        assert monitor.should_relearn
        monitor.reset()
        assert monitor.rows == 0 and monitor.miss_rate == 0.0
        assert not monitor.should_relearn

    def test_misses_clamped_to_rows(self):
        monitor = DriftMonitor(window=1, miss_rate_threshold=0.5, min_rows=1)
        monitor.record(rows=10, misses=99)
        assert monitor.miss_rate == 1.0

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            DriftMonitor(miss_rate_threshold=1.5)
