"""Yield-ranked oracle scheduling (``--question-order yield``).

Three properties pin the scheduler:

* **ranking** — the feed spends the next question on the group with
  the highest expected cells-fixed (support × cluster fanout), not on
  whatever discovery order surfaces next;
* **inference** — candidates the approved rewrite chain already proves
  (A→B and B→C cached ⇒ derived A→C) are settled and *applied* without
  a question, recorded in the decision log with ``source: inferred``;
* **determinism** — everything is a parent-side pure integer function
  of store + table state, so sharded yield-mode runs stay
  byte-identical to unsharded ones, exactly like discovery mode.
"""

import json

import pytest

from repro.core.replacement import Replacement
from repro.data.table import CellRef, ClusterTable, Record
from repro.datagen.address import address_dataset
from repro.datagen.base import GeneratorSpec
from repro.datagen.stream import dataset_stream, golden_stream
from repro.pipeline.oracle import FORWARD, REVERSE, ApproveAllOracle, Decision
from repro.serve.bundle import BundleRegistry
from repro.serve.registry import ModelRegistry
from repro.stream import (
    DecisionCache,
    GoldenStreamConsolidator,
    StreamConsolidator,
    golden_ground_truth_oracle_factory,
    ground_truth_oracle_factory,
)
from repro.stream.scheduler import (
    YieldRankedFeed,
    allocate_budget,
    approved_rewrites,
    group_yield,
    member_yield,
    transitive_direction,
)
from repro.stream.standardizer import IncrementalStandardizer

COLUMN = "addr"


def make_table(clusters):
    table = ClusterTable([COLUMN])
    for key, values in clusters:
        table.add_cluster(
            key,
            [
                Record(f"{key}_{i}", {COLUMN: value})
                for i, value in enumerate(values)
            ],
        )
    return table


def make_standardizer(clusters, decisions=None):
    table = make_table(clusters)
    standardizer = IncrementalStandardizer(
        table, COLUMN, decisions=decisions
    )
    standardizer.ingest(table.cells(COLUMN))
    return standardizer


class TestAllocateBudget:
    def test_proportional_largest_remainder(self):
        shares = allocate_budget({"a": 5, "b": 1, "c": 0}, 10, "abc")
        assert shares == [("a", 8), ("b", 2), ("c", 0)]
        assert sum(s for _, s in shares) == 10

    def test_processing_order_is_yield_descending(self):
        shares = allocate_budget({"a": 1, "b": 9, "c": 4}, 7, "abc")
        assert [column for column, _ in shares] == ["b", "c", "a"]
        assert sum(s for _, s in shares) == 7

    def test_even_split_when_nothing_pends(self):
        shares = allocate_budget({}, 10, "abc")
        assert sorted(s for _, s in shares) == [3, 3, 4]

    def test_zero_budget(self):
        assert allocate_budget({"a": 3}, 0, "a") == [("a", 0)]

    def test_exhaustive_and_deterministic(self):
        yields = {"a": 7, "b": 7, "c": 2, "d": 0}
        first = allocate_budget(yields, 11, "abcd")
        assert first == allocate_budget(yields, 11, "abcd")
        assert sum(s for _, s in first) == 11
        # Equal yields tie toward the earlier column.
        assert [column for column, _ in first][:2] == ["a", "b"]


class TestYieldRanking:
    #: One high-fanout cluster (6 records sharing one variation) and
    #: one tiny cluster: fixing the big cluster's variation serves 3x
    #: the records.
    CLUSTERS = [
        ("big", ["Main St"] * 3 + ["Main Street"] * 3),
        ("small", ["Apple Inc", "Apple Incorporated"]),
    ]

    def test_member_yield_counts_cluster_fanout(self):
        standardizer = make_standardizer(self.CLUSTERS)
        store, table = standardizer.store, standardizer.table
        high = member_yield(
            store, table, Replacement("Main St", "Main Street")
        )
        low = member_yield(
            store, table, Replacement("Apple Inc", "Apple Incorporated")
        )
        # 3x3 provenance pairs, each in a 6-record cluster, vs one
        # pair in a 2-record cluster.
        assert high > low > 0

    def test_feed_pops_in_non_increasing_yield_order(self):
        standardizer = make_standardizer(self.CLUSTERS)
        from repro.core.incremental import IncrementalGrouper

        inner = IncrementalGrouper(
            standardizer.undecided(),
            standardizer.vocabulary,
            standardizer.config,
        )
        feed = YieldRankedFeed(
            inner, standardizer.store, standardizer.table
        )
        store, table = standardizer.store, standardizer.table
        scores = []
        while True:
            group = feed.next_group()
            if group is None:
                break
            # Nothing is applied between pops, so scores are static
            # and the window covers every group: the emission order
            # must be non-increasing yield.
            scores.append(group_yield(store, table, group))
        assert len(scores) > 1
        assert scores == sorted(scores, reverse=True)
        # The big cluster's variation dominates the first question.
        high = member_yield(
            store, table, Replacement("Main St", "Main Street")
        )
        assert scores[0] >= high

    def test_peek_does_not_consume(self):
        standardizer = make_standardizer(self.CLUSTERS)
        from repro.core.incremental import IncrementalGrouper

        inner = IncrementalGrouper(
            standardizer.undecided(),
            standardizer.vocabulary,
            standardizer.config,
        )
        feed = YieldRankedFeed(
            inner, standardizer.store, standardizer.table
        )
        score, group = feed.peek()
        assert score == group_yield(
            standardizer.store, standardizer.table, group
        )
        assert feed.next_group() == group

    def test_remove_replacements_filters_the_buffer(self):
        standardizer = make_standardizer(self.CLUSTERS)
        from repro.core.incremental import IncrementalGrouper

        inner = IncrementalGrouper(
            standardizer.undecided(),
            standardizer.vocabulary,
            standardizer.config,
        )
        feed = YieldRankedFeed(
            inner, standardizer.store, standardizer.table
        )
        _score, first = feed.peek()  # buffer is now filled
        feed.remove_replacements(set(first.replacements))
        remaining = []
        while True:
            group = feed.next_group()
            if group is None:
                break
            remaining.append(group)
        for group in remaining:
            assert not set(group.replacements) & set(first.replacements)

    def test_yield_ranked_learn_same_totals_as_discovery(self):
        """Unbudgeted, the scheduler changes the *order* questions are
        asked in, never the set of questions or the final table."""

        def run(yield_ranked):
            standardizer = make_standardizer(self.CLUSTERS)
            standardizer.learn(
                ApproveAllOracle(), 100, yield_ranked=yield_ranked
            )
            return (
                standardizer.questions_asked,
                sorted(
                    standardizer.table.column_values(COLUMN)
                ),
            )

        assert run(True) == run(False)


class TestTransitiveInference:
    def test_approved_rewrites_resolve_direction(self):
        cache = DecisionCache()
        cache.record(Replacement("a", "b"), Decision(True, FORWARD))
        cache.record(Replacement("c", "b"), Decision(True, REVERSE))
        cache.record(Replacement("x", "y"), Decision(False, FORWARD))
        assert approved_rewrites(cache) == {"a": "b", "b": "c"}

    def test_transitive_direction_walks_the_chain(self):
        forward = {"a": "b", "b": "c"}
        assert transitive_direction(forward, Replacement("a", "c")) == FORWARD
        assert transitive_direction(forward, Replacement("c", "a")) == REVERSE
        assert transitive_direction(forward, Replacement("a", "z")) is None

    def test_cyclic_chain_terminates(self):
        forward = {"a": "b", "b": "a"}
        assert transitive_direction(forward, Replacement("a", "z")) is None

    def test_infer_transitive_settles_and_applies(self, tmp_path):
        log = tmp_path / "decisions.jsonl"
        cache = DecisionCache(log)
        cache.record(Replacement("aa", "bb"), Decision(True, FORWARD))
        cache.record(Replacement("bb", "cc"), Decision(True, FORWARD))
        standardizer = make_standardizer(
            [("c0", ["aa", "bb"]), ("c1", ["bb", "cc"]), ("c2", ["aa", "cc"])],
            decisions=cache,
        )
        inferred, changed = standardizer.infer_transitive()
        assert inferred == 1 and changed > 0
        assert standardizer.inferred_verdicts == 1
        # The derived aa->cc candidate is settled FORWARD and applied.
        assert standardizer.table.cluster_values(2, COLUMN) == ["cc", "cc"]
        # Durably recorded, tagged machine-settled.
        rows = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert rows[-1]["lhs"] == "aa" and rows[-1]["rhs"] == "cc"
        assert rows[-1]["approved"] is True
        assert rows[-1]["source"] == "inferred"
        # Human verdicts carry no source tag.
        assert "source" not in rows[0]

    def test_inferred_verdict_replays_like_any_other(self, tmp_path):
        log = tmp_path / "decisions.jsonl"
        cache = DecisionCache(log)
        cache.record(Replacement("aa", "bb"), Decision(True, FORWARD))
        cache.record(Replacement("bb", "cc"), Decision(True, FORWARD))
        standardizer = make_standardizer(
            [("c0", ["aa", "bb"]), ("c1", ["bb", "cc"]), ("c2", ["aa", "cc"])],
            decisions=cache,
        )
        standardizer.infer_transitive()
        # A restart replays all three verdicts, inferred included.
        assert DecisionCache(log).replayed == 3

    def test_nothing_inferred_without_a_chain(self):
        standardizer = make_standardizer(
            [("c0", ["aa", "bb"]), ("c1", ["cc", "dd"])]
        )
        assert standardizer.infer_transitive() == (0, 0)


class TestPartitionThreading:
    """``undecided()`` / ``skipped_rejected()`` accept an existing
    partition instead of re-scanning the live set (the satellite-3
    fix)."""

    def test_partition_is_threaded_not_rescanned(self):
        standardizer = make_standardizer(
            [("c0", ["Main St", "Main Street"])]
        )
        partition = standardizer.partition_live()
        calls = []
        original = standardizer.partition_live
        standardizer.partition_live = lambda: calls.append(1) or original()
        assert standardizer.undecided(partition) == partition[2]
        assert standardizer.skipped_rejected(partition) == partition[1]
        assert calls == []  # no re-scan happened
        standardizer.partition_live = original
        # Without a partition the scan still runs (back-compat).
        assert standardizer.undecided() == partition[2]


class TestReversedRederivationReplay:
    """Regression (satellite bugfix): a verdict recorded as A→B must
    re-apply after a restart even when the re-derived provenance only
    survives under the mirrored B→A key.

    ``partition_live`` finds the verdict through the orientation-aware
    cache lookup, but ``reuse_confirmed``'s walk used to check
    liveness (``replacement not in self.store``) in the *recorded*
    orientation only — the pair was seen as approved yet never
    re-applied, and being decided it could never reach the question
    feed to recover.
    """

    RECORDED = Replacement("5 Main Street", "5 Main St")

    def asymmetric_standardizer(self, tmp_path):
        log = tmp_path / "decisions.jsonl"
        DecisionCache(log).record(self.RECORDED, Decision(True, FORWARD))
        # The restarted process re-derives the judged pair; forge the
        # asymmetric store state where only the mirrored orientation
        # survived (generation is symmetric, so this is constructed
        # directly — the same way the cycle regression above forges
        # its pathological history).
        standardizer = make_standardizer(
            [("c0", ["5 Main Street", "5 Main St"])],
            decisions=DecisionCache(log),
        )
        store = standardizer.store
        store.pair_entries.pop(self.RECORDED, None)
        store.token_entries.pop(self.RECORDED, None)
        assert self.RECORDED not in store
        assert self.RECORDED.reversed() in store
        return standardizer

    def test_mirror_only_provenance_is_reapplied(self, tmp_path):
        standardizer = self.asymmetric_standardizer(tmp_path)
        reused, changed = standardizer.reuse_confirmed()
        assert reused == 1 and changed > 0
        # Applied in the *confirmed* direction: Street -> St.
        assert standardizer.table.cluster_values(0, COLUMN) == [
            "5 Main St",
            "5 Main St",
        ]

    def test_symmetric_replay_is_unchanged(self, tmp_path):
        """The fix must not disturb the normal symmetric path: same
        reuse, same cells, same final values as before."""
        log = tmp_path / "sym.jsonl"
        DecisionCache(log).record(self.RECORDED, Decision(True, FORWARD))
        standardizer = make_standardizer(
            [("c0", ["5 Main Street", "5 Main St"])],
            decisions=DecisionCache(log),
        )
        reused, changed = standardizer.reuse_confirmed()
        assert reused == 1 and changed == 1
        assert standardizer.table.cluster_values(0, COLUMN) == [
            "5 Main St",
            "5 Main St",
        ]


SEED = 11
SPEC = GeneratorSpec(
    n_clusters=24,
    mean_cluster_size=5.0,
    conflict_rate=0.1,
    variant_rate=0.8,
    seed=SEED,
)


@pytest.fixture(scope="module")
def addr_stream():
    return dataset_stream(
        address_dataset(spec=SPEC, seed=SEED), batches=3, seed=SEED
    )


def run_yield_stream(stream, tmp_path, tag, shards, budget=8):
    registry = ModelRegistry(tmp_path / f"registry-{tag}")
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        key_attribute=stream.key_column,
        budget_per_batch=budget,
        registry=registry,
        model_name="addr",
        persist_decisions=False,
        use_engine=False,
        shards=shards,
        shard_processes=False,
        question_order="yield",
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    questions = [r.questions_asked for r in reports]
    programs = [
        step.group.program.describe()
        for step in consolidator.standardizer.log.steps
    ]
    return questions, programs, registry.path("addr").read_bytes()


class TestShardedYieldDeterminism:
    """The acceptance property: yield scheduling keeps ``--shards N``
    byte-identical to unsharded, question for question."""

    @pytest.fixture(scope="class")
    def frozen_clock(self):
        import repro.serve.model as model_module

        original = model_module.time.time
        model_module.time.time = lambda: 1234567890.0
        yield
        model_module.time.time = original

    def test_budgeted_yield_byte_identical(
        self, addr_stream, tmp_path, frozen_clock
    ):
        # The tight budget makes the ranking binding: a divergent
        # score anywhere would change which groups get asked at all.
        q1, p1, m1 = run_yield_stream(addr_stream, tmp_path, "y1", shards=1)
        q3, p3, m3 = run_yield_stream(addr_stream, tmp_path, "y3", shards=3)
        assert q1 == q3
        assert p1 == p3
        assert m1 == m3

    def test_golden_yield_bundles_byte_identical(self, tmp_path):
        stream = golden_stream(
            batches=2,
            n_clusters=16,
            mean_cluster_size=5.0,
            conflict_rate=0.0,
            variant_rate=0.6,
            seed=8,
        )

        def run(tag, shards):
            registry = BundleRegistry(tmp_path / f"bundle-{tag}")
            consolidator = GoldenStreamConsolidator(
                columns=stream.columns,
                oracle_factory=golden_ground_truth_oracle_factory(
                    stream.canonical_by_rid, seed=0
                ),
                key_attribute=stream.key_column,
                budget_per_batch=6,
                registry=registry,
                bundle_name="golden",
                persist_decisions=False,
                use_engine=False,
                shards=shards,
                shard_processes=False,
                question_order="yield",
            )
            with consolidator:
                reports = consolidator.run(stream.batches)
            bundle = consolidator.build_bundle()
            return (
                [dict(r.questions_by_column) for r in reports],
                json.dumps(bundle.to_dict(), sort_keys=True),
            )

        assert run("g1", 1) == run("g4", 4)
