"""Tests for delta candidate generation and the decision cache."""

from repro.candidates.generate import generate_candidates
from repro.candidates.store import ReplacementStore
from repro.data.table import CellRef, ClusterTable, Record
from repro.pipeline.oracle import ApproveAllOracle
from repro.stream.standardizer import IncrementalStandardizer

COLUMN = "addr"


def make_table(clusters):
    table = ClusterTable([COLUMN])
    for key, values in clusters:
        table.add_cluster(
            key,
            [
                Record(f"{key}_{i}", {COLUMN: value})
                for i, value in enumerate(values)
            ],
        )
    return table


def snapshot(store):
    return (
        {r: frozenset(e) for r, e in store.pair_entries.items() if e},
        {r: frozenset(e) for r, e in store.token_entries.items() if e},
    )


class TestDeltaGeneration:
    def test_add_cell_matches_batch_generate(self):
        clusters = [
            ("c0", ["5 Main Street", "5 Main St", "5 Main Street"]),
            ("c1", ["9th Avenue", "9 Avenue"]),
            ("c2", ["Broadway"]),
        ]
        batch = generate_candidates(make_table(clusters), COLUMN)
        table = make_table(clusters)
        delta = ReplacementStore(table, COLUMN)
        for ci, (_, values) in enumerate(clusters):
            for ri in range(len(values)):
                delta.add_cell(CellRef(ci, ri, COLUMN))
        assert snapshot(delta) == snapshot(batch)

    def test_add_cell_any_order(self):
        clusters = [("c0", ["A B C", "A C", "B C"])]
        batch = generate_candidates(make_table(clusters), COLUMN)
        table = make_table(clusters)
        delta = ReplacementStore(table, COLUMN)
        for ri in (2, 0, 1):
            delta.add_cell(CellRef(0, ri, COLUMN))
        assert snapshot(delta) == snapshot(batch)

    def test_add_cell_idempotent_and_counts_new_keys(self):
        table = make_table([("c0", ["Main St", "Main Street"])])
        store = ReplacementStore(table, COLUMN)
        assert store.add_cell(CellRef(0, 0, COLUMN)) == 0  # no mate yet
        created = store.add_cell(CellRef(0, 1, COLUMN))
        assert created > 0
        assert store.add_cell(CellRef(0, 1, COLUMN)) == 0  # already indexed

    def test_repeated_variation_creates_no_new_keys(self):
        table = make_table(
            [
                ("c0", ["Main St", "Main Street"]),
                ("c1", ["Main St", "Main Street"]),
            ]
        )
        store = ReplacementStore(table, COLUMN)
        for ri in range(2):
            store.add_cell(CellRef(0, ri, COLUMN))
        # The second cluster repeats the exact variation: entries grow,
        # keys do not.
        assert store.add_cell(CellRef(1, 0, COLUMN)) == 0
        assert store.add_cell(CellRef(1, 1, COLUMN)) == 0

    def test_purge_then_add_relocates_cell(self):
        # Simulate a merge move: c1's cell lands in c0.
        before = [("c0", ["5 Main Street", "5 Main St"]), ("c1", ["5 Main Str"])]
        after = [("c0", ["5 Main Street", "5 Main St", "5 Main Str"]), ("c1", [])]
        table = make_table(before)
        store = ReplacementStore(table, COLUMN)
        for ci, (_, values) in enumerate(before):
            for ri in range(len(values)):
                store.add_cell(CellRef(ci, ri, COLUMN))
        # Physically move the record, then re-home its candidates.
        record = table.clusters[1].records.pop(0)
        table.clusters[0].records.append(record)
        store.purge_cell(CellRef(1, 0, COLUMN))
        store.add_cell(CellRef(0, 2, COLUMN))
        fresh = generate_candidates(make_table(after), COLUMN)
        assert snapshot(store) == snapshot(fresh)


class TestDecisionCache:
    def test_repeated_variation_costs_zero_questions(self):
        table = make_table([("c0", ["5 Main Street", "5 Main St"])])
        std = IncrementalStandardizer(table, COLUMN)
        std.ingest(table.cells(COLUMN))
        oracle = ApproveAllOracle()
        first = std.learn(oracle, budget=100)
        assert first and std.questions_asked > 0
        asked = std.questions_asked
        assert table.cluster_values(0, COLUMN) == [
            "5 Main St",
            "5 Main St",
        ] or table.cluster_values(0, COLUMN) == ["5 Main Street", "5 Main Street"]

        # A new cluster re-introduces the *same* variant pair.
        table.add_cluster(
            "c1",
            [
                Record("n0", {COLUMN: "5 Main Street"}),
                Record("n1", {COLUMN: "5 Main St"}),
            ],
        )
        std.ingest(table.cluster_cells(1, COLUMN))
        reused, changed = std.reuse_confirmed()
        assert reused > 0 and changed > 0
        assert std.learn(oracle, budget=100) == []
        assert std.questions_asked == asked
        # Both clusters converged to the same standardized value.
        assert set(table.cluster_values(1, COLUMN)) == set(
            table.cluster_values(0, COLUMN)
        )

    def test_rejected_variation_stays_silenced(self):
        class RejectAll:
            def review(self, group):
                from repro.pipeline.oracle import Decision

                return Decision(False)

        table = make_table([("c0", ["Apple Inc", "Orange LLC"])])
        std = IncrementalStandardizer(table, COLUMN)
        std.ingest(table.cells(COLUMN))
        std.learn(RejectAll(), budget=100)
        asked = std.questions_asked
        assert asked > 0

        table.add_cluster(
            "c1",
            [
                Record("n0", {COLUMN: "Apple Inc"}),
                Record("n1", {COLUMN: "Orange LLC"}),
            ],
        )
        std.ingest(table.cluster_cells(1, COLUMN))
        reused, _ = std.reuse_confirmed()
        assert reused == 0
        assert std.skipped_rejected() > 0
        assert std.learn(RejectAll(), budget=100) == []
        assert std.questions_asked == asked

    def test_log_is_append_only_model_fodder(self):
        table = make_table(
            [("c0", ["5 Main Street", "5 Main St"]), ("c1", ["9th Ave", "9 Ave"])]
        )
        std = IncrementalStandardizer(table, COLUMN)
        std.ingest(table.cluster_cells(0, COLUMN))
        std.learn(ApproveAllOracle(), budget=100)
        first = len(std.log.steps)
        std.ingest(table.cluster_cells(1, COLUMN))
        std.reuse_confirmed()
        std.learn(ApproveAllOracle(), budget=100)
        assert len(std.log.steps) > first
        assert [s.index for s in std.log.steps] == list(
            range(len(std.log.steps))
        )
