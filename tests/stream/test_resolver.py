"""Tests for the incremental blocking + union-find resolver."""

import pytest

from repro.data.table import Record
from repro.resolution.matcher import Matcher, cluster_by_key
from repro.resolution.similarity import overlap
from repro.stream.resolver import IncrementalResolver


def rec(rid, **values):
    return Record(rid, {k: str(v) for k, v in values.items()})


def membership(table):
    """cluster key -> sorted rids (non-empty clusters only)."""
    return {
        c.key: sorted(r.rid for r in c.records)
        for c in table.clusters
        if c.records
    }


def partitions(table):
    """The clustering as a set of frozensets of rids (key-agnostic)."""
    return {
        frozenset(r.rid for r in c.records)
        for c in table.clusters
        if c.records
    }


class TestModeSelection:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            IncrementalResolver(["name"])
        with pytest.raises(ValueError):
            IncrementalResolver(
                ["name"], key_attribute="k", attribute="name"
            )


class TestKeyMode:
    def records(self):
        return [
            rec("r0", isbn="111", title="Databases"),
            rec("r1", isbn="222", title="Streams"),
            rec("r2", isbn="111", title="Data Bases"),
            rec("r3", isbn="", title="Keyless"),
            rec("r4", isbn="222", title="Stream Processing"),
        ]

    def test_matches_batch_cluster_by_key(self):
        records = self.records()
        resolver = IncrementalResolver(
            ["isbn", "title"], key_attribute="isbn"
        )
        resolver.add_batch(records[:2])
        resolver.add_batch(records[2:])
        batch = cluster_by_key(records, "isbn")
        assert partitions(resolver.table) == partitions(batch)

    def test_same_key_unions_records(self):
        resolver = IncrementalResolver(
            ["isbn", "title"], key_attribute="isbn"
        )
        resolver.add_batch(self.records())
        assert resolver.uf.connected("r0", "r2")
        assert resolver.uf.connected("r1", "r4")
        assert not resolver.uf.connected("r0", "r1")

    def test_rows_append_in_arrival_order(self):
        resolver = IncrementalResolver(
            ["isbn", "title"], key_attribute="isbn"
        )
        for record in self.records():
            resolver.add_batch([record])
        assert resolver.position("r0") == (0, 0)
        assert resolver.position("r2") == (0, 1)
        assert resolver.rid_at(0, 1) == "r2"

    def test_no_merges_ever(self):
        resolver = IncrementalResolver(
            ["isbn", "title"], key_attribute="isbn"
        )
        result = resolver.add_batch(self.records())
        assert result.merges == 0 and not result.moved

    def test_duplicate_rid_rejected(self):
        resolver = IncrementalResolver(["isbn"], key_attribute="isbn")
        resolver.add_batch([rec("r0", isbn="1")])
        with pytest.raises(ValueError, match="duplicate"):
            resolver.add_batch([rec("r0", isbn="1")])


class TestSimilarityMode:
    def records(self):
        return [
            rec("a0", name="International Journal of Robotics"),
            rec("a1", name="Intl Journal of Robotics"),
            rec("a2", name="Annals of Statistics"),
            rec("a3", name="Annals of Statistic"),
            rec("a4", name="Physics Letters"),
        ]

    def test_matches_batch_resolution(self):
        records = self.records()
        resolver = IncrementalResolver(["name"], attribute="name")
        resolver.add_batch(records[:3])
        resolver.add_batch(records[3:])
        batch = Matcher("name").resolve(records)
        assert partitions(resolver.table) == partitions(batch)

    def test_only_new_pairs_compared(self):
        records = self.records()
        resolver = IncrementalResolver(["name"], attribute="name")
        first = resolver.add_batch(records)
        # Re-running the same content under fresh ids costs pairs that
        # touch the new records only, never old-old pairs again.
        renamed = [rec(f"b{i}", name=r.values["name"]) for i, r in enumerate(records)]
        second = resolver.add_batch(renamed)
        assert second.pairs_compared >= first.pairs_compared
        assert all(
            rid.startswith("b")
            for rid, _, _ in second.appended
        )

    @staticmethod
    def _bridged_resolver():
        """A resolver where a third record bridges two clusters.

        Token-overlap similarity makes the bridge deterministic: the
        first two records share no token, the bridge contains both.
        """

        def tok_overlap(a, b):
            return overlap(a.lower().split(), b.lower().split())

        resolver = IncrementalResolver(
            ["name"], attribute="name", threshold=0.9, similarity=tok_overlap
        )
        resolver.add_batch(
            [
                rec("x0", name="Jane Street"),
                rec("x1", name="Capital Holdings"),
            ]
        )
        assert len(partitions(resolver.table)) == 2
        result = resolver.add_batch(
            [rec("x2", name="Jane Street Capital Holdings")]
        )
        return resolver, result

    def test_bridge_record_merges_and_reports_moves(self):
        resolver, result = self._bridged_resolver()
        assert result.merges == 1
        assert result.moved, "losing cluster's records must report moves"
        assert len(partitions(resolver.table)) == 1
        # Every rid is addressable at its (possibly new) position.
        for rid in ("x0", "x1", "x2"):
            cluster, row = resolver.position(rid)
            assert resolver.table.clusters[cluster].records[row].rid == rid
        # The losing slot is empty, not deleted: indices are stable.
        assert any(
            not c.records for c in resolver.table.clusters
        )

    def test_merge_is_transitively_complete(self):
        resolver, _ = self._bridged_resolver()
        assert resolver.uf.connected("x0", "x1")
        assert resolver.uf.connected("x1", "x2")
